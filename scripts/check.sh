#!/usr/bin/env bash
# Repository gate: formatting, lints, build and the full test suite.
# Run before pushing; CI (.github/workflows/ci.yml) runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
# --workspace: the root package alone does not pull in the bench bins,
# and the chaos smoke below needs target/release/chaos01_faults.
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> chaos smoke (fixed seed: oracles clean, CSV byte-stable)"
./target/release/chaos01_faults --seed 7 --seeds 4 --out results/chaos01_smoke_a.csv
./target/release/chaos01_faults --seed 7 --seeds 4 --out results/chaos01_smoke_b.csv >/dev/null
cmp results/chaos01_smoke_a.csv results/chaos01_smoke_b.csv
rm -f results/chaos01_smoke_a.csv results/chaos01_smoke_b.csv

echo "OK"
