#!/usr/bin/env bash
# Repository gate: formatting, lints, build and the full test suite.
# Run before pushing; CI (.github/workflows/ci.yml) runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings
# The sim crate must also lint (and build) with tracing compiled out.
cargo clippy -p seaweed-sim --all-targets --no-default-features -- -D warnings

echo "==> seaweed-lint (determinism & safety audit, <5s budget)"
# Build outside the timed window so the budget measures the audit, not
# the compiler; the flow-sensitive rules (D008+) must stay cheap enough
# to run on every edit.
cargo build -q -p seaweed-lint
lint_start=$(date +%s%N)
./target/debug/seaweed-lint
lint_ms=$(( ($(date +%s%N) - lint_start) / 1000000 ))
echo "    lint wall-clock: ${lint_ms}ms"
if [ "$lint_ms" -ge 5000 ]; then
  echo "seaweed-lint exceeded its 5s budget (${lint_ms}ms)" >&2
  exit 1
fi

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
# --workspace: the root package alone does not pull in the bench bins,
# and the chaos smoke below needs target/release/chaos01_faults.
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo bench --no-run (Criterion benches must keep compiling)"
cargo bench --workspace --no-run

echo "==> chaos smoke (fixed seed: oracles clean, CSV byte-stable)"
./target/release/chaos01_faults --seed 7 --seeds 4 --out results/chaos01_smoke_a.csv
./target/release/chaos01_faults --seed 7 --seeds 4 --out results/chaos01_smoke_b.csv >/dev/null
cmp results/chaos01_smoke_a.csv results/chaos01_smoke_b.csv
rm -f results/chaos01_smoke_a.csv results/chaos01_smoke_b.csv

echo "==> trace smoke (fixed seed: CSV and JSONL trace byte-stable)"
./target/release/obs01_query_timeline --seed 7 --seeds 2 \
  --out results/obs01_smoke_a.csv --trace-out results/obs01_trace_a.jsonl
./target/release/obs01_query_timeline --seed 7 --seeds 2 \
  --out results/obs01_smoke_b.csv --trace-out results/obs01_trace_b.jsonl >/dev/null
cmp results/obs01_smoke_a.csv results/obs01_smoke_b.csv
cmp results/obs01_trace_a.jsonl results/obs01_trace_b.jsonl
rm -f results/obs01_smoke_{a,b}.csv results/obs01_trace_{a,b}.jsonl

echo "==> scale smoke (fixed seed, small N: CSV byte-stable)"
# The CSV carries only simulation-deterministic columns; the JSON twin
# holds wall-clock and is machine-dependent, so only the CSV is compared.
./target/release/scale01_endsystems --base 100 --max-n 200 --seed 7 \
  --out results/scale01_smoke_a.csv --json results/scale01_smoke_a.json
./target/release/scale01_endsystems --base 100 --max-n 200 --seed 7 \
  --out results/scale01_smoke_b.csv --json results/scale01_smoke_b.json >/dev/null
cmp results/scale01_smoke_a.csv results/scale01_smoke_b.csv
rm -f results/scale01_smoke_{a,b}.csv results/scale01_smoke_{a,b}.json

echo "==> scale02 smoke (fixed seed, small N, Farsite point disabled: CSV byte-stable)"
./target/release/scale02_farsite --base 100 --max-n 200 --farsite-n 0 --seed 7 \
  --out results/scale02_smoke_a.csv --json results/scale02_smoke_a.json
./target/release/scale02_farsite --base 100 --max-n 200 --farsite-n 0 --seed 7 \
  --out results/scale02_smoke_b.csv --json results/scale02_smoke_b.json >/dev/null
cmp results/scale02_smoke_a.csv results/scale02_smoke_b.csv
rm -f results/scale02_smoke_{a,b}.csv results/scale02_smoke_{a,b}.json

echo "==> storm01 smoke (fixed seed, small N: oracle-gated, K=1 byte-identity, CSV byte-stable)"
# Asserts internally: every query reaches completeness 1.0, the chaos
# oracle stays clean, and the K=1 storm run is byte-identical to the
# storm-off baseline (exits non-zero otherwise).
./target/release/storm01_query_storm --n 300 --max-k 100 --seed 7 \
  --out results/storm01_smoke_a.csv --json results/storm01_smoke_a.json
./target/release/storm01_query_storm --n 300 --max-k 100 --seed 7 \
  --out results/storm01_smoke_b.csv --json results/storm01_smoke_b.json >/dev/null
cmp results/storm01_smoke_a.csv results/storm01_smoke_b.csv
rm -f results/storm01_smoke_{a,b}.csv results/storm01_smoke_{a,b}.json

echo "==> abl07 smoke (fixed seed: hedging oracles clean, CSV byte-stable)"
# Exits non-zero on any ChaosOracle violation with hedging on.
./target/release/abl07_hedging --seed 7 --seeds 3 --out results/abl07_smoke_a.csv
./target/release/abl07_hedging --seed 7 --seeds 3 --out results/abl07_smoke_b.csv >/dev/null
cmp results/abl07_smoke_a.csv results/abl07_smoke_b.csv
rm -f results/abl07_smoke_{a,b}.csv

echo "OK"
