#!/usr/bin/env bash
# Repository gate: formatting, lints, build and the full test suite.
# Run before pushing; CI (.github/workflows/ci.yml) runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace

echo "OK"
