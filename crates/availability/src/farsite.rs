//! Synthetic Farsite-like availability traces.
//!
//! The original Farsite study [Bolosky et al., SIGMETRICS 2000] probed
//! 51,663 endsystems on the Microsoft corporate network hourly for ~4
//! weeks. The paper uses it for Figure 1 and as the availability input to
//! every simulation, reporting: mean availability 81%, a clear diurnal and
//! weekly periodic pattern, and a mean departure rate of 4.06×10⁻⁶ per
//! online endsystem per second.
//!
//! This generator reproduces those marginals with a three-profile mixture
//! typical of a corporate desktop fleet:
//!
//! * **Always-on** machines (servers, lab machines, desktops never turned
//!   off): up continuously except for rare multi-hour outages.
//! * **Office** machines with diurnal cycles: powered on around 08:30 on
//!   weekdays, powered off in the evening — except that some evenings the
//!   owner leaves the machine on overnight, and most weekends the machine
//!   is off.
//! * **Flaky** machines cycling with exponential up/down spans.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_types::{Duration, Time};

use crate::trace::{AvailabilityTrace, Intervals};

/// Availability profile class of an endsystem.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Profile {
    AlwaysOn,
    Office,
    Flaky,
}

/// Configuration of the Farsite-like generator.
#[derive(Clone, Debug)]
pub struct FarsiteConfig {
    pub num_endsystems: usize,
    pub horizon: Duration,
    /// Mixture weights (normalized internally).
    pub weight_always_on: f64,
    pub weight_office: f64,
    pub weight_flaky: f64,
    /// Always-on machines: mean time between outages and mean outage span.
    pub always_on_mtbf: Duration,
    pub always_on_outage: Duration,
    /// Office machines: mean arrival hour (fractional, 24h clock), stddev.
    pub office_arrival_hour: f64,
    pub office_arrival_sd: f64,
    /// Mean departure hour, stddev.
    pub office_departure_hour: f64,
    pub office_departure_sd: f64,
    /// Probability an office machine is left on overnight on a weekday
    /// evening (it then stays up until the next departure time).
    pub office_leave_on_prob: f64,
    /// Probability an office machine is used on a weekend day.
    pub office_weekend_prob: f64,
    /// Flaky machines: mean exponential up and down spans.
    pub flaky_up_mean: Duration,
    pub flaky_down_mean: Duration,
}

/// RNG stream constant for Farsite trace generation (registered in
/// lint.toml `[[stream]]`).
const FARSITE_STREAM: u64 = 0x0fa2_517e_7ace;

impl Default for FarsiteConfig {
    /// Defaults calibrated so the generated trace matches the paper's
    /// reported statistics: mean availability ≈ 0.81 and departure rate
    /// within a small factor of 4.06e-6 per online endsystem per second.
    fn default() -> Self {
        FarsiteConfig {
            num_endsystems: 51_663,
            horizon: Duration::WEEK * 4,
            weight_always_on: 0.58,
            weight_office: 0.34,
            weight_flaky: 0.08,
            always_on_mtbf: Duration::from_days(18),
            always_on_outage: Duration::from_hours(3),
            office_arrival_hour: 8.5,
            office_arrival_sd: 0.8,
            office_departure_hour: 18.0,
            office_departure_sd: 1.2,
            office_leave_on_prob: 0.45,
            office_weekend_prob: 0.12,
            flaky_up_mean: Duration::from_hours(10),
            flaky_down_mean: Duration::from_hours(4),
        }
    }
}

impl FarsiteConfig {
    /// Small-population config for tests and examples.
    #[must_use]
    pub fn small(num_endsystems: usize, weeks: u64) -> Self {
        FarsiteConfig {
            num_endsystems,
            horizon: Duration::WEEK * weeks,
            ..FarsiteConfig::default()
        }
    }

    /// Generates the trace (deterministic in `seed`) together with each
    /// endsystem's assigned profile.
    #[must_use]
    pub fn generate(&self, seed: u64) -> (AvailabilityTrace, Vec<Profile>) {
        let mut rng = StdRng::seed_from_u64(seed ^ FARSITE_STREAM);
        let total = self.weight_always_on + self.weight_office + self.weight_flaky;
        assert!(total > 0.0, "all profile weights zero");
        let mut intervals = Vec::with_capacity(self.num_endsystems);
        let mut profiles = Vec::with_capacity(self.num_endsystems);
        for _ in 0..self.num_endsystems {
            let pick = rng.gen::<f64>() * total;
            let profile = if pick < self.weight_always_on {
                Profile::AlwaysOn
            } else if pick < self.weight_always_on + self.weight_office {
                Profile::Office
            } else {
                Profile::Flaky
            };
            let iv = match profile {
                Profile::AlwaysOn => self.gen_always_on(&mut rng),
                Profile::Office => self.gen_office(&mut rng),
                Profile::Flaky => self.gen_flaky(&mut rng),
            };
            intervals.push(iv);
            profiles.push(profile);
        }
        (
            AvailabilityTrace::new(intervals, Time::ZERO + self.horizon),
            profiles,
        )
    }

    fn gen_always_on(&self, rng: &mut StdRng) -> Intervals {
        let horizon = self.horizon.as_micros();
        let mut iv = Vec::new();
        let mut t: u64 = 0;
        loop {
            // Up until the next outage (exponential MTBF).
            let up_span = exp_sample(rng, self.always_on_mtbf);
            let up_end = t.saturating_add(up_span.as_micros()).min(horizon);
            if up_end > t {
                iv.push((Time::from_micros(t), Time::from_micros(up_end)));
            }
            if up_end >= horizon {
                break;
            }
            let outage = exp_sample(rng, self.always_on_outage).max(Duration::from_mins(10));
            t = up_end.saturating_add(outage.as_micros());
            if t >= horizon {
                break;
            }
        }
        iv
    }

    fn gen_office(&self, rng: &mut StdRng) -> Intervals {
        let horizon_days = (self.horizon.as_micros() / Duration::DAY.as_micros()) as i64;
        let mut iv: Intervals = Vec::new();
        // State: the machine may already be on (left on from "before" the
        // trace); treat day -1 as a weekday with leave-on probability.
        let mut on_since: Option<u64> = if rng.gen::<f64>() < self.office_leave_on_prob {
            Some(0)
        } else {
            None
        };
        for day in 0..horizon_days {
            let weekday = (day % 7) < 5; // epoch is a Monday
            let active_today = weekday || rng.gen::<f64>() < self.office_weekend_prob;
            if !active_today {
                // If left on from before, power off mid-morning (cleaner
                // helpdesk sweep) — models weekend shutdowns.
                if let Some(start) = on_since.take() {
                    let off = day_time(day, 10.0 + rng.gen::<f64>() * 4.0);
                    push_span(&mut iv, start, off, self.horizon);
                }
                continue;
            }
            let arrive = day_time(
                day,
                gauss(rng, self.office_arrival_hour, self.office_arrival_sd).clamp(5.0, 12.0),
            );
            let depart = day_time(
                day,
                gauss(rng, self.office_departure_hour, self.office_departure_sd).clamp(13.0, 23.5),
            );
            let start = match on_since.take() {
                Some(s) => s, // was left on overnight; keep running
                None => arrive,
            };
            if rng.gen::<f64>() < self.office_leave_on_prob {
                // Left on tonight; span continues into subsequent days.
                on_since = Some(start);
            } else {
                push_span(&mut iv, start, depart, self.horizon);
            }
        }
        if let Some(start) = on_since {
            push_span(&mut iv, start, self.horizon.as_micros(), self.horizon);
        }
        iv
    }

    fn gen_flaky(&self, rng: &mut StdRng) -> Intervals {
        let horizon = self.horizon.as_micros();
        let mut iv = Vec::new();
        // Start up or down proportional to duty cycle.
        let duty = self.flaky_up_mean.as_micros() as f64
            / (self.flaky_up_mean.as_micros() + self.flaky_down_mean.as_micros()) as f64;
        let mut t: u64 = 0;
        let mut up = rng.gen::<f64>() < duty;
        while t < horizon {
            let span = if up {
                exp_sample(rng, self.flaky_up_mean).max(Duration::from_mins(5))
            } else {
                exp_sample(rng, self.flaky_down_mean).max(Duration::from_mins(5))
            };
            let end = t.saturating_add(span.as_micros()).min(horizon);
            if up && end > t {
                iv.push((Time::from_micros(t), Time::from_micros(end)));
            }
            t = end;
            up = !up;
        }
        iv
    }
}

/// Absolute microsecond timestamp for fractional `hour` on `day`.
fn day_time(day: i64, hour: f64) -> u64 {
    (day as u64) * Duration::DAY.as_micros() + (hour * 3.6e9) as u64
}

fn push_span(iv: &mut Intervals, start_us: u64, end_us: u64, horizon: Duration) {
    let end = end_us.min(horizon.as_micros());
    let start = start_us.min(end);
    if end > start {
        // Merge with a preceding abutting/overlapping span if any.
        if let Some(last) = iv.last_mut() {
            if last.1.as_micros() >= start {
                last.1 = Time::from_micros(last.1.as_micros().max(end));
                return;
            }
        }
        iv.push((Time::from_micros(start), Time::from_micros(end)));
    }
}

/// Exponential sample with the given mean.
fn exp_sample(rng: &mut StdRng, mean: Duration) -> Duration {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    Duration::from_secs_f64(-mean.as_secs_f64() * u.ln())
}

/// Gaussian sample via Box-Muller (keeps us off external distributions).
fn gauss(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_statistics() {
        let cfg = FarsiteConfig::small(3000, 4);
        let (trace, profiles) = cfg.generate(42);
        let stats = trace.stats();
        // Paper: mean availability 81%. Accept a band around it.
        assert!(
            (0.76..=0.86).contains(&stats.mean_availability),
            "availability {:.3} outside calibration band",
            stats.mean_availability
        );
        // Paper: departure rate 4.06e-6 per online endsystem per second.
        // Accept the right order of magnitude.
        assert!(
            (1.0e-6..=1.2e-5).contains(&stats.departure_rate_per_online_sec),
            "departure rate {:.2e} outside band",
            stats.departure_rate_per_online_sec
        );
        // All three profiles present.
        assert!(profiles.contains(&Profile::AlwaysOn));
        assert!(profiles.contains(&Profile::Office));
        assert!(profiles.contains(&Profile::Flaky));
    }

    #[test]
    fn diurnal_pattern_visible() {
        let cfg = FarsiteConfig::small(2000, 2);
        let (trace, _) = cfg.generate(7);
        // Availability mid-Tuesday working hours should exceed 3am.
        let tue_2pm = Time::ZERO + Duration::from_days(1) + Duration::from_hours(14);
        let tue_3am = Time::ZERO + Duration::from_days(1) + Duration::from_hours(3);
        let day = trace.fraction_up(tue_2pm);
        let night = trace.fraction_up(tue_3am);
        assert!(
            day > night + 0.05,
            "no diurnal swing: day {day:.3} night {night:.3}"
        );
    }

    #[test]
    fn weekend_dip_visible() {
        let cfg = FarsiteConfig::small(2000, 2);
        let (trace, _) = cfg.generate(11);
        let wed_2pm = Time::ZERO + Duration::from_days(2) + Duration::from_hours(14);
        let sun_2pm = Time::ZERO + Duration::from_days(6) + Duration::from_hours(14);
        assert!(trace.fraction_up(wed_2pm) > trace.fraction_up(sun_2pm) + 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = FarsiteConfig::small(100, 1);
        let (t1, p1) = cfg.generate(5);
        let (t2, p2) = cfg.generate(5);
        assert_eq!(p1, p2);
        for n in 0..100 {
            assert_eq!(t1.intervals(n), t2.intervals(n));
        }
        let (t3, _) = cfg.generate(6);
        let differs = (0..100).any(|n| t1.intervals(n) != t3.intervals(n));
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn office_machines_come_up_in_the_morning() {
        let cfg = FarsiteConfig {
            weight_always_on: 0.0,
            weight_office: 1.0,
            weight_flaky: 0.0,
            office_leave_on_prob: 0.0,
            ..FarsiteConfig::small(300, 2)
        };
        let (trace, _) = cfg.generate(3);
        let mut hour_counts = [0u32; 24];
        for n in 0..300 {
            for &(up, _) in trace.intervals(n) {
                hour_counts[up.hour_of_day() as usize] += 1;
            }
        }
        let total: u32 = hour_counts.iter().sum();
        let morning: u32 = (7..=10).map(|h| hour_counts[h]).sum();
        assert!(total > 0);
        assert!(
            morning as f64 / total as f64 > 0.8,
            "up events not concentrated in the morning: {hour_counts:?}"
        );
    }
}
