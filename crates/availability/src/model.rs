//! The per-endsystem availability model (paper §3.2.1).
//!
//! Each endsystem maintains two distributions, updated every time it comes
//! back up and pushed to its metadata replica set:
//!
//! * the **down-duration** distribution — how long unavailability spells
//!   last (log-bucketed, seconds to weeks);
//! * the **up-event** distribution — the hour of day (0–23) at which the
//!   endsystem comes back up.
//!
//! If the up-event distribution is heavily concentrated in some hour
//! (peak-to-mean ratio > 2) the endsystem classifies itself as *periodic*
//! and return-time predictions use the hour histogram; otherwise they use
//! the down-duration distribution **conditioned on the time already spent
//! down**. A member of the replica set records when it noticed the
//! endsystem fail and evaluates the model on its behalf.

use seaweed_types::{Duration, LogBuckets, Time};

/// Tuning knobs for the availability model.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Peak-to-mean threshold above which an endsystem self-classifies as
    /// periodic (paper: 2).
    pub periodic_threshold: f64,
    /// Minimum up-event observations before the periodic classification
    /// is trusted. With `o` observations spread over distinct hours the
    /// peak-to-mean ratio is at least `24/o`, so any endsystem with fewer
    /// than 12 observations would trivially pass the threshold — the
    /// paper's rule implicitly assumes a month of history. Below this
    /// count we use the (robust) down-duration distribution instead.
    pub min_periodic_observations: u32,
    /// Bucketing of the down-duration distribution.
    pub down_buckets: LogBuckets,
    /// Fallback return delay when no history exists at all.
    pub default_return: Duration,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            periodic_threshold: 2.0,
            min_periodic_observations: 8,
            // 24 geometric buckets (26 with under/overflow): together with
            // nibble-packed hour counts this fills the 48-byte wire format.
            down_buckets: LogBuckets::new(Duration::SECOND, Duration::from_days(14), 24),
            default_return: Duration::from_hours(8),
        }
    }
}

/// A prediction of when an unavailable endsystem will next become
/// available: a small discrete distribution over *delays from now*.
#[derive(Clone, Debug, Default)]
pub struct ReturnPrediction {
    /// `(delay, weight)` pairs; weights sum to 1 (unless empty).
    pub mass: Vec<(Duration, f64)>,
}

impl ReturnPrediction {
    /// A point mass at a single delay.
    #[must_use]
    pub fn point(delay: Duration) -> Self {
        ReturnPrediction {
            mass: vec![(delay, 1.0)],
        }
    }

    /// Expected delay until return.
    #[must_use]
    pub fn expected(&self) -> Duration {
        let secs: f64 = self.mass.iter().map(|(d, w)| d.as_secs_f64() * w).sum();
        Duration::from_secs_f64(secs)
    }

    /// Probability the endsystem is back within `delay`.
    #[must_use]
    pub fn cdf(&self, delay: Duration) -> f64 {
        self.mass
            .iter()
            .filter(|(d, _)| *d <= delay)
            .map(|(_, w)| w)
            .sum()
    }

    /// The `q`-quantile of the return delay: the smallest mass point whose
    /// cumulative weight reaches `q` (clamped to `0..=1`). `None` when the
    /// prediction is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.mass.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let mut points = self.mass.clone();
        points.sort_by_key(|&(d, _)| d);
        let total: f64 = points.iter().map(|(_, w)| w).sum();
        let mut acc = 0.0;
        for (d, w) in &points {
            acc += w;
            if acc >= q * total {
                return Some(*d);
            }
        }
        points.last().map(|&(d, _)| d)
    }
}

/// The availability model proper.
#[derive(Clone, Debug)]
pub struct AvailabilityModel {
    config: ModelConfig,
    /// Histogram of observed down durations.
    down_hist: Vec<u32>,
    /// Histogram of up-event hour of day.
    up_hours: [u32; 24],
    observations: u32,
}

impl AvailabilityModel {
    #[must_use]
    pub fn new(config: ModelConfig) -> Self {
        let down_hist = vec![0u32; config.down_buckets.len()];
        AvailabilityModel {
            config,
            down_hist,
            up_hours: [0; 24],
            observations: 0,
        }
    }

    /// Records an up event: the endsystem was down for `down_span` and
    /// came back at `up_at`.
    pub fn observe_up(&mut self, down_span: Duration, up_at: Time) {
        let idx = self.config.down_buckets.index(down_span);
        self.down_hist[idx] = self.down_hist[idx].saturating_add(1);
        self.up_hours[up_at.hour_of_day() as usize] += 1;
        self.observations = self.observations.saturating_add(1);
    }

    /// Builds a model by replaying an endsystem's up intervals through
    /// `until` — how the endsystem itself learns during warmup.
    #[must_use]
    pub fn learn_from_intervals(
        config: ModelConfig,
        intervals: &[(Time, Time)],
        until: Time,
    ) -> Self {
        let mut model = AvailabilityModel::new(config);
        let mut prev_down: Option<Time> = None;
        for &(up, down) in intervals {
            if up > until {
                break;
            }
            if let Some(d) = prev_down {
                model.observe_up(up.since(d), up);
            } else if up > Time::ZERO {
                // Down from the epoch until first up.
                model.observe_up(up.since(Time::ZERO), up);
            }
            if down <= until {
                prev_down = Some(down);
            }
        }
        model
    }

    #[must_use]
    pub fn observations(&self) -> u32 {
        self.observations
    }

    /// Peak-to-mean ratio of the up-hour distribution (0 when empty).
    #[must_use]
    pub fn peak_to_mean(&self) -> f64 {
        let total: u32 = self.up_hours.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let peak = *self.up_hours.iter().max().expect("24 entries") as f64;
        peak / (total as f64 / 24.0)
    }

    /// Does this endsystem follow a periodic (diurnal) cycle?
    #[must_use]
    pub fn is_periodic(&self) -> bool {
        self.observations >= self.config.min_periodic_observations
            && self.peak_to_mean() > self.config.periodic_threshold
    }

    /// Predicts when the endsystem will next become available given that
    /// it has been unavailable since `down_since` and it is `now`.
    #[must_use]
    pub fn predict_return(&self, now: Time, down_since: Time) -> ReturnPrediction {
        if self.observations == 0 {
            return ReturnPrediction::point(self.config.default_return);
        }
        if self.is_periodic() {
            self.predict_periodic(now)
        } else {
            self.predict_from_durations(now.saturating_since(down_since))
        }
    }

    /// Periodic prediction: mass on the next occurrence of each observed
    /// up hour, weighted by the hour histogram. An endsystem that
    /// habitually comes up at 08:00–09:00 yields most mass at the next
    /// morning.
    fn predict_periodic(&self, now: Time) -> ReturnPrediction {
        let total: u32 = self.up_hours.iter().sum();
        let into_day = now.micros_into_day();
        let mut mass = Vec::new();
        for (h, &count) in self.up_hours.iter().enumerate() {
            if count == 0 {
                continue;
            }
            // Next occurrence of the middle of hour h.
            let target = (h as u64) * Duration::HOUR.as_micros() + Duration::HOUR.as_micros() / 2;
            let delay_us = if target > into_day {
                target - into_day
            } else {
                target + Duration::DAY.as_micros() - into_day
            };
            mass.push((
                Duration::from_micros(delay_us),
                f64::from(count) / f64::from(total),
            ));
        }
        mass.sort_by_key(|(d, _)| *d);
        ReturnPrediction { mass }
    }

    /// Non-periodic prediction: the down-duration distribution conditioned
    /// on having already been down for `already_down`.
    fn predict_from_durations(&self, already_down: Duration) -> ReturnPrediction {
        let buckets = &self.config.down_buckets;
        let mut mass = Vec::new();
        let mut total = 0.0;
        for (i, &count) in self.down_hist.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let mid = buckets.midpoint(i);
            if mid <= already_down {
                continue; // this spell has outlived those observations
            }
            let remaining = mid - already_down;
            mass.push((remaining, f64::from(count)));
            total += f64::from(count);
        }
        if mass.is_empty() {
            // Down longer than anything observed. A memoryless process
            // would take about one mean spell longer; guard with the
            // elapsed time for heavy-tailed behaviour, capped at a week.
            let mean = self.mean_down_span().max(Duration::from_mins(10));
            let guess = mean.max(already_down / 2).min(Duration::from_days(7));
            return ReturnPrediction::point(guess);
        }
        for m in &mut mass {
            m.1 /= total;
        }
        mass.sort_by_key(|(d, _)| *d);
        ReturnPrediction { mass }
    }

    /// Mean observed down span (zero with no observations).
    #[must_use]
    pub fn mean_down_span(&self) -> Duration {
        let mut total = 0.0f64;
        let mut count = 0u64;
        for (i, &c) in self.down_hist.iter().enumerate() {
            total += self.config.down_buckets.midpoint(i).as_secs_f64() * f64::from(c);
            count += u64::from(c);
        }
        if count == 0 {
            Duration::ZERO
        } else {
            Duration::from_secs_f64(total / count as f64)
        }
    }

    /// Serialized wire size in bytes. The paper's Table 1 reports the
    /// availability model at a = 48 bytes: 24 packed hour counters plus a
    /// compact down-duration sketch. Exactly [`AvailabilityModel::encode`]'s
    /// output length.
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        48
    }

    /// Serializes to the 48-byte wire format: 24 hour counters packed as
    /// saturating nibbles (12 bytes), the 26-bucket down-duration
    /// histogram as saturating u8s (26 bytes), a u16 observation count
    /// and an 8-byte reserved tail. Counter saturation (15 per hour slot,
    /// 255 per duration bucket) is immaterial: classification uses ratios
    /// and prediction uses relative weights.
    #[must_use]
    pub fn encode(&self) -> [u8; 48] {
        let mut out = [0u8; 48];
        #[allow(clippy::needless_range_loop)] // indexing two strided arrays
        for i in 0..12 {
            let lo = self.up_hours[2 * i].min(15) as u8;
            let hi = self.up_hours[2 * i + 1].min(15) as u8;
            out[i] = lo | (hi << 4);
        }
        debug_assert_eq!(
            self.down_hist.len(),
            26,
            "wire format fixes 26 down buckets"
        );
        for (i, &c) in self.down_hist.iter().take(26).enumerate() {
            out[12 + i] = c.min(255) as u8;
        }
        out[38..40]
            .copy_from_slice(&(self.observations.min(u32::from(u16::MAX)) as u16).to_le_bytes());
        out
    }

    /// Reconstructs a model from its 48-byte wire form (the counters are
    /// quantized; predictions from the decoded model match the original
    /// up to that quantization).
    #[must_use]
    pub fn decode(bytes: &[u8; 48], config: ModelConfig) -> Self {
        let mut m = AvailabilityModel::new(config);
        #[allow(clippy::needless_range_loop)] // indexing two strided arrays
        for i in 0..12 {
            m.up_hours[2 * i] = u32::from(bytes[i] & 0x0f);
            m.up_hours[2 * i + 1] = u32::from(bytes[i] >> 4);
        }
        let n = m.down_hist.len().min(26);
        for i in 0..n {
            m.down_hist[i] = u32::from(bytes[12 + i]);
        }
        m.observations = u32::from(u16::from_le_bytes([bytes[38], bytes[39]]));
        m
    }
}

impl Default for AvailabilityModel {
    fn default() -> Self {
        AvailabilityModel::new(ModelConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(day: u64, hour: u64) -> Time {
        Time::ZERO + Duration::from_days(day) + Duration::from_hours(hour)
    }

    #[test]
    fn periodic_classification() {
        let mut m = AvailabilityModel::default();
        // Comes up at 08:00 every day for two weeks.
        for day in 0..14 {
            m.observe_up(Duration::from_hours(14), at(day, 8));
        }
        assert!(m.peak_to_mean() > 20.0);
        assert!(m.is_periodic());

        let mut flat = AvailabilityModel::default();
        for day in 0..24 {
            flat.observe_up(Duration::from_hours(3), at(day, day % 24));
        }
        assert!((flat.peak_to_mean() - 1.0).abs() < 1e-9);
        assert!(!flat.is_periodic());
    }

    #[test]
    fn periodic_prediction_targets_morning() {
        let mut m = AvailabilityModel::default();
        for day in 0..10 {
            m.observe_up(Duration::from_hours(14), at(day, 8));
        }
        // It is 23:00; machine went down at 18:00. Expect return around
        // 08:30 next morning = 9.5 h away.
        let now = at(20, 23);
        let pred = m.predict_return(now, at(20, 18));
        let exp = pred.expected();
        assert!(
            (exp.as_secs_f64() - 9.5 * 3600.0).abs() < 3600.0,
            "expected ~9.5h, got {exp}"
        );
        // And the CDF jumps to 1 at that point.
        assert!(pred.cdf(Duration::from_hours(8)) < 0.5);
        assert!(pred.cdf(Duration::from_hours(11)) > 0.99);
    }

    #[test]
    fn duration_prediction_conditions_on_elapsed() {
        let cfg = ModelConfig::default();
        let mut m = AvailabilityModel::new(cfg);
        // Mixture: many 1-hour downs, some ~2-day downs. Hours are spread
        // one-per-hour (peak-to-mean 24/16 = 1.5 < 2) so classification
        // stays non-periodic.
        for i in 0..12u64 {
            m.observe_up(Duration::from_hours(1), at(i, 2 * i));
        }
        for i in 0..4u64 {
            m.observe_up(Duration::from_days(2), at(i + 12, 2 * i + 1));
        }
        assert!(!m.is_periodic());
        // Fresh failure: expectation dominated by short downs.
        let fresh = m.predict_return(at(20, 0), at(20, 0)).expected();
        assert!(fresh < Duration::from_hours(16), "fresh {fresh}");
        // Already down 6 hours: the 1-hour mass is excluded.
        let stale = m.predict_return(at(20, 6), at(20, 0)).expected();
        assert!(stale > Duration::from_hours(24), "stale {stale}");
    }

    #[test]
    fn no_history_fallback() {
        let m = AvailabilityModel::default();
        let pred = m.predict_return(at(0, 1), at(0, 0));
        assert_eq!(pred.mass.len(), 1);
        assert_eq!(pred.expected(), ModelConfig::default().default_return);
    }

    #[test]
    fn outlived_all_observations_extrapolates() {
        let mut m = AvailabilityModel::default();
        // 13 distinct hours => peak-to-mean 24/13 < 2 => non-periodic.
        for i in 0..13u64 {
            m.observe_up(Duration::from_hours(1), at(i, i));
        }
        // Down for 3 days, longer than every observation: the heavy-tail
        // guard predicts at least half the elapsed spell again, capped at
        // a week.
        let pred = m.predict_return(at(10, 0) + Duration::from_days(3), at(10, 0));
        assert_eq!(pred.mass.len(), 1);
        assert!(pred.expected() >= Duration::from_hours(36));
        assert!(pred.expected() <= Duration::from_days(7));
    }

    #[test]
    fn learn_from_intervals_builds_model() {
        // Office-like: up 08:00-18:00 daily.
        let intervals: Vec<(Time, Time)> = (0..14).map(|d| (at(d, 8), at(d, 18))).collect();
        let m =
            AvailabilityModel::learn_from_intervals(ModelConfig::default(), &intervals, at(14, 0));
        assert!(m.is_periodic());
        assert_eq!(m.observations(), 14);
        // Prediction made Sunday 22:00 should target ~8:30 next morning.
        let pred = m.predict_return(at(20, 22), at(20, 18));
        let exp = pred.expected().as_secs_f64() / 3600.0;
        assert!((exp - 10.5).abs() < 1.0, "expected ~10.5h got {exp:.2}h");
    }

    #[test]
    fn prediction_mass_normalized() {
        let mut m = AvailabilityModel::default();
        for i in 0..20u64 {
            m.observe_up(Duration::from_hours(1 + i % 5), at(i, (i * 3) % 24));
        }
        let pred = m.predict_return(at(25, 3), at(25, 2));
        let total: f64 = pred.mass.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((pred.cdf(Duration::from_days(30)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wire_size_matches_table1() {
        assert_eq!(AvailabilityModel::default().wire_size(), 48);
        assert_eq!(AvailabilityModel::default().encode().len(), 48);
    }

    #[test]
    fn codec_roundtrip_preserves_predictions() {
        let mut m = AvailabilityModel::default();
        for day in 0..12 {
            m.observe_up(Duration::from_hours(14), at(day, 8));
        }
        let decoded = AvailabilityModel::decode(&m.encode(), ModelConfig::default());
        assert_eq!(decoded.observations(), m.observations());
        assert_eq!(decoded.is_periodic(), m.is_periodic());
        let now = at(20, 23);
        let a = m.predict_return(now, at(20, 18));
        let b = decoded.predict_return(now, at(20, 18));
        assert_eq!(a.mass.len(), b.mass.len());
        assert!((a.expected().as_secs_f64() - b.expected().as_secs_f64()).abs() < 1.0);
    }

    #[test]
    fn codec_saturates_gracefully() {
        let mut m = AvailabilityModel::default();
        // Far more observations than a u8 counter can hold.
        for i in 0..70_000u64 {
            m.observe_up(Duration::from_hours(1 + i % 3), at(i % 300, 8));
        }
        let decoded = AvailabilityModel::decode(&m.encode(), ModelConfig::default());
        // Quantized, but classification must agree.
        assert_eq!(decoded.is_periodic(), m.is_periodic());
        assert!(decoded.observations() <= u32::from(u16::MAX));
        let a = m.predict_return(at(301, 0), at(300, 20)).expected();
        let b = decoded.predict_return(at(301, 0), at(300, 20)).expected();
        assert!((a.as_secs_f64() - b.as_secs_f64()).abs() < 3600.0);
    }
}
