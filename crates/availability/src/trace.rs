//! Availability traces: per-endsystem up-interval lists.
//!
//! A trace records, for each endsystem, the half-open intervals
//! `[up, down)` during which it was available, over a fixed horizon.
//! Traces are replayed into the simulator as `NodeUp`/`NodeDown` events
//! and interrogated directly by the availability-only simulator
//! (Figures 5–8) and by statistics extraction (Figure 1, churn rates).

use seaweed_types::{Duration, Time};

/// Up intervals for one endsystem, sorted, non-overlapping, within the
/// trace horizon.
pub type Intervals = Vec<(Time, Time)>;

/// An availability trace for a population of endsystems.
#[derive(Debug, Clone)]
pub struct AvailabilityTrace {
    /// `intervals[node]` = sorted disjoint `[up, down)` spans.
    intervals: Vec<Intervals>,
    horizon: Time,
}

impl AvailabilityTrace {
    /// Builds a trace from raw interval lists, validating invariants.
    ///
    /// # Panics
    /// Panics if any interval list is unsorted, overlapping, empty-spanned
    /// or extends beyond the horizon.
    #[must_use]
    pub fn new(intervals: Vec<Intervals>, horizon: Time) -> Self {
        for (node, iv) in intervals.iter().enumerate() {
            let mut prev_end = Time::ZERO;
            for &(up, down) in iv {
                assert!(up < down, "node {node}: empty/inverted interval");
                assert!(up >= prev_end, "node {node}: overlapping intervals");
                assert!(down <= horizon, "node {node}: interval beyond horizon");
                prev_end = down;
            }
        }
        AvailabilityTrace { intervals, horizon }
    }

    #[must_use]
    pub fn num_endsystems(&self) -> usize {
        self.intervals.len()
    }

    #[must_use]
    pub fn horizon(&self) -> Time {
        self.horizon
    }

    /// The up intervals of one endsystem.
    #[must_use]
    pub fn intervals(&self, node: usize) -> &[(Time, Time)] {
        &self.intervals[node]
    }

    /// Is `node` available at instant `t`?
    #[must_use]
    pub fn is_up(&self, node: usize, t: Time) -> bool {
        let iv = &self.intervals[node];
        // Binary search for the last interval starting at or before t.
        match iv.binary_search_by(|&(up, _)| up.cmp(&t)) {
            Ok(_) => true, // t is exactly an up instant
            Err(0) => false,
            Err(i) => t < iv[i - 1].1,
        }
    }

    /// The first time at or after `t` when `node` is available, or `None`
    /// if it never comes back within the horizon.
    #[must_use]
    pub fn next_up_at(&self, node: usize, t: Time) -> Option<Time> {
        if self.is_up(node, t) {
            return Some(t);
        }
        self.intervals[node]
            .iter()
            .find(|&&(up, _)| up >= t)
            .map(|&(up, _)| up)
    }

    /// True if `node` is available for at least `min_span` continuously at
    /// some point in `[from, to]`. This is the paper's `H_U` membership:
    /// "available at some instant ... for sufficient time to execute a
    /// query".
    #[must_use]
    pub fn is_up_during(&self, node: usize, from: Time, to: Time, min_span: Duration) -> bool {
        self.intervals[node].iter().any(|&(up, down)| {
            let s = up.max(from);
            let e = down.min(to);
            e > s && e.since(s) >= min_span
        })
    }

    /// Fraction of endsystems available at instant `t`.
    #[must_use]
    pub fn fraction_up(&self, t: Time) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        let up = (0..self.intervals.len())
            .filter(|&n| self.is_up(n, t))
            .count();
        up as f64 / self.intervals.len() as f64
    }

    /// Hourly availability series (Figure 1): for each whole hour of the
    /// trace, the fraction of endsystems up at the hour mark — matching
    /// the original study's hourly ping methodology.
    #[must_use]
    pub fn hourly_availability(&self) -> Vec<f64> {
        let hours = self.horizon.hours_since_epoch();
        (0..hours)
            .map(|h| self.fraction_up(Time::from_micros(h * Duration::HOUR.as_micros())))
            .collect()
    }

    /// Replays the trace into a simulator engine as up/down events.
    pub fn replay_into<M>(&self, engine: &mut seaweed_sim::Engine<M>) {
        assert_eq!(
            engine.num_nodes(),
            self.num_endsystems(),
            "engine/trace size mismatch"
        );
        for (node, iv) in self.intervals.iter().enumerate() {
            let idx = seaweed_sim::NodeIdx(node as u32);
            for &(up, down) in iv {
                engine.schedule_up(up, idx);
                if down < self.horizon {
                    engine.schedule_down(down, idx);
                }
            }
        }
    }

    /// Aggregate statistics over the whole trace.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let mut online_us: u128 = 0;
        let mut departures: u64 = 0;
        let mut sessions: u64 = 0;
        let mut session_us: u128 = 0;
        for iv in &self.intervals {
            for &(up, down) in iv {
                let span = down.since(up);
                online_us += u128::from(span.as_micros());
                sessions += 1;
                session_us += u128::from(span.as_micros());
                if down < self.horizon {
                    departures += 1;
                }
            }
        }
        let total_us = u128::from(self.horizon.as_micros()) * self.intervals.len() as u128;
        let mean_availability = if total_us == 0 {
            0.0
        } else {
            online_us as f64 / total_us as f64
        };
        let online_secs = online_us as f64 / 1e6;
        TraceStats {
            mean_availability,
            departure_rate_per_online_sec: if online_secs > 0.0 {
                departures as f64 / online_secs
            } else {
                0.0
            },
            mean_session: if sessions > 0 {
                Duration::from_micros((session_us / u128::from(sessions)) as u64)
            } else {
                Duration::ZERO
            },
            departures,
        }
    }
}

/// Summary statistics of a trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceStats {
    /// Time-averaged fraction of endsystems available (the paper's f_on).
    pub mean_availability: f64,
    /// Departures per online endsystem per second (the paper reports
    /// 4.06e-6 for Farsite and 9.46e-5 for Gnutella).
    pub departure_rate_per_online_sec: f64,
    /// Mean up-session length.
    pub mean_session: Duration,
    /// Total departure events within the horizon.
    pub departures: u64,
}

impl TraceStats {
    /// The churn rate `c` of the analytic models: the rate at which a
    /// single endsystem switches between available and unavailable,
    /// normalized per endsystem (not per *online* endsystem). Up and down
    /// transitions are assumed balanced, as in §4.2.
    #[must_use]
    pub fn churn_rate(&self, _n: usize) -> f64 {
        // departures/online-sec * f_on = departures per endsystem-sec.
        self.departure_rate_per_online_sec * self.mean_availability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hour(h: u64) -> Time {
        Time::from_micros(h * Duration::HOUR.as_micros())
    }

    fn simple_trace() -> AvailabilityTrace {
        // Node 0: up [0h, 10h). Node 1: up [2h, 4h) and [6h, 10h).
        // Horizon 10h.
        AvailabilityTrace::new(
            vec![
                vec![(hour(0), hour(10))],
                vec![(hour(2), hour(4)), (hour(6), hour(10))],
            ],
            hour(10),
        )
    }

    #[test]
    fn is_up_at_instants() {
        let t = simple_trace();
        assert!(t.is_up(0, hour(0)));
        assert!(t.is_up(0, hour(9)));
        assert!(!t.is_up(1, hour(0)));
        assert!(t.is_up(1, hour(2)));
        assert!(t.is_up(1, hour(3)));
        assert!(!t.is_up(1, hour(4)));
        assert!(!t.is_up(1, hour(5)));
        assert!(t.is_up(1, hour(6)));
    }

    #[test]
    fn next_up_at_works() {
        let t = simple_trace();
        assert_eq!(t.next_up_at(1, hour(0)), Some(hour(2)));
        assert_eq!(t.next_up_at(1, hour(3)), Some(hour(3)));
        assert_eq!(t.next_up_at(1, hour(5)), Some(hour(6)));
        // Node with no further intervals.
        let t2 = AvailabilityTrace::new(vec![vec![(hour(0), hour(1))]], hour(10));
        assert_eq!(t2.next_up_at(0, hour(2)), None);
    }

    #[test]
    fn is_up_during_respects_min_span() {
        let t = simple_trace();
        assert!(t.is_up_during(1, hour(0), hour(3), Duration::from_mins(30)));
        assert!(!t.is_up_during(1, hour(4), hour(6), Duration::from_mins(30)));
        // Interval [2,4) clipped to [3.5, 4) is only 30 min.
        let from = hour(3) + Duration::from_mins(30);
        assert!(t.is_up_during(1, from, hour(4), Duration::from_mins(30)));
        assert!(!t.is_up_during(1, from, hour(4), Duration::from_mins(31)));
    }

    #[test]
    fn fraction_and_hourly() {
        let t = simple_trace();
        assert_eq!(t.fraction_up(hour(0)), 0.5);
        assert_eq!(t.fraction_up(hour(3)), 1.0);
        let series = t.hourly_availability();
        assert_eq!(series.len(), 10);
        assert_eq!(series[0], 0.5);
        assert_eq!(series[2], 1.0);
        assert_eq!(series[5], 0.5);
    }

    #[test]
    fn stats_match_hand_computation() {
        let t = simple_trace();
        let s = t.stats();
        // Online time: 10h + 6h = 16h over 20 node-hours.
        assert!((s.mean_availability - 0.8).abs() < 1e-9);
        // Departures within horizon: node 1 at hour 4 only (both nodes'
        // final intervals end exactly at the horizon).
        assert_eq!(s.departures, 1);
        let online_secs = 16.0 * 3600.0;
        assert!((s.departure_rate_per_online_sec - 1.0 / online_secs).abs() < 1e-12);
        // Mean session: (10 + 2 + 4) / 3 hours.
        assert_eq!(
            s.mean_session,
            Duration::from_micros(16 * 3600 * 1_000_000 / 3)
        );
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_intervals_rejected() {
        let _ =
            AvailabilityTrace::new(vec![vec![(hour(0), hour(2)), (hour(1), hour(3))]], hour(10));
    }

    #[test]
    fn replay_schedules_events() {
        use seaweed_sim::{Engine, SimConfig, UniformTopology};
        let t = simple_trace();
        let mut e: Engine<()> = Engine::new(
            Box::new(UniformTopology::new(2, Duration::MILLISECOND)),
            SimConfig::default(),
        );
        t.replay_into(&mut e);
        let mut ups = 0;
        let mut downs = 0;
        while let Some((_, ev)) = e.next_event_before(hour(11)) {
            match ev {
                seaweed_sim::Event::NodeUp { .. } => ups += 1,
                seaweed_sim::Event::NodeDown { .. } => downs += 1,
                _ => {}
            }
        }
        assert_eq!(ups, 3);
        // Final intervals end at horizon => no down event scheduled.
        assert_eq!(downs, 1);
    }
}
