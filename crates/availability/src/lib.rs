#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! Endsystem availability: traces, synthetic trace generators, and the
//! per-endsystem availability model used for completeness prediction.
//!
//! The paper drives all experiments with two real-world traces:
//!
//! * the **Farsite** trace — hourly pings of 51,663 endsystems on the
//!   Microsoft corporate network over ~4 weeks in July/August 1999 (mean
//!   availability 81%, clear diurnal/weekly periodicity, mean departure
//!   rate 4.06×10⁻⁶ per online endsystem per second);
//! * a **Gnutella** activity trace — 7,602 peers over 60 hours with a mean
//!   departure rate of 9.46×10⁻⁵ per online endsystem per second.
//!
//! Both traces are proprietary/unavailable, so [`farsite`] and
//! [`gnutella`] synthesize traces calibrated to every statistic the paper
//! reports (see DESIGN.md "Substitutions"). [`trace`] is the shared
//! representation — per-endsystem up-interval lists — with replay into the
//! simulator and statistics extraction. [`model`] implements §3.2.1's
//! availability model: a down-duration distribution plus an up-event
//! hour-of-day distribution, with endsystems self-classifying as periodic
//! when the hour distribution's peak-to-mean ratio exceeds 2.

pub mod farsite;
pub mod gnutella;
pub mod hourweek;
pub mod latency;
pub mod model;
pub mod trace;

pub use farsite::{FarsiteConfig, Profile};
pub use gnutella::GnutellaConfig;
pub use hourweek::HourOfWeekModel;
pub use latency::ReplyLatencyStats;
pub use model::{AvailabilityModel, ModelConfig, ReturnPrediction};
pub use trace::{AvailabilityTrace, TraceStats};
