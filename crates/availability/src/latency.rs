//! Per-endsystem observed reply-latency distributions.
//!
//! Hedged dissemination needs an *expected-reply quantile*: how long a
//! delegator should wait for a subrange report before paying for a backup
//! send. The model here is deliberately simple — a per-observer geometric
//! histogram of completed subrange round-trips — because it only has to
//! answer one question ("is this reply late?") and must stay deterministic
//! and cheap at Farsite scale. Storage is struct-of-arrays: one shared
//! bucket spec, flat per-endsystem count rows.

use seaweed_types::{Duration, LogBuckets};

/// Geometric buckets spanning the plausible reply-latency range: LAN
/// round-trips (~ms) through multi-reissue stragglers (~minutes).
const BUCKETS: usize = 32;
/// 1 ms, in the `Duration` micro-tick representation.
const MIN_LATENCY: Duration = Duration(1_000);
/// 60 s.
const MAX_LATENCY: Duration = Duration(60_000_000);

/// Per-endsystem reply-latency histograms over a shared bucket spec.
///
/// `observe` records a completed subrange round-trip as seen by the
/// delegating endsystem; `quantile` answers with a conservative (upper
/// bucket edge) delay estimate once the observer has enough samples, and
/// `None` before that — callers fall back to a fraction of the reissue
/// timeout.
#[derive(Clone, Debug)]
pub struct ReplyLatencyStats {
    buckets: LogBuckets,
    /// Flat `[endsystem][bucket]` counts.
    counts: Vec<u32>,
    /// Per-endsystem total observations.
    totals: Vec<u64>,
}

impl ReplyLatencyStats {
    #[must_use]
    pub fn new(num_endsystems: usize) -> Self {
        let buckets = LogBuckets::new(MIN_LATENCY, MAX_LATENCY, BUCKETS);
        ReplyLatencyStats {
            counts: vec![0; num_endsystems * buckets.len()],
            totals: vec![0; num_endsystems],
            buckets,
        }
    }

    /// Records one completed reply round-trip observed by `endsystem`.
    pub fn observe(&mut self, endsystem: usize, latency: Duration) {
        let row = endsystem * self.buckets.len();
        self.counts[row + self.buckets.index(latency)] += 1;
        self.totals[endsystem] += 1;
    }

    /// Observations recorded by `endsystem` so far.
    #[must_use]
    pub fn observations(&self, endsystem: usize) -> u64 {
        self.totals[endsystem]
    }

    /// The `q`-quantile of `endsystem`'s observed reply latency, as the
    /// upper edge of the bucket where the cumulative count reaches `q`
    /// (conservative: never hedges earlier than the observed quantile).
    /// `None` until at least `min_observations` samples exist.
    #[must_use]
    pub fn quantile(&self, endsystem: usize, q: f64, min_observations: u64) -> Option<Duration> {
        let total = self.totals[endsystem];
        if total < min_observations.max(1) {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The count the cumulative walk must reach, clamped to >= 1
        // *before* the comparison: `acc >= q * total` is vacuously true
        // at the first bucket with `acc == 0` when `q * total` rounds to
        // zero (tiny q at exactly `min_observations` samples), which
        // returned an edge *below* every observed sample — under the
        // censoring-bias floor the hedge delay is built on.
        let needed = ((q * total as f64).ceil() as u64).clamp(1, total);
        let row = endsystem * self.buckets.len();
        let mut acc = 0u64;
        for i in 0..self.buckets.len() {
            acc += u64::from(self.counts[row + i]);
            if acc >= needed {
                // The overflow bucket has no meaningful upper edge; its
                // midpoint (2× the histogram range) is already far beyond
                // any sane hedge delay and callers clamp further.
                if i == self.buckets.len() - 1 {
                    return Some(self.buckets.midpoint(i));
                }
                return Some(self.buckets.upper_edge(i));
            }
        }
        Some(self.buckets.midpoint(self.buckets.len() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_estimate_below_min_observations() {
        let mut s = ReplyLatencyStats::new(2);
        for _ in 0..3 {
            s.observe(0, Duration::from_millis(20));
        }
        assert_eq!(s.quantile(0, 0.9, 4), None);
        s.observe(0, Duration::from_millis(20));
        assert!(s.quantile(0, 0.9, 4).is_some());
        // Per-endsystem isolation: endsystem 1 saw nothing.
        assert_eq!(s.observations(1), 0);
        assert_eq!(s.quantile(1, 0.9, 1), None);
    }

    #[test]
    fn quantile_is_conservative_and_monotone() {
        let mut s = ReplyLatencyStats::new(1);
        for ms in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 500] {
            s.observe(0, Duration::from_millis(ms));
        }
        let p50 = s.quantile(0, 0.5, 1).unwrap();
        let p99 = s.quantile(0, 0.99, 1).unwrap();
        assert!(p50 >= Duration::from_millis(10), "upper edge: {p50:?}");
        assert!(p50 < Duration::from_millis(50));
        assert!(p99 >= Duration::from_millis(500));
        assert!(p50 <= p99);
    }

    #[test]
    fn outliers_land_in_overflow() {
        let mut s = ReplyLatencyStats::new(1);
        s.observe(0, Duration::from_hours(2));
        let q = s.quantile(0, 0.9, 1).unwrap();
        assert!(q > MAX_LATENCY);
    }

    /// Pre-fix, `acc as f64 >= q * total` was vacuously satisfied at the
    /// first (empty) bucket when `q * total == 0`, returning ~1 ms for a
    /// distribution whose smallest sample is 500 ms.
    #[test]
    fn tiny_quantile_at_exactly_min_observations_stays_at_floor() {
        let mut s = ReplyLatencyStats::new(1);
        for _ in 0..4 {
            s.observe(0, Duration::from_millis(500));
        }
        let est = s.quantile(0, 0.0, 4).unwrap();
        assert!(
            est >= Duration::from_millis(500),
            "q\u{2192}0 estimate {est:?} fell below every observed sample"
        );
    }

    proptest::proptest! {
        /// The censoring-bias floor: however small `q` is, the estimate
        /// must sit at or above the bucket edge of the *smallest*
        /// observed sample — in particular when the model has exactly
        /// `min_observations` samples (where `q * total` can round to 0
        /// and the pre-fix walk stopped at the first, empty bucket).
        #[test]
        fn quantile_never_undercuts_observed_floor(
            samples_ms in proptest::collection::vec(1u64..120_000, 1..32),
            q in 0.0f64..1.0,
        ) {
            let mut s = ReplyLatencyStats::new(1);
            for &ms in &samples_ms {
                s.observe(0, Duration::from_millis(ms));
            }
            let min_obs = samples_ms.len() as u64; // exactly at the gate
            let est = s.quantile(0, q, min_obs).unwrap();
            let smallest = Duration::from_millis(*samples_ms.iter().min().unwrap());
            let floor_bucket = s.buckets.index(smallest);
            let floor = if floor_bucket == s.buckets.len() - 1 {
                s.buckets.midpoint(floor_bucket)
            } else {
                s.buckets.upper_edge(floor_bucket)
            };
            proptest::prop_assert!(
                est >= floor,
                "estimate {est:?} below observed floor {floor:?} (q = {q})"
            );
            // Monotone in q, still.
            let p99 = s.quantile(0, 0.99, min_obs).unwrap();
            proptest::prop_assert!(est <= p99);
        }
    }
}
