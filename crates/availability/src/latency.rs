//! Per-endsystem observed reply-latency distributions.
//!
//! Hedged dissemination needs an *expected-reply quantile*: how long a
//! delegator should wait for a subrange report before paying for a backup
//! send. The model here is deliberately simple — a per-observer geometric
//! histogram of completed subrange round-trips — because it only has to
//! answer one question ("is this reply late?") and must stay deterministic
//! and cheap at Farsite scale. Storage is struct-of-arrays: one shared
//! bucket spec, flat per-endsystem count rows.

use seaweed_types::{Duration, LogBuckets};

/// Geometric buckets spanning the plausible reply-latency range: LAN
/// round-trips (~ms) through multi-reissue stragglers (~minutes).
const BUCKETS: usize = 32;
/// 1 ms, in the `Duration` micro-tick representation.
const MIN_LATENCY: Duration = Duration(1_000);
/// 60 s.
const MAX_LATENCY: Duration = Duration(60_000_000);

/// Per-endsystem reply-latency histograms over a shared bucket spec.
///
/// `observe` records a completed subrange round-trip as seen by the
/// delegating endsystem; `quantile` answers with a conservative (upper
/// bucket edge) delay estimate once the observer has enough samples, and
/// `None` before that — callers fall back to a fraction of the reissue
/// timeout.
#[derive(Clone, Debug)]
pub struct ReplyLatencyStats {
    buckets: LogBuckets,
    /// Flat `[endsystem][bucket]` counts.
    counts: Vec<u32>,
    /// Per-endsystem total observations.
    totals: Vec<u64>,
}

impl ReplyLatencyStats {
    #[must_use]
    pub fn new(num_endsystems: usize) -> Self {
        let buckets = LogBuckets::new(MIN_LATENCY, MAX_LATENCY, BUCKETS);
        ReplyLatencyStats {
            counts: vec![0; num_endsystems * buckets.len()],
            totals: vec![0; num_endsystems],
            buckets,
        }
    }

    /// Records one completed reply round-trip observed by `endsystem`.
    pub fn observe(&mut self, endsystem: usize, latency: Duration) {
        let row = endsystem * self.buckets.len();
        self.counts[row + self.buckets.index(latency)] += 1;
        self.totals[endsystem] += 1;
    }

    /// Observations recorded by `endsystem` so far.
    #[must_use]
    pub fn observations(&self, endsystem: usize) -> u64 {
        self.totals[endsystem]
    }

    /// The `q`-quantile of `endsystem`'s observed reply latency, as the
    /// upper edge of the bucket where the cumulative count reaches `q`
    /// (conservative: never hedges earlier than the observed quantile).
    /// `None` until at least `min_observations` samples exist.
    #[must_use]
    pub fn quantile(&self, endsystem: usize, q: f64, min_observations: u64) -> Option<Duration> {
        let total = self.totals[endsystem];
        if total < min_observations.max(1) {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let row = endsystem * self.buckets.len();
        let mut acc = 0u64;
        for i in 0..self.buckets.len() {
            acc += u64::from(self.counts[row + i]);
            if acc as f64 >= q * total as f64 {
                // The overflow bucket has no meaningful upper edge; its
                // midpoint (2× the histogram range) is already far beyond
                // any sane hedge delay and callers clamp further.
                if i == self.buckets.len() - 1 {
                    return Some(self.buckets.midpoint(i));
                }
                return Some(self.buckets.upper_edge(i));
            }
        }
        Some(self.buckets.midpoint(self.buckets.len() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_estimate_below_min_observations() {
        let mut s = ReplyLatencyStats::new(2);
        for _ in 0..3 {
            s.observe(0, Duration::from_millis(20));
        }
        assert_eq!(s.quantile(0, 0.9, 4), None);
        s.observe(0, Duration::from_millis(20));
        assert!(s.quantile(0, 0.9, 4).is_some());
        // Per-endsystem isolation: endsystem 1 saw nothing.
        assert_eq!(s.observations(1), 0);
        assert_eq!(s.quantile(1, 0.9, 1), None);
    }

    #[test]
    fn quantile_is_conservative_and_monotone() {
        let mut s = ReplyLatencyStats::new(1);
        for ms in [10u64, 10, 10, 10, 10, 10, 10, 10, 10, 500] {
            s.observe(0, Duration::from_millis(ms));
        }
        let p50 = s.quantile(0, 0.5, 1).unwrap();
        let p99 = s.quantile(0, 0.99, 1).unwrap();
        assert!(p50 >= Duration::from_millis(10), "upper edge: {p50:?}");
        assert!(p50 < Duration::from_millis(50));
        assert!(p99 >= Duration::from_millis(500));
        assert!(p50 <= p99);
    }

    #[test]
    fn outliers_land_in_overflow() {
        let mut s = ReplyLatencyStats::new(1);
        s.observe(0, Duration::from_hours(2));
        let q = s.quantile(0, 0.9, 1).unwrap();
        assert!(q > MAX_LATENCY);
    }
}
