//! Synthetic Gnutella-like availability traces (high churn).
//!
//! Figure 10 of the paper re-runs the overhead experiment on a 60-hour
//! Gnutella activity trace with 7,602 endsystems and a mean departure rate
//! of 9.46×10⁻⁵ per online endsystem per second — 23× the Farsite rate.
//! Peer-to-peer availability studies [Saroiu et al., MMCN 2002; Bhagwan et
//! al., IPTPS 2003] report short, roughly exponential sessions with no
//! strong diurnal structure and low overall availability; this generator
//! reproduces those marginals.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_types::{Duration, Time};

use crate::trace::{AvailabilityTrace, Intervals};

/// Configuration of the Gnutella-like generator.
#[derive(Clone, Debug)]
pub struct GnutellaConfig {
    pub num_endsystems: usize,
    pub horizon: Duration,
    /// Mean up-session length. The paper's departure rate of 9.46e-5 per
    /// online second corresponds to a mean session of ~2.9 hours.
    pub up_mean: Duration,
    /// Mean down span between sessions.
    pub down_mean: Duration,
}

/// RNG stream constant for Gnutella trace generation (registered in
/// lint.toml `[[stream]]`).
const GNUTELLA_STREAM: u64 = 0x0097_e11a_c442;

impl Default for GnutellaConfig {
    fn default() -> Self {
        GnutellaConfig {
            num_endsystems: 7_602,
            horizon: Duration::from_hours(60),
            up_mean: Duration::from_secs((1.0 / 9.46e-5) as u64), // ~2.94 h
            down_mean: Duration::from_hours(4),
        }
    }
}

impl GnutellaConfig {
    /// Small-population config for tests.
    #[must_use]
    pub fn small(num_endsystems: usize, hours: u64) -> Self {
        GnutellaConfig {
            num_endsystems,
            horizon: Duration::from_hours(hours),
            ..GnutellaConfig::default()
        }
    }

    /// Generates the trace, deterministic in `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> AvailabilityTrace {
        let mut rng = StdRng::seed_from_u64(seed ^ GNUTELLA_STREAM);
        let horizon = self.horizon.as_micros();
        let duty = self.up_mean.as_micros() as f64
            / (self.up_mean.as_micros() + self.down_mean.as_micros()) as f64;
        let mut all = Vec::with_capacity(self.num_endsystems);
        for _ in 0..self.num_endsystems {
            let mut iv: Intervals = Vec::new();
            let mut t: u64 = 0;
            let mut up = rng.gen::<f64>() < duty;
            while t < horizon {
                let mean = if up { self.up_mean } else { self.down_mean };
                let span = exp_sample(&mut rng, mean).max(Duration::from_mins(2));
                let end = t.saturating_add(span.as_micros()).min(horizon);
                if up && end > t {
                    iv.push((Time::from_micros(t), Time::from_micros(end)));
                }
                t = end;
                up = !up;
            }
            all.push(iv);
        }
        AvailabilityTrace::new(all, Time::ZERO + self.horizon)
    }
}

fn exp_sample(rng: &mut StdRng, mean: Duration) -> Duration {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    Duration::from_secs_f64(-mean.as_secs_f64() * u.ln())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn departure_rate_matches_paper() {
        let cfg = GnutellaConfig::small(3000, 60);
        let trace = cfg.generate(13);
        let stats = trace.stats();
        // Paper: 9.46e-5 departures per online endsystem per second.
        assert!(
            (6.0e-5..=1.4e-4).contains(&stats.departure_rate_per_online_sec),
            "departure rate {:.2e} outside band",
            stats.departure_rate_per_online_sec
        );
        // Availability should be well below enterprise levels.
        assert!(stats.mean_availability < 0.6);
        assert!(stats.mean_availability > 0.2);
    }

    #[test]
    fn churn_is_much_higher_than_farsite() {
        let g = GnutellaConfig::small(1000, 60).generate(1).stats();
        let f = crate::farsite::FarsiteConfig::small(1000, 1)
            .generate(1)
            .0
            .stats();
        assert!(
            g.departure_rate_per_online_sec > 8.0 * f.departure_rate_per_online_sec,
            "gnutella {:.2e} vs farsite {:.2e}",
            g.departure_rate_per_online_sec,
            f.departure_rate_per_online_sec
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GnutellaConfig::small(50, 10);
        let a = cfg.generate(3);
        let b = cfg.generate(3);
        for n in 0..50 {
            assert_eq!(a.intervals(n), b.intervals(n));
        }
    }
}
