//! An alternative availability predictor (cf. related work, ref. 24:
//! Mickens & Noble, NSDI 2006: "others have developed alternative
//! predictors which could potentially improve Seaweed's performance").
//!
//! Where the paper's model keeps a *down-duration* distribution and an
//! *up-event hour* distribution, this predictor keeps an empirical
//! **hour-of-week availability profile**: for each of the 168 hours of
//! the week, the fraction of past weeks the endsystem was up at that
//! hour. Return-time prediction scans the profile forward from "now" and
//! places mass at each slot proportional to the probability the
//! endsystem first reappears there. It captures weekly structure
//! (weekends!) that the paper's 24-hour model folds together, at the
//! price of needing more history and 7× the state.

use seaweed_types::{Duration, Time};

use crate::model::ReturnPrediction;
use crate::trace::AvailabilityTrace;

/// Hours in a week.
pub const WEEK_HOURS: usize = 168;

/// Empirical hour-of-week availability profile of one endsystem.
#[derive(Clone, Debug)]
pub struct HourOfWeekModel {
    /// Number of sampled weeks each slot was observed up.
    up: [u16; WEEK_HOURS],
    /// Number of weeks sampled per slot.
    weeks: [u16; WEEK_HOURS],
}

impl Default for HourOfWeekModel {
    fn default() -> Self {
        HourOfWeekModel {
            up: [0; WEEK_HOURS],
            weeks: [0; WEEK_HOURS],
        }
    }
}

impl HourOfWeekModel {
    /// Learns the profile from an endsystem's up intervals, sampling each
    /// whole hour mark up to `until` (mirroring the Farsite study's
    /// hourly-ping methodology).
    #[must_use]
    pub fn learn_from_intervals(intervals: &[(Time, Time)], until: Time) -> Self {
        let mut m = HourOfWeekModel::default();
        let hours = until.hours_since_epoch();
        for h in 0..hours {
            let t = Time::from_micros(h * Duration::HOUR.as_micros());
            let slot = (h % WEEK_HOURS as u64) as usize;
            m.weeks[slot] = m.weeks[slot].saturating_add(1);
            if is_up_at(intervals, t) {
                m.up[slot] = m.up[slot].saturating_add(1);
            }
        }
        m
    }

    /// Convenience: learn from a trace's node.
    #[must_use]
    pub fn learn_from_trace(trace: &AvailabilityTrace, node: usize, until: Time) -> Self {
        Self::learn_from_intervals(trace.intervals(node), until)
    }

    /// P(up) at the given hour-of-week slot (0.5 when unobserved).
    #[must_use]
    pub fn p_up(&self, slot: usize) -> f64 {
        let w = self.weeks[slot % WEEK_HOURS];
        if w == 0 {
            return 0.5;
        }
        f64::from(self.up[slot % WEEK_HOURS]) / f64::from(w)
    }

    /// Predicts the delay until the endsystem next becomes available,
    /// given it is down at `now`: scan the next two weeks of hour slots;
    /// the probability the endsystem *first* returns in slot `i` is
    /// `p_up(i) · Π_{j<i}(1 − p_up(j))`.
    #[must_use]
    pub fn predict_return(&self, now: Time) -> ReturnPrediction {
        let start = now.hours_since_epoch() + 1;
        let mut survive = 1.0f64;
        let mut mass = Vec::new();
        for step in 0..(2 * WEEK_HOURS as u64) {
            let h = start + step;
            let slot = (h % WEEK_HOURS as u64) as usize;
            let p = self.p_up(slot);
            let hit = survive * p;
            if hit > 1e-4 {
                let at =
                    Time::from_micros(h * Duration::HOUR.as_micros()) + Duration::from_mins(30);
                mass.push((at.saturating_since(now), hit));
            }
            survive *= 1.0 - p;
            if survive < 1e-4 {
                break;
            }
        }
        if mass.is_empty() {
            // Never seen up: fall far in the future.
            return ReturnPrediction::point(Duration::from_days(7));
        }
        // Any residual survival mass lands on the final slot.
        let total: f64 = mass.iter().map(|(_, w)| w).sum();
        for m in &mut mass {
            m.1 /= total;
        }
        ReturnPrediction { mass }
    }

    /// Serialized size: 168 packed per-slot counters — 7× the paper's
    /// 48-byte model.
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        336
    }
}

fn is_up_at(intervals: &[(Time, Time)], t: Time) -> bool {
    intervals.iter().any(|&(up, down)| up <= t && t < down)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn office_intervals(weeks: u64) -> Vec<(Time, Time)> {
        // Up 08:00-18:00 on weekdays only.
        let mut iv = Vec::new();
        for d in 0..(7 * weeks) {
            if d % 7 < 5 {
                iv.push((
                    Time::ZERO + Duration::from_days(d) + Duration::from_hours(8),
                    Time::ZERO + Duration::from_days(d) + Duration::from_hours(18),
                ));
            }
        }
        iv
    }

    #[test]
    fn learns_weekday_profile() {
        let iv = office_intervals(4);
        let m = HourOfWeekModel::learn_from_intervals(&iv, Time::ZERO + Duration::from_days(28));
        // Monday 10:00 (slot 10): always up.
        assert!(m.p_up(10) > 0.99);
        // Monday 03:00: always down.
        assert!(m.p_up(3) < 0.01);
        // Saturday noon (slot 5*24+12=132): always down.
        assert!(m.p_up(132) < 0.01);
    }

    #[test]
    fn predicts_monday_morning_across_the_weekend() {
        let iv = office_intervals(4);
        let m = HourOfWeekModel::learn_from_intervals(&iv, Time::ZERO + Duration::from_days(28));
        // It is Friday 20:00 of week 5 and the machine is off; the next
        // availability is Monday ~08:00 — about 60 hours away. The
        // paper's 24-hour model would predict "tomorrow morning" (12 h),
        // which is wrong across a weekend.
        let now = Time::ZERO + Duration::from_days(28 + 4) + Duration::from_hours(20);
        let pred = m.predict_return(now);
        let expected = pred.expected();
        assert!(
            expected > Duration::from_hours(55) && expected < Duration::from_hours(65),
            "expected ~60h, got {expected}"
        );
    }

    #[test]
    fn predicts_next_morning_midweek() {
        let iv = office_intervals(4);
        let m = HourOfWeekModel::learn_from_intervals(&iv, Time::ZERO + Duration::from_days(28));
        // Tuesday 22:00: next up Wednesday 08:00, ~10 h.
        let now = Time::ZERO + Duration::from_days(29) + Duration::from_hours(22);
        let pred = m.predict_return(now);
        let expected = pred.expected();
        assert!(
            expected > Duration::from_hours(9) && expected < Duration::from_hours(12),
            "expected ~10h, got {expected}"
        );
    }

    #[test]
    fn mass_is_normalized() {
        let iv = office_intervals(3);
        let m = HourOfWeekModel::learn_from_intervals(&iv, Time::ZERO + Duration::from_days(21));
        let pred = m.predict_return(Time::ZERO + Duration::from_days(22));
        let total: f64 = pred.mass.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_history_defaults_far_out() {
        let m = HourOfWeekModel::default();
        // p_up = 0.5 everywhere => expected return ~within a couple hours.
        let pred = m.predict_return(Time::ZERO + Duration::from_days(1));
        assert!(pred.expected() < Duration::from_hours(4));
        // A machine never seen up at all:
        let never =
            HourOfWeekModel::learn_from_intervals(&[], Time::ZERO + Duration::from_days(14));
        let pred = never.predict_return(Time::ZERO + Duration::from_days(15));
        assert!(pred.expected() >= Duration::from_days(7));
    }

    #[test]
    fn wire_size_documented() {
        assert_eq!(HourOfWeekModel::default().wire_size(), 336);
    }
}
