//! Property-based tests for traces and availability models.

use proptest::prelude::*;
use seaweed_availability::{AvailabilityModel, FarsiteConfig, GnutellaConfig, ModelConfig};
use seaweed_types::{Duration, Time};

fn hours(h: u64) -> Time {
    Time::from_micros(h * Duration::HOUR.as_micros())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated traces always satisfy structural invariants (sorted,
    /// disjoint, in-horizon) — enforced by the constructor, so building
    /// is itself the assertion — and statistics are sane.
    #[test]
    fn farsite_traces_are_structurally_sound(seed in 0u64..500, n in 20usize..120) {
        let (trace, profiles) = FarsiteConfig::small(n, 1).generate(seed);
        prop_assert_eq!(trace.num_endsystems(), n);
        prop_assert_eq!(profiles.len(), n);
        let stats = trace.stats();
        prop_assert!(stats.mean_availability > 0.0 && stats.mean_availability <= 1.0);
        prop_assert!(stats.departure_rate_per_online_sec >= 0.0);
        // Hourly availability series length matches horizon.
        prop_assert_eq!(trace.hourly_availability().len(), 168);
    }

    #[test]
    fn gnutella_traces_are_structurally_sound(seed in 0u64..500, n in 20usize..120) {
        let trace = GnutellaConfig::small(n, 24).generate(seed);
        let stats = trace.stats();
        prop_assert!(stats.mean_availability > 0.0 && stats.mean_availability < 1.0);
        // High churn: mean session well under a day.
        prop_assert!(stats.mean_session < Duration::from_hours(24));
    }

    /// is_up / next_up_at / is_up_during agree with each other on random
    /// probes.
    #[test]
    fn trace_queries_are_consistent(seed in 0u64..200, node in 0usize..30, probe_h in 0u64..167) {
        let (trace, _) = FarsiteConfig::small(30, 1).generate(seed);
        let t = hours(probe_h);
        let up = trace.is_up(node, t);
        if up {
            prop_assert_eq!(trace.next_up_at(node, t), Some(t));
            prop_assert!(trace.is_up_during(node, t, t + Duration::from_mins(1), Duration::ZERO));
        } else if let Some(next) = trace.next_up_at(node, t) {
            prop_assert!(next > t);
            prop_assert!(trace.is_up(node, next));
        }
    }

    /// Model predictions are proper probability distributions with
    /// non-negative delays, whatever history they saw.
    #[test]
    fn predictions_are_distributions(
        spans in prop::collection::vec((1u64..72, 0u64..24), 1..40),
        elapsed_h in 0u64..100,
    ) {
        let mut m = AvailabilityModel::new(ModelConfig::default());
        let mut t = Time::ZERO;
        for (down_h, up_hour) in spans {
            t += Duration::from_days(1);
            let at = Time::from_micros(
                t.as_micros() / Duration::DAY.as_micros() * Duration::DAY.as_micros()
            ) + Duration::from_hours(up_hour);
            m.observe_up(Duration::from_hours(down_h), at);
        }
        let now = Time::ZERO + Duration::from_days(200);
        let pred = m.predict_return(now, now - Duration::from_hours(elapsed_h));
        prop_assert!(!pred.mass.is_empty());
        let total: f64 = pred.mass.iter().map(|(_, w)| w).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        for (d, w) in &pred.mass {
            prop_assert!(*w >= 0.0);
            prop_assert!(*d <= Duration::from_days(15), "delay {d}");
        }
        // CDF is monotone and reaches ~1.
        let mut last = 0.0;
        for h in [1u64, 4, 12, 24, 24 * 7, 24 * 20] {
            let c = pred.cdf(Duration::from_hours(h));
            prop_assert!(c + 1e-12 >= last);
            last = c;
        }
        prop_assert!((pred.cdf(Duration::from_days(30)) - 1.0).abs() < 1e-9);
    }

    /// Learning from intervals never panics and yields one observation
    /// per up-transition (plus the initial down spell).
    #[test]
    fn learn_counts_up_events(seed in 0u64..200) {
        let (trace, _) = FarsiteConfig::small(10, 2).generate(seed);
        for node in 0..10 {
            let until = trace.horizon();
            let m = AvailabilityModel::learn_from_intervals(
                ModelConfig::default(),
                trace.intervals(node),
                until,
            );
            let expected = trace
                .intervals(node)
                .iter()
                .filter(|&&(up, _)| up > Time::ZERO)
                .count() as u32;
            prop_assert!(m.observations() <= expected + 1);
            prop_assert!(m.observations() + 1 >= expected.min(1));
        }
    }
}

/// Replay must deliver exactly the trace's transitions, in order.
#[test]
fn replay_round_trips_transitions() {
    use seaweed_sim::{Engine, Event, SimConfig, UniformTopology};
    let (trace, _) = FarsiteConfig::small(25, 1).generate(77);
    let mut eng: Engine<()> = Engine::new(
        Box::new(UniformTopology::new(25, Duration::MILLISECOND)),
        SimConfig::default(),
    );
    trace.replay_into(&mut eng);
    let mut transitions: Vec<(u64, usize, bool)> = Vec::new();
    while let Some((t, ev)) = eng.next_event_before(trace.horizon()) {
        match ev {
            Event::NodeUp { node } => transitions.push((t.as_micros(), node.idx(), true)),
            Event::NodeDown { node } => transitions.push((t.as_micros(), node.idx(), false)),
            _ => {}
        }
    }
    // Check against the trace, node by node.
    for node in 0..25 {
        let mine: Vec<&(u64, usize, bool)> =
            transitions.iter().filter(|(_, n, _)| *n == node).collect();
        let mut expect = Vec::new();
        for &(up, down) in trace.intervals(node) {
            expect.push((up.as_micros(), true));
            if down < trace.horizon() {
                expect.push((down.as_micros(), false));
            }
        }
        let got: Vec<(u64, bool)> = mine.iter().map(|&&(t, _, u)| (t, u)).collect();
        assert_eq!(got, expect, "node {node}");
    }
}
