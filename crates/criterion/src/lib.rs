//! Vendored stand-in for the parts of the `criterion` crate this
//! workspace uses, so benches build without registry access.
//!
//! Behavior matches upstream's contract with Cargo:
//! - `cargo bench` passes `--bench`, enabling full measurement
//!   (warm-up, calibrated batches, median-of-samples reporting).
//! - `cargo test` runs each benchmark body exactly once as a smoke
//!   test, keeping the tier-1 suite fast.
//!
//! A positional argument filters benchmarks by substring, as upstream.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Quantity processed per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// One iteration per benchmark: `cargo test` smoke run.
    Test,
    /// Full measurement: `cargo bench`.
    Bench,
}

/// The per-benchmark measurement driver handed to bench closures.
pub struct Bencher {
    mode: Mode,
    /// Median nanoseconds per iteration, filled in Bench mode.
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `f`, called in a loop. In smoke mode, runs it once.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.mode == Mode::Test {
            black_box(f());
            return;
        }
        // Warm up and calibrate: double the batch size until one batch
        // takes long enough to time reliably.
        let mut batch = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(60) {
                break elapsed.as_nanos() as f64 / batch as f64;
            }
            batch = batch.saturating_mul(2);
        };
        // Measure: several batches sized for ~200ms each, report the
        // median to shrug off scheduler noise.
        let batch = ((2e8 / per_iter) as u64).max(1);
        let mut samples = Vec::with_capacity(5);
        for _ in 0..5 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = Some(samples[samples.len() / 2]);
    }
}

/// Top-level benchmark registry/driver.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Test,
            filter: None,
        }
    }
}

impl Criterion {
    /// Reads the harness arguments Cargo passes to `harness = false`
    /// targets (`--bench` under `cargo bench`; a positional substring
    /// filter under both commands).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => self.mode = Mode::Bench,
                a if !a.starts_with('-') => self.filter = Some(a.to_string()),
                _ => {}
            }
        }
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        self.run(&id, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn run(&mut self, name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            mode: self.mode,
            ns_per_iter: None,
        };
        f(&mut b);
        match self.mode {
            Mode::Test => println!("{name}: ok (smoke)"),
            Mode::Bench => {
                let ns = b
                    .ns_per_iter
                    .expect("bench closure must call Bencher::iter");
                let mut line = format!("{name:<45} time: [{}]", fmt_time(ns));
                if let Some(t) = throughput {
                    line.push_str(&format!("  thrpt: [{}]", fmt_throughput(ns, t)));
                }
                println!("{line}");
            }
        }
    }
}

/// A named group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let throughput = self.throughput;
        self.criterion.run(&full, throughput, f);
        self
    }

    pub fn finish(self) {}
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_throughput(ns_per_iter: f64, t: Throughput) -> String {
    let per_sec = |count: u64| count as f64 / (ns_per_iter / 1e9);
    match t {
        Throughput::Bytes(n) => {
            let rate = per_sec(n);
            if rate >= 1e9 {
                format!("{:.3} GiB/s", rate / (1u64 << 30) as f64)
            } else if rate >= 1e6 {
                format!("{:.3} MiB/s", rate / f64::from(1u32 << 20))
            } else {
                format!("{:.3} KiB/s", rate / 1024.0)
            }
        }
        Throughput::Elements(n) => {
            let rate = per_sec(n);
            if rate >= 1e6 {
                format!("{:.4} Melem/s", rate / 1e6)
            } else {
                format!("{:.1} elem/s", rate)
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("unit/one_shot", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_filter_and_format() {
        let mut c = Criterion {
            mode: Mode::Test,
            filter: Some("keep".to_string()),
        };
        let mut kept = 0u32;
        let mut skipped = 0u32;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(1024));
            g.bench_function("keep_this", |b| b.iter(|| kept += 1));
            g.bench_function("drop_this", |b| b.iter(|| skipped += 1));
            g.finish();
        }
        assert_eq!((kept, skipped), (1, 0));
        assert!(fmt_time(12.3).contains("ns"));
        assert!(fmt_time(12_300.0).contains("µs"));
        assert!(fmt_throughput(1.0, Throughput::Elements(1)).contains("elem/s"));
    }
}
