#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! Analytic scalability models (paper §4.2).
//!
//! Closed-form background-maintenance bandwidth for four architectures —
//! Centralized (Eq. 1), Seaweed (Eq. 2), DHT-replicated (Eq. 3) and PIER
//! (Eq. 4) — plus PIER's availability decay (Table 2) and the parameter
//! sweeps behind Figures 3 and 4.

pub mod models;
pub mod params;
pub mod pier;
pub mod sweep;

pub use models::{maintenance_bps, Architecture};
pub use params::ModelParams;
pub use pier::pier_availability;
pub use sweep::{sweep, SweepAxis, SweepPoint};
