//! Parameter sweeps behind Figures 3 and 4.

use crate::models::{maintenance_bps, Architecture};
use crate::params::{ModelParams, PIER_REFRESH_1H, PIER_REFRESH_5MIN};

/// Which Table 1 parameter a sweep varies (Figure 3's four panels).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SweepAxis {
    /// (a) network size N.
    NetworkSize,
    /// (b) data update rate u.
    UpdateRate,
    /// (c) database size d.
    DatabaseSize,
    /// (d) churn rate c.
    ChurnRate,
}

impl SweepAxis {
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SweepAxis::NetworkSize => "N (endsystems)",
            SweepAxis::UpdateRate => "u (bytes/s)",
            SweepAxis::DatabaseSize => "d (bytes)",
            SweepAxis::ChurnRate => "c (1/s)",
        }
    }

    /// The paper's log-scaled x-range for each panel.
    #[must_use]
    pub fn default_range(self) -> (f64, f64) {
        match self {
            SweepAxis::NetworkSize => (1e3, 1e9),
            SweepAxis::UpdateRate => (1e0, 1e6),
            SweepAxis::DatabaseSize => (1e6, 1e12),
            SweepAxis::ChurnRate => (1e-8, 1e-2),
        }
    }

    fn apply(self, base: &ModelParams, value: f64) -> ModelParams {
        let mut p = *base;
        match self {
            SweepAxis::NetworkSize => p.n = value,
            SweepAxis::UpdateRate => p.u = value,
            SweepAxis::DatabaseSize => p.d = value,
            SweepAxis::ChurnRate => p.c = value,
        }
        p
    }
}

/// One sweep sample: the x value plus each architecture's bandwidth
/// (PIER at both refresh periods, as plotted in the paper).
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    pub x: f64,
    pub centralized: f64,
    pub seaweed: f64,
    pub dht_replicated: f64,
    pub pier_5min: f64,
    pub pier_1h: f64,
}

/// Sweeps `axis` log-uniformly over `(lo, hi)` with `points` samples,
/// holding the other parameters at `base`.
#[must_use]
pub fn sweep(
    base: &ModelParams,
    axis: SweepAxis,
    lo: f64,
    hi: f64,
    points: usize,
) -> Vec<SweepPoint> {
    assert!(points >= 2 && lo > 0.0 && hi > lo);
    let step = (hi / lo).ln() / (points - 1) as f64;
    (0..points)
        .map(|i| {
            let x = lo * (step * i as f64).exp();
            let p = axis.apply(base, x);
            let mut p5 = p;
            p5.r = PIER_REFRESH_5MIN;
            let mut p1 = p;
            p1.r = PIER_REFRESH_1H;
            SweepPoint {
                x,
                centralized: maintenance_bps(Architecture::Centralized, &p),
                seaweed: maintenance_bps(Architecture::Seaweed, &p),
                dht_replicated: maintenance_bps(Architecture::DhtReplicated, &p),
                pier_5min: maintenance_bps(Architecture::Pier, &p5),
                pier_1h: maintenance_bps(Architecture::Pier, &p1),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_linear_in_network_size() {
        // Figure 3(a): every curve is linear in N (constant per-endsystem
        // factors), so doubling N doubles every bandwidth.
        let pts = sweep(&ModelParams::default(), SweepAxis::NetworkSize, 1e4, 2e4, 2);
        for (a, b) in [
            (pts[0].centralized, pts[1].centralized),
            (pts[0].seaweed, pts[1].seaweed),
            (pts[0].dht_replicated, pts[1].dht_replicated),
            (pts[0].pier_5min, pts[1].pier_5min),
        ] {
            assert!((b / a - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn update_rate_panel_shapes() {
        // Figure 3(b): PIER flat in u; Seaweed flat; centralized linear;
        // DHT has a u-dependent and a u-independent term.
        let pts = sweep(&ModelParams::default(), SweepAxis::UpdateRate, 1.0, 1e6, 7);
        assert!((pts[0].pier_5min - pts[6].pier_5min).abs() < 1.0);
        assert!((pts[0].seaweed - pts[6].seaweed).abs() < 1.0);
        assert!(pts[6].centralized > pts[0].centralized * 1e5);
        assert!(pts[6].dht_replicated > pts[0].dht_replicated);
        // Crossover the paper describes: DHT starts two orders below PIER
        // at low u and "approaches and then exceeds" it at high rates
        // (crossing the 1-hour-refresh PIER inside this range).
        assert!(pts[0].dht_replicated < pts[0].pier_5min / 50.0);
        assert!(pts[0].dht_replicated < pts[0].pier_1h);
        assert!(pts[6].dht_replicated > pts[6].pier_1h);
    }

    #[test]
    fn database_size_panel_shapes() {
        // Figure 3(c): centralized and Seaweed flat in d; PIER and DHT
        // linear in d.
        let pts = sweep(
            &ModelParams::default(),
            SweepAxis::DatabaseSize,
            1e6,
            1e12,
            7,
        );
        assert!((pts[0].centralized - pts[6].centralized).abs() < 1.0);
        assert!((pts[0].seaweed - pts[6].seaweed).abs() < 1.0);
        assert!(pts[6].pier_5min / pts[0].pier_5min > 1e5);
        assert!(pts[6].dht_replicated / pts[0].dht_replicated > 1e3);
    }

    #[test]
    fn churn_panel_shapes() {
        // Figure 3(d): PIER and centralized churn-independent; DHT linear
        // in c; Seaweed's churn term only matters at very high churn.
        let pts = sweep(&ModelParams::default(), SweepAxis::ChurnRate, 1e-8, 1e-2, 7);
        assert!((pts[0].pier_5min - pts[6].pier_5min).abs() < 1.0);
        assert!((pts[0].centralized - pts[6].centralized).abs() < 1.0);
        assert!(pts[6].dht_replicated / pts[0].dht_replicated > 1e4);
        // Seaweed at default churn is dominated by the periodic push term.
        let ratio = pts[6].seaweed / pts[0].seaweed;
        assert!(ratio > 1.0 && ratio < 100.0, "seaweed churn ratio {ratio}");
    }

    #[test]
    fn figure4_small_db_favours_pier_and_centralized() {
        let base = ModelParams::small_db_low_rate();
        let pts = sweep(&base, SweepAxis::NetworkSize, 1e5, 2e5, 2);
        let p = pts[0];
        // §4.2.5: "the centralized approach is the best at these low
        // update rates".
        assert!(p.centralized < p.seaweed);
        assert!(p.centralized < p.dht_replicated);
        assert!(p.centralized < p.pier_1h);
    }
}
