//! Equations (1)–(4): system-wide maintenance bandwidth in bytes/sec.

use crate::params::ModelParams;

/// The four architectures compared in §4.2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Architecture {
    /// Eq. 1: all data backhauled to one warehouse: `f_on · N · u`.
    Centralized,
    /// Eq. 2: Seaweed replicates only metadata:
    /// `f_on·N·k·p·h + (1/f_on)·N·c·k·(h + a)`.
    Seaweed,
    /// Eq. 3: every tuple k-way replicated in the DHT:
    /// `f_on·N·k·u + (1/f_on)·N·c·k·d`.
    DhtReplicated,
    /// Eq. 4: PIER re-inserts the whole database at rate r:
    /// `f_on·N·d·r`.
    Pier,
}

impl Architecture {
    /// All four, in the paper's presentation order.
    pub const ALL: [Architecture; 4] = [
        Architecture::Centralized,
        Architecture::Seaweed,
        Architecture::DhtReplicated,
        Architecture::Pier,
    ];

    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Architecture::Centralized => "Centralized",
            Architecture::Seaweed => "Seaweed",
            Architecture::DhtReplicated => "DHT-replicated",
            Architecture::Pier => "PIER",
        }
    }
}

/// System-wide background maintenance bandwidth, bytes per second.
#[must_use]
pub fn maintenance_bps(arch: Architecture, p: &ModelParams) -> f64 {
    match arch {
        Architecture::Centralized => p.f_on * p.n * p.u,
        Architecture::Seaweed => {
            p.f_on * p.n * p.k * p.p * p.h + (1.0 / p.f_on) * p.n * p.c * p.k * (p.h + p.a)
        }
        Architecture::DhtReplicated => {
            p.f_on * p.n * p.k * p.u + (1.0 / p.f_on) * p.n * p.c * p.k * p.d
        }
        Architecture::Pier => p.f_on * p.n * p.d * p.r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{PIER_REFRESH_1H, PIER_REFRESH_5MIN};

    fn bps(arch: Architecture) -> f64 {
        maintenance_bps(arch, &ModelParams::default())
    }

    #[test]
    fn equations_match_hand_computation() {
        let p = ModelParams::default();
        // Eq. 1.
        assert!((bps(Architecture::Centralized) - 0.81 * 300_000.0 * 970.0).abs() < 1.0);
        // Eq. 2.
        let seaweed = 0.81 * 300_000.0 * 4.0 * (1.0 / 300.0) * 6_473.0
            + (1.0 / 0.81) * 300_000.0 * 6.9e-6 * 4.0 * (6_473.0 + 48.0);
        assert!((bps(Architecture::Seaweed) - seaweed).abs() < 1.0);
        // Eq. 3.
        let dht = 0.81 * 300_000.0 * 4.0 * 970.0 + (1.0 / 0.81) * 300_000.0 * 6.9e-6 * 4.0 * 2.6e9;
        assert!((bps(Architecture::DhtReplicated) - dht).abs() < 1.0);
        // Eq. 4.
        assert!((bps(Architecture::Pier) - 0.81 * 300_000.0 * 2.6e9 * p.r).abs() < 1e3);
    }

    /// §4.2.5: at Table 1 values Seaweed is ~10× below the centralized
    /// solution and ≥1000× below the other distributed designs.
    #[test]
    fn paper_ordering_holds_at_defaults() {
        let seaweed = bps(Architecture::Seaweed);
        let central = bps(Architecture::Centralized);
        let dht = bps(Architecture::DhtReplicated);
        let pier = bps(Architecture::Pier);
        assert!(
            central / seaweed > 5.0,
            "central/seaweed = {}",
            central / seaweed
        );
        assert!(central / seaweed < 20.0);
        assert!(dht / seaweed > 1000.0, "dht/seaweed = {}", dht / seaweed);
        assert!(pier / seaweed > 1000.0, "pier/seaweed = {}", pier / seaweed);
    }

    /// §4.2.5 / Figure 4: a low update rate favours the centralized
    /// design; it beats Seaweed there.
    #[test]
    fn low_update_rate_favours_centralized() {
        let p = ModelParams::small_db_low_rate();
        let central = maintenance_bps(Architecture::Centralized, &p);
        let seaweed = maintenance_bps(Architecture::Seaweed, &p);
        assert!(central < seaweed, "central {central} vs seaweed {seaweed}");
    }

    /// PIER's 1-hour refresh is 12× cheaper than 5-minute.
    #[test]
    fn pier_refresh_scaling() {
        let fast = maintenance_bps(
            Architecture::Pier,
            &ModelParams {
                r: PIER_REFRESH_5MIN,
                ..ModelParams::default()
            },
        );
        let slow = maintenance_bps(
            Architecture::Pier,
            &ModelParams {
                r: PIER_REFRESH_1H,
                ..ModelParams::default()
            },
        );
        assert!((fast / slow - 12.0).abs() < 0.01);
    }

    /// Seaweed's overhead is independent of u and d; DHT's grows with
    /// both; centralized with u only; PIER with d only.
    #[test]
    fn sensitivity_structure() {
        let base = ModelParams::default();
        let mut big = base;
        big.u *= 100.0;
        big.d *= 100.0;
        assert_eq!(
            maintenance_bps(Architecture::Seaweed, &base),
            maintenance_bps(Architecture::Seaweed, &big)
        );
        assert!(
            maintenance_bps(Architecture::Centralized, &big)
                > maintenance_bps(Architecture::Centralized, &base) * 99.0
        );
        assert!(
            maintenance_bps(Architecture::Pier, &big)
                > maintenance_bps(Architecture::Pier, &base) * 99.0
        );
        assert!(
            maintenance_bps(Architecture::DhtReplicated, &big)
                > maintenance_bps(Architecture::DhtReplicated, &base) * 50.0
        );
    }
}
