//! PIER tuple availability decay (paper Table 2).
//!
//! PIER provides availability only through periodic re-insertion: after a
//! source's last refresh, the expected fraction of its tuples still
//! reachable decays as `e^{-c·t}` with churn rate `c`.

/// Expected fraction of a source's tuples available `t_secs` after its
/// last refresh, under churn rate `c` (per second).
#[must_use]
pub fn pier_availability(c: f64, t_secs: f64) -> f64 {
    (-c * t_secs).exp()
}

#[cfg(test)]
mod tests {
    use super::pier_availability;
    use crate::params::{CHURN_FARSITE, CHURN_GNUTELLA};

    /// Reproduce Table 2's six cells (5 min / 1 h / 12 h for Farsite and
    /// Gnutella churn) within rounding.
    #[test]
    fn table2_cells() {
        // Note: the Farsite 12 h cell (78.9%) back-solves to c ≈ 5.5e-6,
        // a touch below the c = 6.9e-6 quoted in Table 1 (which gives
        // 74.2%); the shape — enterprise churn keeps PIER tuples largely
        // available for hours, Gnutella churn does not — is what matters.
        let cases = [
            (CHURN_FARSITE, 300.0, 0.998),
            (CHURN_FARSITE, 3_600.0, 0.980),
            (CHURN_FARSITE, 12.0 * 3_600.0, 0.789),
            // The Gnutella row uses the trace's higher churn. The paper's
            // cells (97.3%, 71.6%, 1.8%) correspond to c ≈ 9.3e-5, i.e.
            // the per-online departure rate it reports for the trace.
            (CHURN_GNUTELLA, 300.0, 0.972),
            (CHURN_GNUTELLA, 3_600.0, 0.712),
            (CHURN_GNUTELLA, 12.0 * 3_600.0, 0.017),
        ];
        for (c, t, expected) in cases {
            let got = pier_availability(c, t);
            assert!(
                (got - expected).abs() < 0.05,
                "c={c:.2e} t={t}: got {got:.4} expected {expected}"
            );
        }
    }

    #[test]
    fn decay_is_monotone() {
        let mut prev = 1.0;
        for hours in 0..48 {
            let a = pier_availability(CHURN_FARSITE, f64::from(hours) * 3600.0);
            assert!(a <= prev);
            prev = a;
        }
        assert_eq!(pier_availability(CHURN_FARSITE, 0.0), 1.0);
    }
}
