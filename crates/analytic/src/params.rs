//! Model parameters (paper Table 1).

/// The system parameters driving all four analytic models, with Table 1's
/// values as defaults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelParams {
    /// Number of endsystems (N). Table 1: 300,000 (Microsoft CorpNet).
    pub n: f64,
    /// Fraction of endsystems available on average (f_on). Farsite: 0.81.
    pub f_on: f64,
    /// Churn rate per endsystem per second (c). Farsite: 6.9e-6.
    pub c: f64,
    /// Data update rate per endsystem, bytes/sec (u). Anemone: 970.
    pub u: f64,
    /// Database size per endsystem, bytes (d). Anemone: 2.6 GB.
    pub d: f64,
    /// Replication factor (k). 4 in the analytic comparison.
    pub k: f64,
    /// Data summary size, bytes (h). Anemone: 6,473.
    pub h: f64,
    /// Availability model size, bytes (a). 48.
    pub a: f64,
    /// Seaweed summary push rate, 1/sec (p).
    ///
    /// Table 1 prints 0.033 s⁻¹ ("30 s period"), but with that value
    /// Eq. 2 gives Seaweed only a 1.13× advantage over the centralized
    /// design, contradicting §4.2.5's "outperforms the centralized
    /// solution by a factor of 10" and Figure 3. A 5-minute period
    /// (p = 1/300 ≈ 0.0033) reproduces the claimed factor exactly, so we
    /// default to that and read Table 1's entry as a typo (the same
    /// column lists PIER's 5-minute rate as 0.0033).
    pub p: f64,
    /// PIER data refresh rate, 1/sec (r). 0.0033 (5 min) or 2.8e-4 (1 h).
    pub r: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            n: 300_000.0,
            f_on: 0.81,
            c: 6.9e-6,
            u: 970.0,
            d: 2.6e9,
            k: 4.0,
            h: 6_473.0,
            a: 48.0,
            p: SUMMARY_PUSH_5MIN,
            r: PIER_REFRESH_5MIN,
        }
    }
}

/// Seaweed summary push rate for a 5-minute period (see the field docs on
/// [`ModelParams::p`] for why this, not Table 1's printed 0.033, is the
/// default).
pub const SUMMARY_PUSH_5MIN: f64 = 1.0 / 300.0;

/// Table 1's printed push rate (30 s period), kept for sensitivity runs.
pub const SUMMARY_PUSH_30S: f64 = 0.033;

/// PIER refresh rate for a 5-minute period (Table 1).
pub const PIER_REFRESH_5MIN: f64 = 1.0 / 300.0;

/// PIER refresh rate for a 1-hour period (Table 1).
pub const PIER_REFRESH_1H: f64 = 1.0 / 3600.0;

/// Farsite churn rate (Table 1 / §4.2).
pub const CHURN_FARSITE: f64 = 6.9e-6;

/// Gnutella-trace churn rate, derived the same way as Farsite's: the
/// departure rate per online endsystem (9.46e-5, §4.3.3) need not be
/// scaled here because Table 2 applies the rate to a source that is up.
pub const CHURN_GNUTELLA: f64 = 9.46e-5;

impl ModelParams {
    /// The Figure 4 variant: small database (100 MB) and low update rate
    /// (10 bytes/s).
    #[must_use]
    pub fn small_db_low_rate() -> Self {
        ModelParams {
            d: 100e6,
            u: 10.0,
            ..ModelParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table1() {
        let p = ModelParams::default();
        assert_eq!(p.n, 300_000.0);
        assert_eq!(p.f_on, 0.81);
        assert_eq!(p.c, 6.9e-6);
        assert_eq!(p.u, 970.0);
        assert_eq!(p.d, 2.6e9);
        assert_eq!(p.k, 4.0);
        assert_eq!(p.h, 6_473.0);
        assert_eq!(p.a, 48.0);
        assert!((p.p - 1.0 / 300.0).abs() < 1e-6);
        assert!((p.r - 0.0033).abs() < 1e-4);
    }

    #[test]
    fn figure4_variant() {
        let p = ModelParams::small_db_low_rate();
        assert_eq!(p.d, 100e6);
        assert_eq!(p.u, 10.0);
        assert_eq!(p.n, 300_000.0);
    }
}
