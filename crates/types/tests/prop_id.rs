//! Property-based tests for id arithmetic and namespace ranges.

use proptest::prelude::*;
use seaweed_types::{Id, IdRange};

proptest! {
    /// Reassembling an id from its digits reproduces the id, for every
    /// legal digit width.
    #[test]
    fn digits_roundtrip(v in any::<u128>(), b in prop::sample::select(vec![1u8, 2, 4, 8])) {
        let id = Id(v);
        let n = Id::num_digits(b);
        let mut rebuilt = Id::ZERO;
        for i in 0..n {
            rebuilt = rebuilt.with_digit(i, b, id.digit(i, b));
        }
        prop_assert_eq!(rebuilt, id);
    }

    /// prefix(k) and suffix(n-k) partition the bits of the id.
    #[test]
    fn prefix_suffix_partition(v in any::<u128>(), k in 0usize..=32) {
        let id = Id(v);
        let n = Id::num_digits(4);
        prop_assert_eq!(id.prefix(k, 4).0 | id.suffix(n - k, 4).0, id.0);
        prop_assert_eq!(id.prefix(k, 4).0 & id.suffix(n - k, 4).0, 0);
        prop_assert_eq!(id.concat(k, id, 4), id);
    }

    /// prefix_len is consistent with digit-by-digit comparison.
    #[test]
    fn prefix_len_matches_digits(a in any::<u128>(), b_v in any::<u128>()) {
        let (a, b) = (Id(a), Id(b_v));
        let l = a.prefix_len(b, 4);
        for i in 0..l {
            prop_assert_eq!(a.digit(i, 4), b.digit(i, 4));
        }
        if l < Id::num_digits(4) {
            prop_assert_ne!(a.digit(l, 4), b.digit(l, 4));
        }
    }

    /// Ring distance is symmetric, zero iff equal, and at most half the
    /// circle.
    #[test]
    fn ring_dist_properties(a in any::<u128>(), b in any::<u128>()) {
        let (x, y) = (Id(a), Id(b));
        prop_assert_eq!(x.ring_dist(y), y.ring_dist(x));
        prop_assert_eq!(x.ring_dist(x), 0);
        prop_assert!(x.ring_dist(y) <= 1u128 << 127);
        prop_assert_eq!(x.ring_dist(y) == 0, x == y);
    }

    /// cw_dist + ccw_dist is the full circle (mod 2^128) for distinct ids.
    #[test]
    fn cw_ccw_complement(a in any::<u128>(), b in any::<u128>()) {
        prop_assume!(a != b);
        let (x, y) = (Id(a), Id(b));
        prop_assert_eq!(x.cw_dist(y).wrapping_add(x.ccw_dist(y)), 0u128);
    }

    /// Splitting any range into k parts yields disjoint subranges whose
    /// widths sum to the original width, preserving order and coverage of
    /// sampled points.
    #[test]
    fn split_is_partition(
        start in any::<u128>(),
        width in 1u128..=u128::MAX,
        parts in 1u32..=32,
        probe in any::<u128>(),
    ) {
        let r = IdRange::new(Id(start), width);
        let subs = r.split(parts);
        prop_assert!(subs.len() <= parts as usize);
        let total: u128 = subs.iter().map(|s| s.width().unwrap()).sum();
        prop_assert_eq!(total, width);
        // Consecutive: each subrange starts where the previous ended.
        let mut cursor = Id(start);
        for s in &subs {
            prop_assert_eq!(s.start(), cursor);
            cursor = cursor.wrapping_add(s.width().unwrap());
        }
        // Membership of an arbitrary probe point is preserved exactly once.
        let p = Id(probe);
        let hits = subs.iter().filter(|s| s.contains(p)).count();
        prop_assert_eq!(hits, usize::from(r.contains(p)));
    }

    /// The full namespace splits into parts covering every probe exactly
    /// once.
    #[test]
    fn split_full_is_partition(parts in 1u32..=32, probe in any::<u128>()) {
        let subs = IdRange::FULL.split(parts);
        let hits = subs.iter().filter(|s| s.contains(Id(probe))).count();
        prop_assert_eq!(hits, 1);
    }

    /// A range contains its own start, last and midpoint.
    #[test]
    fn range_contains_landmarks(start in any::<u128>(), width in 1u128..u128::MAX) {
        let r = IdRange::new(Id(start), width);
        prop_assert!(r.contains(r.start()));
        prop_assert!(r.contains(r.last()));
        prop_assert!(r.contains(r.midpoint()));
        prop_assert!(!r.contains(r.start().wrapping_sub(1)));
        prop_assert!(!r.contains(r.last().wrapping_add(1)));
    }
}
