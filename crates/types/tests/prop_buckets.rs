//! Edge round-trip semantics of [`LogBuckets`].
//!
//! The bucket edges are rounded to whole microseconds at construction and
//! `index` consults the same integer table, so the forward map and the
//! edge accessors must agree *exactly* — the historical failure mode was
//! `index` recomputing the position with `ln` and drifting off a rounded
//! edge by one bucket.

use proptest::prelude::*;
use seaweed_types::{Duration, LogBuckets};

/// Every geometric bucket of the standard scheme (1 s .. 14 days over 48
/// buckets, 50 with under/overflow) round-trips its edges exactly.
#[test]
fn standard_edges_round_trip_exactly() {
    let b = LogBuckets::standard();
    assert_eq!(b.len(), 50);
    assert!(!b.is_empty());
    assert_eq!(b.index(Duration::ZERO), 0);
    for i in 1..=48 {
        let lo = b.lower_edge(i);
        let hi = b.upper_edge(i);
        assert_eq!(b.index(lo), i, "index(lower_edge({i}))");
        assert_eq!(
            b.index(hi),
            i + 1,
            "index(upper_edge({i})) opens the next bucket"
        );
        assert_eq!(
            b.index(hi - Duration::from_micros(1)),
            i,
            "upper edge is exclusive for bucket {i}"
        );
        assert!(lo < hi, "edges of {i} are ordered");
        assert!(
            lo <= b.midpoint(i) && b.midpoint(i) < hi,
            "midpoint of {i} inside its edges"
        );
    }
    // Overflow bucket: lower edge is max, and it contains everything above.
    assert_eq!(b.index(b.lower_edge(49)), 49);
    assert_eq!(b.index(Duration::from_micros(u64::MAX)), 49);
}

proptest! {
    /// Round-trips hold for arbitrary (valid) bucket specs, not just the
    /// standard one: any min/max/n whose rounded edges stay distinct.
    #[test]
    fn edges_round_trip_for_arbitrary_specs(
        min_us in 1u64..10_000_000,
        ratio in 2u64..100_000,
        n in 1usize..=62,
    ) {
        let min = Duration::from_micros(min_us);
        let max = Duration::from_micros(min_us.saturating_mul(ratio));
        // Skip specs whose rounded edges collapse (constructor rejects).
        let Ok(b) = std::panic::catch_unwind(|| LogBuckets::new(min, max, n)) else {
            return Ok(());
        };
        for i in 1..=n {
            prop_assert_eq!(b.index(b.lower_edge(i)), i);
            prop_assert_eq!(b.index(b.upper_edge(i)), i + 1);
        }
    }

    /// `index` is monotone in the duration for the standard scheme.
    #[test]
    fn standard_index_is_monotone(raw in prop::collection::vec(0u64..u64::MAX, 1..200)) {
        let b = LogBuckets::standard();
        let mut samples = raw;
        samples.sort_unstable();
        let mut prev = 0usize;
        for us in samples {
            let i = b.index(Duration::from_micros(us));
            prop_assert!(i >= prev);
            prev = i;
        }
    }
}
