//! 128-bit identifiers in a circular namespace, à la Pastry.
//!
//! Identifiers are unsigned 128-bit integers interpreted as points on a
//! circle of circumference 2^128. Both endsystems and objects (queries,
//! aggregation-tree vertices) live in the same namespace. For routing the id
//! is viewed as a sequence of digits in base 2^b, most significant digit
//! first, where `b` is the Pastry configuration parameter (typically 4).

use std::fmt;

/// A digit of an [`Id`] in base 2^b. Always fits in a `u8` because b <= 8.
pub type Digit = u8;

/// Maximum number of digits an id can have (b = 1 => 128 one-bit digits).
pub const MAX_DIGITS: usize = 128;

/// A 128-bit identifier in the circular Pastry namespace.
///
/// `Ord` is the plain numeric order (used for sorting and range math); ring
/// proximity comparisons go through [`Id::ring_dist`] and friends.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Id(pub u128);

impl Id {
    /// The numerically smallest id.
    pub const ZERO: Id = Id(0);
    /// The numerically largest id.
    pub const MAX: Id = Id(u128::MAX);

    /// Builds an id from big-endian bytes (the first byte becomes the most
    /// significant 8 bits).
    #[must_use]
    pub fn from_be_bytes(bytes: [u8; 16]) -> Self {
        Id(u128::from_be_bytes(bytes))
    }

    /// Returns the id as big-endian bytes.
    #[must_use]
    pub fn to_be_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    /// Draws a uniformly random id.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        Id(rng.gen())
    }

    /// Number of digits when the namespace is viewed in base 2^b.
    ///
    /// # Panics
    /// Panics if `b` is 0, greater than 8, or does not divide 128.
    #[must_use]
    pub fn num_digits(b: u8) -> usize {
        assert!(
            (1..=8).contains(&b) && 128 % (b as usize) == 0,
            "invalid digit width b={b}"
        );
        128 / b as usize
    }

    /// The `i`-th digit (0 = most significant) in base 2^b.
    #[must_use]
    pub fn digit(self, i: usize, b: u8) -> Digit {
        let n = Self::num_digits(b);
        assert!(i < n, "digit index {i} out of range for b={b}");
        let shift = (n - 1 - i) as u32 * b as u32;
        ((self.0 >> shift) & ((1u128 << b) - 1)) as Digit
    }

    /// Returns a copy with the `i`-th digit (base 2^b) replaced by `d`.
    #[must_use]
    pub fn with_digit(self, i: usize, b: u8, d: Digit) -> Self {
        let n = Self::num_digits(b);
        assert!(i < n, "digit index {i} out of range for b={b}");
        assert!((d as u16) < (1u16 << b), "digit {d} out of range for b={b}");
        let shift = (n - 1 - i) as u32 * b as u32;
        let mask = ((1u128 << b) - 1) << shift;
        Id((self.0 & !mask) | ((d as u128) << shift))
    }

    /// Length of the common prefix of `self` and `other` in base-2^b digits.
    /// This is the paper's `PREFIXLENGTH(idA, idB)`.
    #[must_use]
    pub fn prefix_len(self, other: Id, b: u8) -> usize {
        let xor = self.0 ^ other.0;
        if xor == 0 {
            return Self::num_digits(b);
        }
        (xor.leading_zeros() as usize) / b as usize
    }

    /// The paper's `PREFIX(id, count)`: keeps the first `count` base-2^b
    /// digits of `self` and zeroes the rest. Represented as a full id whose
    /// low digits are zero; combine with [`Id::concat`].
    #[must_use]
    pub fn prefix(self, count: usize, b: u8) -> Id {
        let n = Self::num_digits(b);
        assert!(count <= n, "prefix count {count} out of range");
        if count == 0 {
            return Id::ZERO;
        }
        let keep_bits = count as u32 * b as u32;
        if keep_bits >= 128 {
            return self;
        }
        Id(self.0 & !((1u128 << (128 - keep_bits)) - 1))
    }

    /// The paper's `SUFFIX(id, count)`: the last `count` base-2^b digits of
    /// `self`, right-aligned in the returned id.
    #[must_use]
    pub fn suffix(self, count: usize, b: u8) -> Id {
        let n = Self::num_digits(b);
        assert!(count <= n, "suffix count {count} out of range");
        let keep_bits = count as u32 * b as u32;
        if keep_bits == 0 {
            return Id::ZERO;
        }
        if keep_bits >= 128 {
            return self;
        }
        Id(self.0 & ((1u128 << keep_bits) - 1))
    }

    /// The paper's `+` operator: concatenates the first `prefix_digits`
    /// digits of `self` with the last `128/b - prefix_digits` digits of
    /// `suffix_src` to form a new id.
    #[must_use]
    pub fn concat(self, prefix_digits: usize, suffix_src: Id, b: u8) -> Id {
        let n = Self::num_digits(b);
        assert!(prefix_digits <= n);
        let suffix_digits = n - prefix_digits;
        Id(self.prefix(prefix_digits, b).0 | suffix_src.suffix(suffix_digits, b).0)
    }

    /// Clockwise (increasing-id, wrapping) distance from `self` to `other`.
    #[must_use]
    pub fn cw_dist(self, other: Id) -> u128 {
        other.0.wrapping_sub(self.0)
    }

    /// Counter-clockwise (decreasing-id, wrapping) distance from `self` to
    /// `other`.
    #[must_use]
    pub fn ccw_dist(self, other: Id) -> u128 {
        self.0.wrapping_sub(other.0)
    }

    /// Ring distance: the shorter way around the circle between two ids.
    #[must_use]
    pub fn ring_dist(self, other: Id) -> u128 {
        let cw = self.cw_dist(other);
        let ccw = self.ccw_dist(other);
        cw.min(ccw)
    }

    /// True if `self` is strictly closer to `key` on the ring than `other`
    /// is. Ties (exactly opposite points) are broken in favour of the
    /// numerically smaller id so that "closest" is always unique.
    #[must_use]
    pub fn closer_to(self, key: Id, other: Id) -> bool {
        let da = self.ring_dist(key);
        let db = other.ring_dist(key);
        da < db || (da == db && self.0 < other.0)
    }

    /// Offsets the id clockwise by `delta`, wrapping around the namespace.
    #[must_use]
    pub fn wrapping_add(self, delta: u128) -> Id {
        Id(self.0.wrapping_add(delta))
    }

    /// Offsets the id counter-clockwise by `delta`, wrapping around.
    #[must_use]
    pub fn wrapping_sub(self, delta: u128) -> Id {
        Id(self.0.wrapping_sub(delta))
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({:032x})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Abbreviated form: first 8 hex digits, enough to tell nodes apart
        // in logs while staying readable.
        write!(f, "{:08x}", (self.0 >> 96) as u32)
    }
}

impl From<u128> for Id {
    fn from(v: u128) -> Self {
        Id(v)
    }
}

/// Returns the index (into `candidates`) of the id ring-closest to `key`,
/// or `None` if `candidates` is empty. Ties break toward the numerically
/// smaller id, consistent with [`Id::closer_to`].
pub fn closest_to<'a, I>(key: Id, candidates: I) -> Option<usize>
where
    I: IntoIterator<Item = &'a Id>,
{
    let mut best: Option<(usize, Id)> = None;
    for (i, &c) in candidates.into_iter().enumerate() {
        match best {
            None => best = Some((i, c)),
            Some((_, b)) if c.closer_to(key, b) => best = Some((i, c)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digit_roundtrip_b4() {
        let id = Id(0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978);
        assert_eq!(id.digit(0, 4), 0x0);
        assert_eq!(id.digit(1, 4), 0x1);
        assert_eq!(id.digit(15, 4), 0xf);
        assert_eq!(id.digit(31, 4), 0x8);
    }

    #[test]
    fn digit_b1_is_bits() {
        let id = Id(1u128 << 127);
        assert_eq!(id.digit(0, 1), 1);
        assert_eq!(id.digit(1, 1), 0);
        assert_eq!(id.digit(127, 1), 0);
        assert_eq!(Id(1).digit(127, 1), 1);
    }

    #[test]
    fn with_digit_sets_and_clears() {
        let id = Id::ZERO.with_digit(0, 4, 0xa);
        assert_eq!(id.digit(0, 4), 0xa);
        assert_eq!(id.0 >> 124, 0xa);
        let id2 = id.with_digit(0, 4, 0x3);
        assert_eq!(id2.digit(0, 4), 0x3);
    }

    #[test]
    fn prefix_len_cases() {
        let a = Id(0xaaaa_0000_0000_0000_0000_0000_0000_0000);
        let b = Id(0xaaab_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(a.prefix_len(b, 4), 3);
        assert_eq!(a.prefix_len(a, 4), 32);
        assert_eq!(Id::ZERO.prefix_len(Id::MAX, 4), 0);
    }

    #[test]
    fn prefix_suffix_concat() {
        let id = Id(0x1122_3344_5566_7788_99aa_bbcc_ddee_ff00);
        assert_eq!(id.prefix(4, 4).0, 0x1122_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(id.suffix(4, 4).0, 0xff00);
        assert_eq!(id.prefix(0, 4), Id::ZERO);
        assert_eq!(id.prefix(32, 4), id);
        assert_eq!(id.suffix(32, 4), id);
        let joined = id.concat(4, Id(0x42), 4);
        assert_eq!(joined.0, 0x1122_0000_0000_0000_0000_0000_0000_0042);
    }

    #[test]
    fn ring_distance_wraps() {
        let a = Id(u128::MAX);
        let b = Id(0);
        assert_eq!(a.ring_dist(b), 1);
        assert_eq!(b.ring_dist(a), 1);
        assert_eq!(a.cw_dist(b), 1);
        assert_eq!(b.ccw_dist(a), 1);
    }

    #[test]
    fn closer_to_tie_break() {
        // a and b are equidistant (opposite sides) from key.
        let key = Id(100);
        let a = Id(90);
        let b = Id(110);
        assert!(a.closer_to(key, b));
        assert!(!b.closer_to(key, a));
    }

    #[test]
    fn closest_to_picks_ring_minimum() {
        let ids = [Id(10), Id(250), Id(100)];
        // key 0: Id(250) is only 6 away counter-clockwise in a 256-wide ring?
        // No: ring is 2^128 wide so 250 is 250 away. Id(10) wins.
        assert_eq!(closest_to(Id(0), ids.iter()), Some(0));
        assert_eq!(closest_to(Id(240), ids.iter()), Some(1));
        assert_eq!(closest_to(Id(u128::MAX - 5), ids.iter()), Some(0));
        assert_eq!(closest_to(Id(0), [].iter()), None);
    }

    #[test]
    #[should_panic(expected = "invalid digit width")]
    fn bad_digit_width_panics() {
        let _ = Id::ZERO.digit(0, 3);
    }
}
