//! Simulated time.
//!
//! All layers of the stack share one clock: microseconds since the start of
//! the simulated epoch. A 4-week trace is ~2.4e12 µs, comfortably inside
//! `u64`. [`Time`] is a point, [`Duration`] a difference; both are simple
//! newtypes so that raw integers cannot be mixed up with each other or with
//! byte counts.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Duration(pub u64);

impl Duration {
    pub const ZERO: Duration = Duration(0);
    pub const MICROSECOND: Duration = Duration(1);
    pub const MILLISECOND: Duration = Duration(1_000);
    pub const SECOND: Duration = Duration(1_000_000);
    pub const MINUTE: Duration = Duration(60 * 1_000_000);
    pub const HOUR: Duration = Duration(3_600 * 1_000_000);
    pub const DAY: Duration = Duration(86_400 * 1_000_000);
    pub const WEEK: Duration = Duration(7 * 86_400 * 1_000_000);

    #[must_use]
    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    #[must_use]
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    #[must_use]
    pub fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return Duration::ZERO;
        }
        Duration((s * 1e6).round() as u64)
    }

    #[must_use]
    pub fn from_mins(m: u64) -> Self {
        Duration(m * 60 * 1_000_000)
    }

    #[must_use]
    pub fn from_hours(h: u64) -> Self {
        Duration(h * 3_600 * 1_000_000)
    }

    #[must_use]
    pub fn from_days(d: u64) -> Self {
        Duration(d * 86_400 * 1_000_000)
    }

    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    #[must_use]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3.6e9
    }

    #[must_use]
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    #[must_use]
    pub fn min(self, rhs: Duration) -> Duration {
        Duration(self.0.min(rhs.0))
    }

    #[must_use]
    pub fn max(self, rhs: Duration) -> Duration {
        Duration(self.0.max(rhs.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us < 1_000 {
            write!(f, "{us}us")
        } else if us < 1_000_000 {
            write!(f, "{:.1}ms", us as f64 / 1e3)
        } else if us < 60_000_000 {
            write!(f, "{:.1}s", us as f64 / 1e6)
        } else if us < 3_600_000_000 {
            write!(f, "{:.1}min", us as f64 / 6e7)
        } else if us < 86_400_000_000 {
            write!(f, "{:.1}h", us as f64 / 3.6e9)
        } else {
            write!(f, "{:.1}d", us as f64 / 8.64e10)
        }
    }
}

/// A point in simulated time: microseconds since the simulation epoch.
///
/// The epoch is interpreted as **midnight on a Monday** so that hour-of-day
/// and day-of-week arithmetic (diurnal availability models, weekend effects)
/// is well defined.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Time(pub u64);

impl Time {
    pub const ZERO: Time = Time(0);

    #[must_use]
    pub fn from_micros(us: u64) -> Self {
        Time(us)
    }

    #[must_use]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant. Panics (in debug) if `earlier`
    /// is actually later.
    #[must_use]
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(
            self >= earlier,
            "time went backwards: {self:?} < {earlier:?}"
        );
        Duration(self.0 - earlier.0)
    }

    /// Duration since an earlier instant, clamping to zero instead of
    /// panicking.
    #[must_use]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Hour of day in `[0, 24)`, assuming the epoch is midnight.
    #[must_use]
    pub fn hour_of_day(self) -> u32 {
        ((self.0 / Duration::HOUR.0) % 24) as u32
    }

    /// Day of week in `[0, 7)` with 0 = Monday (epoch convention).
    #[must_use]
    pub fn day_of_week(self) -> u32 {
        ((self.0 / Duration::DAY.0) % 7) as u32
    }

    /// Whole hours elapsed since the epoch (used as bandwidth bucket index).
    #[must_use]
    pub fn hours_since_epoch(self) -> u64 {
        self.0 / Duration::HOUR.0
    }

    /// Microseconds into the current day.
    #[must_use]
    pub fn micros_into_day(self) -> u64 {
        self.0 % Duration::DAY.0
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const DAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];
        let day = self.0 / Duration::DAY.0;
        let rest = self.0 % Duration::DAY.0;
        let h = rest / Duration::HOUR.0;
        let m = (rest % Duration::HOUR.0) / Duration::MINUTE.0;
        let s = (rest % Duration::MINUTE.0) / Duration::SECOND.0;
        write!(
            f,
            "d{day}({}) {h:02}:{m:02}:{s:02}",
            DAYS[(day % 7) as usize]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::SECOND);
        assert_eq!(Duration::from_mins(60), Duration::HOUR);
        assert_eq!(Duration::from_hours(24), Duration::DAY);
        assert_eq!(Duration::from_days(7), Duration::WEEK);
        assert_eq!(Duration::from_millis(1500).as_micros(), 1_500_000);
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
        assert_eq!(Duration::from_secs_f64(-3.0), Duration::ZERO);
    }

    #[test]
    fn hour_and_day_arithmetic() {
        let t = Time::ZERO + Duration::from_days(2) + Duration::from_hours(13);
        assert_eq!(t.hour_of_day(), 13);
        assert_eq!(t.day_of_week(), 2); // Wednesday
        assert_eq!(t.hours_since_epoch(), 61);
        let sunday = Time::ZERO + Duration::from_days(6);
        assert_eq!(sunday.day_of_week(), 6);
        let next_monday = Time::ZERO + Duration::from_days(7);
        assert_eq!(next_monday.day_of_week(), 0);
    }

    #[test]
    fn since_and_saturating() {
        let a = Time(100);
        let b = Time(250);
        assert_eq!(b.since(a), Duration(150));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration(500).to_string(), "500us");
        assert_eq!(Duration::from_secs(90).to_string(), "1.5min");
        assert_eq!(Duration::from_hours(36).to_string(), "1.5d");
        let t = Time::ZERO + Duration::from_days(1) + Duration::from_hours(8);
        assert_eq!(t.to_string(), "d1(Tue) 08:00:00");
    }

    #[test]
    fn four_weeks_fit() {
        let end = Time::ZERO + Duration::WEEK * 4;
        assert_eq!(end.hours_since_epoch(), 672);
    }
}
