//! Half-open, possibly wrapping ranges of the circular id namespace.
//!
//! Query dissemination (paper §3.3) repeatedly subdivides the namespace into
//! equal subranges; a range may wrap past the top of the namespace, and the
//! full namespace itself must be representable. We therefore store a start
//! point and an explicit *width* rather than two endpoints: `width == 0`
//! denotes the full namespace (a circumference of 2^128 does not fit in
//! `u128`), and an empty range is represented by `IdRange::EMPTY`.

use crate::id::Id;

/// A half-open arc `[start, start + width)` of the id circle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IdRange {
    start: Id,
    /// Arc width; `0` means the whole circle (width 2^128).
    width: u128,
    /// Distinguishes the empty range from the full circle (both would
    /// otherwise have `width == 0`).
    empty: bool,
}

impl IdRange {
    /// The whole namespace.
    pub const FULL: IdRange = IdRange {
        start: Id(0),
        width: 0,
        empty: false,
    };

    /// The empty range.
    pub const EMPTY: IdRange = IdRange {
        start: Id(0),
        width: 0,
        empty: true,
    };

    /// Range starting at `start`, covering `width` ids clockwise.
    /// `width == 0` yields the empty range.
    #[must_use]
    pub fn new(start: Id, width: u128) -> Self {
        if width == 0 {
            IdRange::EMPTY
        } else {
            IdRange {
                start,
                width,
                empty: false,
            }
        }
    }

    /// Half-open range `[lo, hi)` going clockwise from `lo`. If `lo == hi`
    /// the result is the empty range (use [`IdRange::FULL`] for the circle).
    #[must_use]
    pub fn between(lo: Id, hi: Id) -> Self {
        IdRange::new(lo, lo.cw_dist(hi))
    }

    /// The first id in the range (meaningless for the empty range).
    #[must_use]
    pub fn start(&self) -> Id {
        self.start
    }

    /// Arc width; `None` for the full circle (2^128 overflows `u128`).
    #[must_use]
    pub fn width(&self) -> Option<u128> {
        if self.empty {
            Some(0)
        } else if self.is_full() {
            None
        } else {
            Some(self.width)
        }
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    #[must_use]
    pub fn is_full(&self) -> bool {
        !self.empty && self.width == 0
    }

    /// The last id inside the range.
    #[must_use]
    pub fn last(&self) -> Id {
        debug_assert!(!self.empty);
        if self.is_full() {
            self.start.wrapping_sub(1)
        } else {
            self.start.wrapping_add(self.width - 1)
        }
    }

    /// Does the range contain `id`?
    #[must_use]
    pub fn contains(&self, id: Id) -> bool {
        if self.empty {
            return false;
        }
        if self.is_full() {
            return true;
        }
        self.start.cw_dist(id) < self.width
    }

    /// The midpoint of the arc (rounding down). Used as the routing target
    /// when handing a subrange to some live endsystem inside it.
    #[must_use]
    pub fn midpoint(&self) -> Id {
        debug_assert!(!self.empty);
        if self.is_full() {
            self.start.wrapping_add(1u128 << 127)
        } else {
            self.start.wrapping_add(self.width / 2)
        }
    }

    /// Splits the range into `parts` near-equal consecutive subranges
    /// (clockwise order). The first `width % parts` subranges get one extra
    /// id so that the union is exactly `self` and subranges are disjoint.
    /// Empty subranges are omitted, so fewer than `parts` may be returned
    /// for narrow ranges.
    #[must_use]
    pub fn split(&self, parts: u32) -> Vec<IdRange> {
        assert!(parts >= 1, "cannot split into zero parts");
        if self.empty {
            return Vec::new();
        }
        if parts == 1 {
            return vec![*self];
        }
        let parts_u = parts as u128;
        let (base, rem) = if self.is_full() {
            // width = 2^128 = parts * base + rem, computed without overflow:
            // 2^128 / p  ==  (2^127 / p) * 2 + carry stuff; do it via u128
            // as: base = ((u128::MAX / p) ... ). Simpler: 2^128 = (MAX + 1).
            let base = u128::MAX / parts_u;
            let rem = u128::MAX % parts_u + 1;
            // If rem == parts, fold one extra into base.
            if rem == parts_u {
                (base + 1, 0)
            } else {
                (base, rem)
            }
        } else {
            (self.width / parts_u, self.width % parts_u)
        };
        let mut out = Vec::with_capacity(parts as usize);
        let mut cursor = self.start;
        for i in 0..parts_u {
            let w = base + u128::from(i < rem);
            if w == 0 {
                continue;
            }
            out.push(IdRange::new(cursor, w));
            cursor = cursor.wrapping_add(w);
        }
        out
    }
}

impl std::fmt::Display for IdRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.empty {
            write!(f, "[empty)")
        } else if self.is_full() {
            write!(f, "[full)")
        } else {
            write!(f, "[{}..+{:x})", self.start, self.width)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_contains_everything() {
        assert!(IdRange::FULL.contains(Id(0)));
        assert!(IdRange::FULL.contains(Id(u128::MAX)));
        assert!(IdRange::FULL.is_full());
        assert!(!IdRange::FULL.is_empty());
    }

    #[test]
    fn empty_contains_nothing() {
        assert!(!IdRange::EMPTY.contains(Id(0)));
        assert!(IdRange::EMPTY.is_empty());
        assert_eq!(IdRange::between(Id(5), Id(5)), IdRange::EMPTY);
    }

    #[test]
    fn wrapping_range_contains() {
        let r = IdRange::between(Id(u128::MAX - 10), Id(10));
        assert!(r.contains(Id(u128::MAX)));
        assert!(r.contains(Id(0)));
        assert!(r.contains(Id(9)));
        assert!(!r.contains(Id(10)));
        assert!(!r.contains(Id(u128::MAX - 11)));
        assert_eq!(r.width(), Some(21));
    }

    #[test]
    fn split_partitions_exactly() {
        let r = IdRange::new(Id(100), 10);
        let parts = r.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], IdRange::new(Id(100), 4));
        assert_eq!(parts[1], IdRange::new(Id(104), 3));
        assert_eq!(parts[2], IdRange::new(Id(107), 3));
        // Union property on a sample of points.
        for v in 95..115u128 {
            let inside = r.contains(Id(v));
            let count = parts.iter().filter(|p| p.contains(Id(v))).count();
            assert_eq!(count, usize::from(inside), "id {v}");
        }
    }

    #[test]
    fn split_full_into_16() {
        let parts = IdRange::FULL.split(16);
        assert_eq!(parts.len(), 16);
        let each = 1u128 << 124;
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.width(), Some(each));
            assert_eq!(p.start(), Id((i as u128) << 124));
        }
    }

    #[test]
    fn split_narrow_range_drops_empty_parts() {
        let r = IdRange::new(Id(0), 3);
        let parts = r.split(16);
        assert_eq!(parts.len(), 3);
        assert!(parts.iter().all(|p| p.width() == Some(1)));
    }

    #[test]
    fn midpoint_and_last() {
        let r = IdRange::new(Id(10), 10);
        assert_eq!(r.midpoint(), Id(15));
        assert_eq!(r.last(), Id(19));
        let w = IdRange::between(Id(u128::MAX - 1), Id(2));
        assert_eq!(w.midpoint(), Id(0));
        assert_eq!(w.last(), Id(1));
        assert_eq!(IdRange::FULL.midpoint(), Id(1u128 << 127));
        assert_eq!(IdRange::FULL.last(), Id(u128::MAX));
    }
}
