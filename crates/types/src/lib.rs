#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! Common foundation types for the Seaweed delay-aware querying system.
//!
//! This crate holds everything shared by more than one layer of the stack:
//!
//! * [`Id`] — 128-bit identifiers in Pastry's circular namespace, used both
//!   for endsystem ids (`endsystemId`) and object keys (`queryId`,
//!   `vertexId`). Provides base-2^b digit manipulation, ring distance and
//!   prefix arithmetic.
//! * [`IdRange`] — half-open, possibly wrapping ranges of the namespace,
//!   used by the query-dissemination divide-and-conquer protocol.
//! * [`Time`] / [`Duration`] — simulated time in microseconds. Keeping time
//!   here (rather than in the simulator crate) lets availability models and
//!   stores talk about timestamps without depending on the engine.
//! * [`sha1`] — a from-scratch SHA-1, used to derive `queryId`s from query
//!   text exactly as the paper describes. (The allowed dependency set has no
//!   hashing crate; see DESIGN.md.)

pub mod buckets;
pub mod id;
pub mod range;
pub mod sha1;
pub mod time;

pub use buckets::LogBuckets;
pub use id::{Digit, Id, MAX_DIGITS};
pub use range::IdRange;
pub use time::{Duration, Time};
