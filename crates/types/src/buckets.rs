//! Logarithmic time buckets.
//!
//! Completeness predictors keep "a cumulative distribution of row counts
//! against predicted time of availability, where time is on a log scale to
//! accommodate wide variations in availability ranging from seconds to
//! days" (§3.3). The availability model's down-duration distribution uses
//! the same shape. [`LogBuckets`] is the shared bucketing scheme: a fixed
//! number of geometrically spaced buckets between a minimum and maximum
//! duration, with an underflow bucket (index 0) and an implicit overflow
//! (last index).

use crate::time::Duration;

/// Most geometric buckets a [`LogBuckets`] may have (excluding the
/// under/overflow buckets). Keeps the precomputed edge table inline so the
/// type stays `Copy`.
pub const MAX_GEOMETRIC_BUCKETS: usize = 62;

/// Geometrically spaced duration buckets.
///
/// Bucket 0 holds durations `< min`; buckets `1..=n` hold geometric spans
/// of `[min, max)`; bucket `n + 1` holds durations `>= max`. Total bucket
/// count is therefore `n + 2`.
///
/// Bucket edges are rounded to whole microseconds **once**, at
/// construction, and both [`LogBuckets::index`] and the edge accessors
/// read the same precomputed table — so `index(lower_edge(i)) == i` and
/// `index(upper_edge(i)) == i + 1` hold exactly, with no float drift
/// between the `ln`-based forward map and the `exp`-based edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogBuckets {
    min_us: u64,
    max_us: u64,
    n: usize,
    /// `edges_us[i]` for `i in 1..=n` is the (rounded, integral) lower
    /// edge of geometric bucket `i`; `edges_us[n + 1] == max_us`. Entries
    /// outside that range are zero padding.
    edges_us: [u64; MAX_GEOMETRIC_BUCKETS + 2],
}

impl LogBuckets {
    /// # Panics
    /// Panics unless `0 < min < max`, `1 <= n <= 62`, and the rounded
    /// microsecond edges are strictly increasing (i.e. the range is wide
    /// enough for `n` distinguishable buckets).
    #[must_use]
    pub fn new(min: Duration, max: Duration, n: usize) -> Self {
        assert!(
            min.as_micros() > 0 && min < max && n >= 1,
            "invalid bucket spec"
        );
        assert!(
            n <= MAX_GEOMETRIC_BUCKETS,
            "at most {MAX_GEOMETRIC_BUCKETS} geometric buckets"
        );
        let min_us = min.as_micros();
        let max_us = max.as_micros();
        let step = ((max_us as f64) / (min_us as f64)).ln() / n as f64;
        let mut edges_us = [0u64; MAX_GEOMETRIC_BUCKETS + 2];
        for (i, e) in edges_us.iter_mut().enumerate().take(n + 1).skip(1) {
            *e = (min_us as f64 * (step * (i - 1) as f64).exp()).round() as u64;
        }
        edges_us[n + 1] = max_us;
        assert!(
            edges_us[1..=n + 1].windows(2).all(|w| w[0] < w[1]),
            "bucket edges collapse after rounding; use fewer buckets or a wider range"
        );
        debug_assert_eq!(edges_us[1], min_us);
        LogBuckets {
            min_us,
            max_us,
            n,
            edges_us,
        }
    }

    /// The standard predictor bucketing: 1 second to 14 days over 48
    /// geometric buckets (50 total with under/overflow) — seconds through
    /// days resolution as the paper requires.
    #[must_use]
    pub fn standard() -> Self {
        LogBuckets::new(Duration::SECOND, Duration::from_days(14), 48)
    }

    /// Total number of buckets including underflow and overflow.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n + 2
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Index of the bucket containing `d`.
    #[must_use]
    pub fn index(&self, d: Duration) -> usize {
        let us = d.as_micros();
        if us < self.min_us {
            return 0;
        }
        if us >= self.max_us {
            return self.n + 1;
        }
        // Number of geometric lower edges at or below `us`. Since
        // min_us <= us < max_us this lands in 1..=n, and it agrees with
        // lower_edge/upper_edge by construction (same integer table).
        self.edges_us[1..=self.n].partition_point(|&e| e <= us)
    }

    /// Lower edge of bucket `i` (bucket 0's lower edge is zero).
    #[must_use]
    pub fn lower_edge(&self, i: usize) -> Duration {
        assert!(i < self.len());
        if i == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.edges_us[i])
    }

    /// Upper edge of bucket `i`; the overflow bucket reports `u64::MAX`.
    #[must_use]
    pub fn upper_edge(&self, i: usize) -> Duration {
        assert!(i < self.len());
        if i == self.n + 1 {
            return Duration::from_micros(u64::MAX);
        }
        if i == 0 {
            return Duration::from_micros(self.min_us);
        }
        Duration::from_micros(self.edges_us[i + 1])
    }

    /// A representative duration for bucket `i`: the geometric midpoint
    /// (arithmetic midpoint for the underflow, lower edge ×2 for the
    /// overflow).
    #[must_use]
    pub fn midpoint(&self, i: usize) -> Duration {
        assert!(i < self.len());
        if i == 0 {
            return Duration::from_micros(self.min_us / 2);
        }
        if i == self.n + 1 {
            return Duration::from_micros(self.max_us.saturating_mul(2));
        }
        let lo = self.lower_edge(i).as_micros() as f64;
        let hi = self.upper_edge(i).as_micros() as f64;
        Duration::from_micros((lo * hi).sqrt().round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_monotone_and_cover() {
        let b = LogBuckets::standard();
        assert_eq!(b.len(), 50);
        assert_eq!(b.index(Duration::ZERO), 0);
        assert_eq!(b.index(Duration::from_millis(999)), 0);
        assert_eq!(b.index(Duration::SECOND), 1);
        assert_eq!(b.index(Duration::from_days(14)), 49);
        assert_eq!(b.index(Duration::from_days(100)), 49);
        // Index is monotone in the duration.
        let mut samples: Vec<u64> = (0..2000u64).map(|k| k * k * 700_000 + k).collect();
        samples.sort_unstable();
        let mut prev = 0;
        for us in samples {
            let i = b.index(Duration::from_micros(us));
            assert!(i >= prev, "non-monotone at {us}");
            prev = i;
        }
    }

    #[test]
    fn edges_bracket_their_bucket() {
        let b = LogBuckets::new(Duration::SECOND, Duration::from_hours(1), 10);
        for i in 0..b.len() {
            let mid = b.midpoint(i);
            assert_eq!(b.index(mid), i, "midpoint of bucket {i} maps back");
            if i > 0 && i < b.len() - 1 {
                assert!(b.lower_edge(i) <= mid && mid < b.upper_edge(i));
            }
        }
    }

    #[test]
    fn lower_edge_of_bucket_maps_to_bucket() {
        let b = LogBuckets::new(Duration::SECOND, Duration::from_hours(1), 10);
        assert_eq!(b.index(Duration::SECOND), 1);
        assert_eq!(b.lower_edge(0), Duration::ZERO);
        assert_eq!(b.upper_edge(0), Duration::SECOND);
        // The edges are the single source of truth: round-trips are exact
        // for every bucket, not just bucket 1.
        for i in 1..=10 {
            assert_eq!(b.index(b.lower_edge(i)), i, "lower edge of {i}");
            let up = b.upper_edge(i);
            assert_eq!(b.index(up), i + 1, "upper edge of {i}");
            // One microsecond below the upper edge still belongs to i.
            assert_eq!(b.index(up - Duration::from_micros(1)), i, "inside {i}");
        }
    }

    #[test]
    fn two_buckets() {
        let b = LogBuckets::new(Duration::SECOND, Duration::from_secs(4), 2);
        assert_eq!(b.index(Duration::from_millis(1500)), 1);
        assert_eq!(b.index(Duration::from_secs(3)), 2);
        assert_eq!(b.upper_edge(1), Duration::from_secs(2));
    }
}
