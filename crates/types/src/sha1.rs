//! A from-scratch SHA-1 (FIPS 180-1), used to derive `queryId`s.
//!
//! The paper assigns each query a key equal to the SHA-1 hash of the query
//! (§3.3). The permitted dependency set contains no hashing crate, so this
//! is a small, well-tested implementation. SHA-1 is cryptographically broken
//! for collision resistance but that is irrelevant here: it is only used to
//! spread query keys uniformly over the namespace, exactly as in the paper.

use crate::id::Id;

/// Streaming SHA-1 state.
#[derive(Clone, Debug)]
pub struct Sha1 {
    h: [u32; 5],
    /// Bytes buffered toward the next 64-byte block.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    #[must_use]
    pub fn new() -> Self {
        Sha1 {
            h: [
                0x6745_2301,
                0xefcd_ab89,
                0x98ba_dcfe,
                0x1032_5476,
                0xc3d2_e1f0,
            ],
            buf: [0u8; 64],
            buf_len: 0,
            len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    #[must_use]
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian bit length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manually absorb the length without disturbing `self.len`.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; 20];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a82_7999),
                20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 digest of `data`.
#[must_use]
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut s = Sha1::new();
    s.update(data);
    s.finalize()
}

/// Derives a namespace [`Id`] from arbitrary bytes: the first 128 bits of
/// the SHA-1 digest. This is how `queryId = SHA1(query text)` is computed.
#[must_use]
pub fn id_of(data: &[u8]) -> Id {
    let d = sha1(data);
    let mut bytes = [0u8; 16];
    bytes.copy_from_slice(&d[..16]);
    Id::from_be_bytes(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    // FIPS 180-1 / RFC 3174 test vectors.
    #[test]
    fn vector_abc() {
        assert_eq!(
            hex(&sha1(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn vector_empty() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn vector_448_bits() {
        assert_eq!(
            hex(&sha1(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn vector_million_a() {
        let a = vec![b'a'; 1_000_000];
        assert_eq!(hex(&sha1(&a)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = sha1(&data);
        for chunk in [1usize, 3, 63, 64, 65, 100] {
            let mut s = Sha1::new();
            for piece in data.chunks(chunk) {
                s.update(piece);
            }
            assert_eq!(s.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    #[test]
    fn id_of_is_prefix_of_digest() {
        let digest = sha1(b"SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80");
        let id = id_of(b"SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80");
        assert_eq!(&id.to_be_bytes()[..], &digest[..16]);
    }
}
