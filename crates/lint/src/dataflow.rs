//! Abstract-state dataflow over the conservative CFG.
//!
//! Two forward may-analyses run on [`crate::cfg`] graphs with a
//! worklist fixpoint (in-states only grow under set union, transfer
//! functions are monotone, the abstract domains are finite — so both
//! terminate on any input the parser produces):
//!
//! * **Timer-handle liveness (D008)** — a `let` binding initialized
//!   from a registered timer-acquire call starts *live*; any later
//!   statement mentioning the binding consumes it on that path
//!   (cancel, store, return, move — the analysis does not distinguish,
//!   see the conservatism notes in DESIGN.md §5). A path on which a
//!   live binding reaches the function exit is a leak: the handle is
//!   dropped while the timer stays armed.
//! * **Stale-index poisoning (D009)** — a `let` binding initialized
//!   from a registered index-acquire call starts *valid*; crossing a
//!   statement that calls a registered invalidation point poisons
//!   every tracked index (passing the index *into* the invalidation
//!   call itself is fine — the use precedes the poison). Any use of a
//!   poisoned binding is a finding: the dense index may now name a
//!   recycled slot.
//!
//! Both analyses resolve calls by *name* (`set_timer(`, `.release_slot(`,
//! `mem::take(`), matching the rest of the auditor's single-file,
//! type-free design.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::cfg::{Cfg, NodeKind, EXIT};
use crate::lexer::{Token, TokenKind};

/// One leaked timer handle.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimerLeak {
    /// The binding name.
    pub var: String,
    /// Line of the acquiring `let`.
    pub line: u32,
    /// The acquire function that armed the timer.
    pub via: String,
}

/// One use of a possibly-stale index.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaleIndexUse {
    pub var: String,
    /// Line of the acquiring `let`.
    pub def_line: u32,
    /// Line of the use after invalidation.
    pub use_line: u32,
    /// The invalidation call crossed in between.
    pub invalidated_by: String,
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct && t.text.as_bytes()[0] == c as u8
}

/// Finds a call to any of `fns` inside `[lo, hi)`: an entry is either a
/// bare name (`set_timer`, matched as `name(`) or a `::` path
/// (`mem::take`, matched segment-wise, so `std::mem::take(` also hits).
/// Returns the matched entry.
fn call_in_range<'a>(tokens: &[Token], lo: usize, hi: usize, fns: &'a [String]) -> Option<&'a str> {
    let hi = hi.min(tokens.len());
    let lo = lo.min(hi);
    for f in fns {
        if f.contains("::") {
            let segs: Vec<&str> = f.split("::").collect();
            let mut i = lo;
            'site: while i < hi {
                if is_ident(&tokens[i], segs[0]) {
                    let mut at = i + 1;
                    for seg in &segs[1..] {
                        if at + 2 < tokens.len()
                            && is_punct(&tokens[at], ':')
                            && is_punct(&tokens[at + 1], ':')
                            && is_ident(&tokens[at + 2], seg)
                        {
                            at += 3;
                        } else {
                            i += 1;
                            continue 'site;
                        }
                    }
                    if tokens.get(at).is_some_and(|t| is_punct(t, '(')) {
                        return Some(f);
                    }
                }
                i += 1;
            }
        } else {
            for i in lo..hi {
                if is_ident(&tokens[i], f) && tokens.get(i + 1).is_some_and(|t| is_punct(t, '(')) {
                    return Some(f);
                }
            }
        }
    }
    None
}

/// Does `var` appear as an identifier anywhere in `[lo, hi)`? Field
/// accesses (`x.var`) count too — by the workspace's conventions a
/// local never shadows a field name it is compared against, and the
/// cost of the over-match is a missed finding, not a false one.
fn uses_var(tokens: &[Token], lo: usize, hi: usize, var: &str) -> bool {
    let hi = hi.min(tokens.len());
    tokens[lo.min(hi)..hi].iter().any(|t| is_ident(t, var))
}

fn flat(node: &NodeKind) -> Option<(usize, usize, u32, Option<&str>)> {
    match node {
        NodeKind::Flat { lo, hi, line, def } => Some((*lo, *hi, *line, def.as_deref())),
        _ => None,
    }
}

/// Generic worklist driver: runs `transfer` to fixpoint, merging
/// out-states into successor in-states by union. `State` elements are
/// (var, fact) pairs; the in-state map only ever grows.
fn fixpoint<F, Fact>(cfg: &Cfg, transfer: F) -> Vec<BTreeMap<String, BTreeSet<Fact>>>
where
    Fact: Ord + Clone,
    F: Fn(u32, &BTreeMap<String, BTreeSet<Fact>>) -> BTreeMap<String, BTreeSet<Fact>>,
{
    let n = cfg.nodes.len();
    let mut in_states: Vec<BTreeMap<String, BTreeSet<Fact>>> = vec![BTreeMap::new(); n];
    let mut work: VecDeque<u32> = VecDeque::new();
    let mut queued = vec![false; n];
    let mut visited = vec![false; n];
    work.push_back(cfg.entry);
    queued[cfg.entry as usize] = true;
    // Safety valve: the union lattice guarantees termination, but cap
    // the iteration count anyway so a latent bug can never hang a lint.
    let mut budget = 64 * n.max(1) * cfg.nodes.len().max(1);
    while let Some(node) = work.pop_front() {
        queued[node as usize] = false;
        if budget == 0 {
            break;
        }
        budget -= 1;
        visited[node as usize] = true;
        let out = transfer(node, &in_states[node as usize]);
        for &succ in &cfg.nodes[node as usize].succs {
            let dst = &mut in_states[succ as usize];
            let mut changed = false;
            for (var, facts) in &out {
                let entry = dst.entry(var.clone()).or_default();
                for f in facts {
                    changed |= entry.insert(f.clone());
                }
            }
            // Every reachable node runs at least once (empty out-states
            // never "change" an in-state, but successors still need
            // their own transfer + successor merge).
            if (changed || !visited[succ as usize]) && !queued[succ as usize] {
                queued[succ as usize] = true;
                work.push_back(succ);
            }
        }
    }
    in_states
}

/// D008: timer-handle bindings that can reach the function exit
/// without being consumed on some path.
#[must_use]
pub fn timer_leaks(
    cfg: &Cfg,
    tokens: &[Token],
    acquire: &[String],
    _detached: &[String],
) -> Vec<TimerLeak> {
    // Fact = (def line, acquire fn). Detached acquire fns simply are
    // not in `acquire`, so their bindings never enter the domain.
    let in_states = fixpoint(cfg, |node, in_state| {
        let mut out = in_state.clone();
        if let Some((lo, hi, line, def)) = flat(&cfg.nodes[node as usize].kind) {
            // Kill: any mention of a tracked binding consumes it on
            // this path (cancelled, stored, moved, returned).
            out.retain(|var, _| !uses_var(tokens, lo, hi, var));
            // Gen: a tracked `let` from an acquire call.
            if let Some(v) = def {
                if let Some(via) = call_in_range(tokens, lo, hi, acquire) {
                    let mut set = BTreeSet::new();
                    set.insert((line, via.to_string()));
                    out.insert(v.to_string(), set);
                    // A `?` in the acquiring statement exits *before*
                    // the binding exists; drop the just-created fact on
                    // the EXIT edge by not special-casing — acquire
                    // fns in this workspace are infallible, so the
                    // overlap cannot occur. (Documented limitation.)
                }
            }
        }
        out
    });
    let mut leaks: BTreeSet<TimerLeak> = BTreeSet::new();
    for (var, facts) in &in_states[EXIT as usize] {
        for (line, via) in facts {
            leaks.insert(TimerLeak {
                var: var.clone(),
                line: *line,
                via: via.clone(),
            });
        }
    }
    leaks.into_iter().collect()
}

/// D009: uses of index bindings after a registered invalidation point.
#[must_use]
pub fn stale_index_uses(
    cfg: &Cfg,
    tokens: &[Token],
    acquire: &[String],
    invalidate: &[String],
) -> Vec<StaleIndexUse> {
    use std::cell::RefCell;
    // Fact = (def line, Some(invalidating fn) once poisoned).
    let findings: RefCell<BTreeSet<StaleIndexUse>> = RefCell::new(BTreeSet::new());
    let in_states = fixpoint::<_, (u32, Option<String>)>(cfg, |node, in_state| {
        let mut out = in_state.clone();
        if let Some((lo, hi, line, def)) = flat(&cfg.nodes[node as usize].kind) {
            // 1. Uses of already-poisoned bindings are findings; the
            //    binding is then dropped so each (def, use) pair
            //    reports once.
            let mut drop_vars: Vec<String> = Vec::new();
            for (var, facts) in out.iter() {
                // A statement re-defining `var` mentions the ident as
                // its own binding pattern — that is not a use of the
                // old value. (An RHS read in a self-redefining `let`
                // slips through: a false negative, the sanctioned
                // failure direction.)
                if def == Some(var.as_str()) {
                    continue;
                }
                if uses_var(tokens, lo, hi, var) {
                    let mut hit = false;
                    for (def_line, poison) in facts.iter() {
                        if let Some(inv) = poison {
                            findings.borrow_mut().insert(StaleIndexUse {
                                var: var.clone(),
                                def_line: *def_line,
                                use_line: line,
                                invalidated_by: inv.clone(),
                            });
                            hit = true;
                        }
                    }
                    if hit {
                        drop_vars.push(var.clone());
                    }
                }
            }
            for v in drop_vars {
                out.remove(&v);
            }
            // 2. Re-binding replaces any tracked state below.
            if let Some(v) = def {
                out.remove(v);
            }
            // 3. An invalidation call poisons every tracked binding —
            //    including ones passed into the call itself (their use
            //    *in this statement* was checked in step 1 against the
            //    pre-state, so passing an index to `release_slot` is
            //    clean; holding it afterwards is not).
            if let Some(inv) = call_in_range(tokens, lo, hi, invalidate) {
                for facts in out.values_mut() {
                    let poisoned: BTreeSet<(u32, Option<String>)> = facts
                        .iter()
                        .map(|(l, p)| (*l, p.clone().or_else(|| Some(inv.to_string()))))
                        .collect();
                    *facts = poisoned;
                }
            }
            // 4. Gen: a tracked `let` from an index-acquire call (a
            //    fresh lookup is exactly the sanctioned re-validation).
            if let Some(v) = def {
                if call_in_range(tokens, lo, hi, acquire).is_some() {
                    let mut set = BTreeSet::new();
                    set.insert((line, None));
                    out.insert(v.to_string(), set);
                }
            }
        }
        out
    });
    let _ = in_states;
    findings.into_inner().into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build;
    use crate::lexer::lex;
    use crate::parse::parse_functions;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn leaks_of(src: &str) -> Vec<TimerLeak> {
        let tokens = lex(src).tokens;
        let funcs = parse_functions(&tokens);
        let mut out = Vec::new();
        for f in &funcs {
            let cfg = build(f, &tokens);
            out.extend(timer_leaks(
                &cfg,
                &tokens,
                &strs(&["set_timer", "set_app_timer"]),
                &strs(&["set_detached_timer"]),
            ));
        }
        out
    }

    fn stale_of(src: &str) -> Vec<StaleIndexUse> {
        let tokens = lex(src).tokens;
        let funcs = parse_functions(&tokens);
        let mut out = Vec::new();
        for f in &funcs {
            let cfg = build(f, &tokens);
            out.extend(stale_index_uses(
                &cfg,
                &tokens,
                &strs(&["slot_of", "live_slot"]),
                &strs(&["release_slot", "clear_node", "mem::take"]),
            ));
        }
        out
    }

    #[test]
    fn straight_line_leak_and_consume() {
        let l = leaks_of("fn f(&mut self) { let h = eng.set_timer(n, d, t); }");
        assert_eq!(l.len(), 1, "{l:?}");
        assert_eq!(l[0].var, "h");
        assert_eq!(l[0].via, "set_timer");
        assert!(leaks_of(
            "fn f(&mut self) { let h = eng.set_timer(n, d, t); eng.cancel_timer(h); }"
        )
        .is_empty());
        assert!(
            leaks_of("fn f(&mut self) { let h = eng.set_timer(n, d, t); self.slot[i] = Some(h); }")
                .is_empty(),
            "storing consumes"
        );
    }

    #[test]
    fn branch_leak_is_path_sensitive() {
        // Consumed only in the then-branch: the else path leaks.
        let src = "fn f(&mut self, c: bool) {
            let h = eng.set_timer(n, d, t);
            if c { self.keep = Some(h); }
        }";
        let l = leaks_of(src);
        assert_eq!(l.len(), 1, "{l:?}");
        // Consumed on both paths: clean.
        let src = "fn f(&mut self, c: bool) {
            let h = eng.set_timer(n, d, t);
            if c { self.keep = Some(h); } else { eng.cancel_timer(h); }
        }";
        assert!(leaks_of(src).is_empty());
    }

    #[test]
    fn match_arm_drop_is_flagged() {
        let src = "fn f(&mut self, k: Key) {
            let timeout = self.set_app_timer(eng, n, d, a);
            match self.tasks.get_mut(&k) {
                Some(task) => task.timeout_timer = Some(timeout),
                None => self.stats.drops += 1,
            }
        }";
        let l = leaks_of(src);
        assert_eq!(l.len(), 1, "{l:?}");
        assert_eq!(l[0].var, "timeout");
    }

    #[test]
    fn early_return_before_consume_leaks() {
        let src = "fn f(&mut self, c: bool) {
            let h = eng.set_timer(n, d, t);
            if c { return; }
            self.keep = Some(h);
        }";
        let l = leaks_of(src);
        assert_eq!(l.len(), 1, "{l:?}");
        // `return h` itself consumes (ownership moves to the caller).
        assert!(
            leaks_of("fn f(&mut self) -> H { let h = eng.set_timer(n, d, t); return h; }")
                .is_empty()
        );
    }

    #[test]
    fn detached_and_untracked_are_ignored() {
        assert!(
            leaks_of("fn f(&mut self) { let h = eng.set_detached_timer(n, d, t); }").is_empty()
        );
        assert!(
            leaks_of("fn f(&mut self) { eng.set_timer(n, d, t); }").is_empty(),
            "statement-position discard is declared fire-and-forget"
        );
        assert!(leaks_of("fn f(&mut self) { let _ = eng.set_timer(n, d, t); }").is_empty());
    }

    #[test]
    fn loop_paths() {
        // Armed each iteration, consumed each iteration: clean.
        let src = "fn f(&mut self) {
            for n in nodes {
                let h = eng.set_timer(n, d, t);
                self.timers.push(h);
            }
        }";
        assert!(leaks_of(src).is_empty());
        // Armed each iteration, consumed only under a condition: leaks.
        let src = "fn f(&mut self) {
            for n in nodes {
                let h = eng.set_timer(n, d, t);
                if keep(n) { self.timers.push(h); }
            }
        }";
        assert_eq!(leaks_of(src).len(), 1);
    }

    #[test]
    fn stale_index_basic() {
        let src = "fn f(&mut self, h: Handle) {
            let s = self.slot_of(h);
            self.release_slot(s);
            self.scan[s] = 0;
        }";
        let u = stale_of(src);
        assert_eq!(u.len(), 1, "{u:?}");
        assert_eq!(u[0].var, "s");
        assert_eq!(u[0].invalidated_by, "release_slot");
        // Passing into the invalidation itself is clean.
        let src = "fn f(&mut self, h: Handle) {
            let s = self.slot_of(h);
            self.scan[s] = 0;
            self.release_slot(s);
        }";
        assert!(stale_of(src).is_empty());
    }

    #[test]
    fn stale_index_relookup_and_mem_take() {
        let src = "fn f(&mut self, h: Handle) {
            let s = self.slot_of(h);
            let drained = std::mem::take(&mut self.held_by[n]);
            touch(s);
        }";
        let u = stale_of(src);
        assert_eq!(u.len(), 1, "{u:?}");
        assert_eq!(u[0].invalidated_by, "mem::take");
        // Re-lookup after the invalidation is the sanctioned pattern.
        let src = "fn f(&mut self, h: Handle) {
            let s = self.slot_of(h);
            self.clear_node(n);
            let s = self.slot_of(h);
            touch(s);
        }";
        assert!(stale_of(src).is_empty(), "{:?}", stale_of(src));
    }

    #[test]
    fn stale_only_on_poisoned_path() {
        let src = "fn f(&mut self, h: Handle, c: bool) {
            let s = self.slot_of(h);
            if c { self.release_slot(other); }
            touch(s);
        }";
        let u = stale_of(src);
        assert_eq!(u.len(), 1, "poisoned on one path is still a finding");
        let src = "fn f(&mut self, h: Handle, c: bool) {
            let s = self.slot_of(h);
            touch(s);
        }";
        assert!(stale_of(src).is_empty());
    }
}
