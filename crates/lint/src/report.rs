//! Findings and output formatting (human and machine-readable).

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `"D001"`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// `path:line: [rule] message` — the human format, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders findings as a JSON document (hand-rolled: the workspace has
/// no serde, and the schema is three scalar fields).
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

/// Renders findings as a SARIF 2.1.0 log (the schema GitHub code
/// scanning ingests). Hand-rolled like [`render_json`]: one run, one
/// tool driver, rule metadata from the catalogue, one result per
/// finding with a physical location.
#[must_use]
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n          \"name\": \"seaweed-lint\",\n          \"informationUri\": \"https://example.invalid/seaweed-lint\",\n          \"rules\": [",
    );
    for (i, (id, desc)) in crate::rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            escape(id),
            escape(desc)
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\n          \"ruleId\": \"{}\",\n          \"level\": \"error\",\n          \"message\": {{\"text\": \"{}\"}},\n          \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \"artifactLocation\": {{\"uri\": \"{}\", \"uriBaseId\": \"%SRCROOT%\"}},\n                \"region\": {{\"startLine\": {}}}\n              }}\n            }}\n          ]\n        }}",
            escape(f.rule),
            escape(&f.message),
            escape(&f.path),
            f.line
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sarif_has_schema_rules_and_result_locations() {
        let f = vec![Finding {
            rule: "D008",
            path: "crates/core/src/app/x.rs".into(),
            line: 42,
            message: "timer handle `h` leaks".into(),
        }];
        let s = render_sarif(&f);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-2.1.0.json"));
        assert!(s.contains("\"name\": \"seaweed-lint\""));
        // Every catalogue rule is declared.
        for (id, _) in crate::rules::RULES {
            assert!(s.contains(&format!("\"id\": \"{id}\"")), "{id} missing");
        }
        assert!(s.contains("\"ruleId\": \"D008\""));
        assert!(s.contains("\"startLine\": 42"));
        assert!(s.contains("\"uri\": \"crates/core/src/app/x.rs\""));
        // Clean runs still produce a valid log with an empty results
        // array (code scanning uses that to close fixed alerts).
        let empty = render_sarif(&[]);
        assert!(empty.contains("\"results\": []"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let f = vec![Finding {
            rule: "D001",
            path: "a/b.rs".into(),
            line: 3,
            message: "uses \"HashMap\"".into(),
        }];
        let j = render_json(&f);
        assert!(j.contains("\\\"HashMap\\\""));
        assert!(j.contains("\"count\": 1"));
        assert!(render_json(&[]).contains("\"count\": 0"));
    }
}
