//! Findings and output formatting (human and machine-readable).

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `"D001"`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// `path:line: [rule] message` — the human format, one per line.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders findings as a JSON document (hand-rolled: the workspace has
/// no serde, and the schema is three scalar fields).
#[must_use]
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let f = vec![Finding {
            rule: "D001",
            path: "a/b.rs".into(),
            line: 3,
            message: "uses \"HashMap\"".into(),
        }];
        let j = render_json(&f);
        assert!(j.contains("\\\"HashMap\\\""));
        assert!(j.contains("\"count\": 1"));
        assert!(render_json(&[]).contains("\"count\": 0"));
    }
}
