//! Workspace discovery: members from the root `Cargo.toml`, crate names
//! from each member's manifest, and the `.rs` files to audit.

use std::fs;
use std::path::{Path, PathBuf};

/// One workspace crate to audit.
#[derive(Clone, Debug)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml` (e.g. `seaweed-core`).
    pub name: String,
    /// Crate directory, workspace-relative (`crates/core`, or `.` for
    /// the root package).
    pub dir: PathBuf,
    /// Audited `.rs` files, workspace-relative, sorted.
    pub files: Vec<PathBuf>,
    /// The crate root (`src/lib.rs` or `src/main.rs`), if present.
    pub root_file: Option<PathBuf>,
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)
                .map_err(|e| format!("{}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(format!("no workspace Cargo.toml above {}", start.display()));
        }
    }
}

/// Enumerates workspace member crates (plus the root package, if the
/// root manifest also declares `[package]`), sorted by name.
pub fn discover(root: &Path) -> Result<Vec<CrateInfo>, String> {
    let manifest_path = root.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let mut dirs: Vec<PathBuf> = Vec::new();
    for member in parse_members(&manifest)? {
        if let Some(prefix) = member.strip_suffix("/*") {
            let base = root.join(prefix);
            let entries = fs::read_dir(&base).map_err(|e| format!("{}: {e}", base.display()))?;
            for entry in entries.flatten() {
                let p = entry.path();
                if p.join("Cargo.toml").is_file() {
                    dirs.push(PathBuf::from(prefix).join(entry.file_name()));
                }
            }
        } else {
            dirs.push(PathBuf::from(member));
        }
    }
    if manifest.contains("[package]") {
        dirs.push(PathBuf::from("."));
    }
    let mut crates = Vec::new();
    for dir in dirs {
        let m = root.join(&dir).join("Cargo.toml");
        let text = fs::read_to_string(&m).map_err(|e| format!("{}: {e}", m.display()))?;
        let name = parse_package_name(&text)
            .ok_or_else(|| format!("{}: no `name = \"...\"` under [package]", m.display()))?;
        let mut files = Vec::new();
        for sub in ["src", "tests", "benches", "examples"] {
            collect_rs(root, &dir.join(sub), &mut files);
        }
        files.sort();
        let root_file = ["src/lib.rs", "src/main.rs"]
            .iter()
            .map(|f| normalize(&dir.join(f)))
            .find(|f| root.join(f).is_file());
        crates.push(CrateInfo {
            name,
            dir,
            files,
            root_file,
        });
    }
    crates.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(crates)
}

/// Recursively collects `.rs` files under `root/dir` (workspace-relative
/// paths), skipping `target` and `fixtures` directories — fixture
/// snippets are *supposed* to violate rules.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let abs = root.join(dir);
    let Ok(entries) = fs::read_dir(&abs) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let rel = normalize(&dir.join(&*name));
        let p = entry.path();
        if p.is_dir() {
            if name != "target" && name != "fixtures" {
                collect_rs(root, &rel, out);
            }
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
}

/// Strips a leading `./` so root-package paths render as `src/lib.rs`.
fn normalize(p: &Path) -> PathBuf {
    p.components()
        .filter(|c| !matches!(c, std::path::Component::CurDir))
        .collect()
}

/// Extracts the `members = [...]` array (possibly spanning lines) from
/// the root manifest.
fn parse_members(manifest: &str) -> Result<Vec<String>, String> {
    let start = manifest
        .find("members")
        .ok_or("root Cargo.toml has no `members`")?;
    let open = manifest[start..]
        .find('[')
        .ok_or("`members` is not an array")?
        + start;
    let close = manifest[open..]
        .find(']')
        .ok_or("`members` array is unterminated")?
        + open;
    Ok(manifest[open + 1..close]
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect())
}

/// First `name = "..."` after `[package]`.
fn parse_package_name(manifest: &str) -> Option<String> {
    let pkg = manifest.find("[package]")?;
    for line in manifest[pkg..].lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v.trim().trim_matches('"').to_string());
            }
        }
        if line.starts_with('[') && !line.starts_with("[package]") {
            break;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_globs_and_package_names() {
        let members =
            parse_members("[workspace]\nmembers = [\"crates/*\", \"tools/x\"]\nresolver = \"2\"\n")
                .unwrap();
        assert_eq!(members, vec!["crates/*", "tools/x"]);
        assert_eq!(
            parse_package_name("[package]\nname = \"seaweed-core\"\nversion = \"0.1.0\"\n"),
            Some("seaweed-core".into())
        );
        assert_eq!(parse_package_name("[workspace]\nmembers = []\n"), None);
    }
}
