//! `lint.toml`: auditor configuration plus the checked-in baseline.
//!
//! The workspace has no `toml` crate, so this parses the narrow subset
//! the file actually uses: `[section]` / `[[array-of-tables]]` headers,
//! `key = "string"` and single-line `key = ["a", "b"]` arrays. That
//! subset is a deliberate contract — keep the file simple.
//!
//! ```toml
//! [lint]
//! skip = ["rand"]                      # vendored shims, never audited
//! deterministic = ["seaweed-core"]     # crates under D001/D005
//!
//! [[allow]]                            # baseline entry
//! rule = "D004"
//! path = "crates/bench/src/parallel.rs"
//! contains = "std::thread"             # optional message filter
//! reason = "the sanctioned worker pool"
//! ```

use crate::report::Finding;

/// One baseline entry: suppresses findings of `rule` in `path` whose
/// message contains `contains` (empty = any).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub contains: String,
    pub reason: String,
    /// Line in lint.toml, for stale-entry findings.
    pub line: u32,
}

#[derive(Clone, Debug)]
pub struct Config {
    /// Crate names never audited (vendored shims).
    pub skip: Vec<String>,
    /// Crate names under the determinism-only rules (D001, D005).
    pub deterministic: Vec<String>,
    pub baseline: Vec<BaselineEntry>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            skip: ["rand", "proptest", "criterion"].map(String::from).to_vec(),
            deterministic: [
                "seaweed",
                "seaweed-types",
                "seaweed-sim",
                "seaweed-overlay",
                "seaweed-store",
                "seaweed-availability",
                "seaweed-analytic",
                "seaweed-workload",
                "seaweed-core",
            ]
            .map(String::from)
            .to_vec(),
            baseline: Vec::new(),
        }
    }
}

impl Config {
    /// Parses `lint.toml` text. Returns `Err` with a line-tagged message
    /// on anything outside the supported subset.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(h) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                section = format!("[[{h}]]");
                if h == "allow" {
                    cfg.baseline.push(BaselineEntry {
                        line: lineno,
                        ..BaselineEntry::default()
                    });
                } else {
                    return Err(format!("lint.toml:{lineno}: unknown table `[[{h}]]`"));
                }
                continue;
            }
            if let Some(h) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = h.to_string();
                if h != "lint" {
                    return Err(format!("lint.toml:{lineno}: unknown section `[{h}]`"));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            match section.as_str() {
                "lint" => {
                    let list = parse_string_array(value).ok_or_else(|| {
                        format!("lint.toml:{lineno}: `{key}` wants a [\"...\"] array")
                    })?;
                    match key {
                        "skip" => cfg.skip = list,
                        "deterministic" => cfg.deterministic = list,
                        _ => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown key `{key}` in [lint]"
                            ))
                        }
                    }
                }
                "[[allow]]" => {
                    let s = parse_string(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: `{key}` wants a \"string\""))?;
                    let entry = cfg.baseline.last_mut().expect("inside [[allow]]");
                    match key {
                        "rule" => entry.rule = s,
                        "path" => entry.path = s,
                        "contains" => entry.contains = s,
                        "reason" => entry.reason = s,
                        _ => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown key `{key}` in [[allow]]"
                            ))
                        }
                    }
                }
                _ => return Err(format!("lint.toml:{lineno}: `{key}` outside any section")),
            }
        }
        for e in &cfg.baseline {
            if e.rule.is_empty() || e.path.is_empty() || e.reason.is_empty() {
                return Err(format!(
                    "lint.toml:{}: [[allow]] entries need `rule`, `path` and `reason`",
                    e.line
                ));
            }
        }
        Ok(cfg)
    }

    /// Applies the baseline: suppressed findings are dropped, and every
    /// entry that suppressed nothing becomes a D000 finding (the
    /// baseline must shrink as code is fixed, never rot).
    #[must_use]
    pub fn apply_baseline(&self, findings: Vec<Finding>) -> Vec<Finding> {
        let mut used = vec![false; self.baseline.len()];
        let mut kept: Vec<Finding> = Vec::new();
        for f in findings {
            let suppressed = self.baseline.iter().enumerate().any(|(i, e)| {
                let hit = e.rule == f.rule
                    && e.path == f.path
                    && (e.contains.is_empty() || f.message.contains(&e.contains));
                if hit {
                    used[i] = true;
                }
                hit
            });
            if !suppressed {
                kept.push(f);
            }
        }
        for (i, e) in self.baseline.iter().enumerate() {
            if !used[i] {
                kept.push(Finding {
                    rule: "D000",
                    path: "lint.toml".into(),
                    line: e.line,
                    message: format!(
                        "stale baseline entry ({} in {}): it no longer suppresses anything — delete it",
                        e.rule, e.path
                    ),
                });
            }
        }
        kept
    }
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string does not start a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str) -> Option<String> {
    let v = v.trim();
    v.strip_prefix('"')?.strip_suffix('"').map(String::from)
}

fn parse_string_array(v: &str) -> Option<Vec<String>> {
    let inner = v.trim().strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_config_and_baseline() {
        let cfg = Config::parse(
            r#"
# comment
[lint]
skip = ["rand", "proptest"]
deterministic = ["seaweed-core"]

[[allow]]
rule = "D004"
path = "crates/bench/src/parallel.rs"
contains = "std::thread"
reason = "sanctioned pool"
"#,
        )
        .unwrap();
        assert_eq!(cfg.skip, vec!["rand", "proptest"]);
        assert_eq!(cfg.deterministic, vec!["seaweed-core"]);
        assert_eq!(cfg.baseline.len(), 1);
        assert_eq!(cfg.baseline[0].contains, "std::thread");
    }

    #[test]
    fn rejects_incomplete_entries_and_unknown_keys() {
        assert!(Config::parse("[[allow]]\nrule = \"D001\"\n").is_err());
        assert!(Config::parse("[lint]\nbogus = [\"x\"]\n").is_err());
        assert!(Config::parse("[wat]\n").is_err());
    }

    #[test]
    fn baseline_suppresses_and_reports_stale() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"D002\"\npath = \"a.rs\"\nreason = \"r\"\n\n[[allow]]\nrule = \"D003\"\npath = \"b.rs\"\nreason = \"r\"\n",
        )
        .unwrap();
        let findings = vec![Finding {
            rule: "D002",
            path: "a.rs".into(),
            line: 1,
            message: "wall clock".into(),
        }];
        let out = cfg.apply_baseline(findings);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "D000");
        assert!(out[0].message.contains("stale baseline entry"));
    }
}
