//! `lint.toml`: auditor configuration plus the checked-in baseline.
//!
//! The workspace has no `toml` crate, so this parses the narrow subset
//! the file actually uses: `[section]` / `[[array-of-tables]]` headers,
//! `key = "string"` and `key = ["a", "b"]` arrays (which may span
//! lines). That subset is a deliberate contract — keep the file simple.
//!
//! ```toml
//! [lint]
//! skip = ["rand"]                      # vendored shims, never audited
//! deterministic = ["seaweed-core"]     # crates under D001/D005
//!
//! [discipline]                         # D008/D009 registries
//! timer_acquire = ["set_timer"]
//! teardown = ["finish_task"]
//!
//! [metrics]                            # D011 name registry
//! names = [
//!   "app.meta_pushes",
//! ]
//!
//! [[stream]]                           # D010 RNG stream registry
//! name = "faults"
//! pattern = "FAULTS_STREAM"
//! path = "crates/sim/src/faults.rs"
//!
//! [[allow]]                            # baseline entry
//! rule = "D004"
//! path = "crates/bench/src/parallel.rs"
//! contains = "std::thread"             # optional message filter
//! reason = "the sanctioned worker pool"
//! ```

use crate::report::Finding;

/// One registered RNG stream: `pattern` is the token (a named stream
/// constant like `FAULTS_STREAM`, or the hex literal itself) that must
/// appear in the seed expression, and `path` is the one file allowed
/// to seed with it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StreamDecl {
    pub name: String,
    pub pattern: String,
    pub path: String,
    /// Line in lint.toml, for error messages.
    pub line: u32,
}

/// Registries consumed by the flow-sensitive and registry rules
/// (D008–D011). The defaults bake in the workspace's own discipline
/// functions so single-file linting (fixtures, unit tests) works
/// without a `lint.toml`; the stream and metric registries default to
/// empty, which turns D010/D011 off until the file declares them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleConfig {
    /// Fns whose return value is a live (cancellable) timer handle.
    pub timer_acquire: Vec<String>,
    /// Fns producing deliberately unowned timers (exempt from D008).
    pub timer_detached: Vec<String>,
    /// Teardown fns trusted to release stored handles/slots; also
    /// D009 invalidation points (a teardown recycles state).
    pub teardown: Vec<String>,
    /// Fns whose return value is a dense arena/slot index.
    pub index_acquire: Vec<String>,
    /// Calls that invalidate outstanding dense indices.
    pub index_invalidate: Vec<String>,
    /// D010 stream registry (empty = rule off).
    pub streams: Vec<StreamDecl>,
    /// Metric/trace-emitting fns whose string-literal args D011 checks.
    pub metric_emitters: Vec<String>,
    /// Registered metric/trace names (empty = rule off).
    pub metric_names: Vec<String>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        RuleConfig {
            timer_acquire: v(&[
                "set_timer",
                "set_quantum_timer",
                "set_app_timer",
                "set_quantum_app_timer",
            ]),
            timer_detached: v(&["set_detached_timer", "set_detached_app_timer"]),
            teardown: v(&["finish_task", "expire_query", "clear_node", "clear_query"]),
            index_acquire: v(&["slot_of", "live_slot"]),
            index_invalidate: v(&["release_slot", "mem::take"]),
            streams: Vec::new(),
            metric_emitters: v(&[
                "set_counter",
                "set_gauge",
                "observe",
                "observe_with",
                "record_app_event",
            ]),
            metric_names: Vec::new(),
        }
    }
}

/// One baseline entry: suppresses findings of `rule` in `path` whose
/// message contains `contains` (empty = any).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub contains: String,
    pub reason: String,
    /// Line in lint.toml, for stale-entry findings.
    pub line: u32,
}

#[derive(Clone, Debug)]
pub struct Config {
    /// Crate names never audited (vendored shims).
    pub skip: Vec<String>,
    /// Crate names under the determinism-only rules (D001, D005).
    pub deterministic: Vec<String>,
    pub baseline: Vec<BaselineEntry>,
    /// Registries for the flow-sensitive and registry rules.
    pub rules: RuleConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            skip: ["rand", "proptest", "criterion"].map(String::from).to_vec(),
            deterministic: [
                "seaweed",
                "seaweed-types",
                "seaweed-sim",
                "seaweed-overlay",
                "seaweed-store",
                "seaweed-availability",
                "seaweed-analytic",
                "seaweed-workload",
                "seaweed-core",
            ]
            .map(String::from)
            .to_vec(),
            baseline: Vec::new(),
            rules: RuleConfig::default(),
        }
    }
}

impl Config {
    /// Parses `lint.toml` text. Returns `Err` with a line-tagged message
    /// on anything outside the supported subset.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section = String::new();
        for (lineno, line) in logical_lines(text)? {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(h) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                section = format!("[[{h}]]");
                match h {
                    "allow" => cfg.baseline.push(BaselineEntry {
                        line: lineno,
                        ..BaselineEntry::default()
                    }),
                    "stream" => cfg.rules.streams.push(StreamDecl {
                        line: lineno,
                        ..StreamDecl::default()
                    }),
                    _ => return Err(format!("lint.toml:{lineno}: unknown table `[[{h}]]`")),
                }
                continue;
            }
            if let Some(h) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = h.to_string();
                if h != "lint" && h != "discipline" && h != "metrics" {
                    return Err(format!("lint.toml:{lineno}: unknown section `[{h}]`"));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("lint.toml:{lineno}: expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            let want_array = |v: &str| {
                parse_string_array(v)
                    .ok_or_else(|| format!("lint.toml:{lineno}: `{key}` wants a [\"...\"] array"))
            };
            match section.as_str() {
                "lint" => {
                    let list = want_array(value)?;
                    match key {
                        "skip" => cfg.skip = list,
                        "deterministic" => cfg.deterministic = list,
                        _ => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown key `{key}` in [lint]"
                            ))
                        }
                    }
                }
                "discipline" => {
                    let list = want_array(value)?;
                    let r = &mut cfg.rules;
                    match key {
                        "timer_acquire" => r.timer_acquire = list,
                        "timer_detached" => r.timer_detached = list,
                        "teardown" => r.teardown = list,
                        "index_acquire" => r.index_acquire = list,
                        "index_invalidate" => r.index_invalidate = list,
                        _ => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown key `{key}` in [discipline]"
                            ))
                        }
                    }
                }
                "metrics" => {
                    let list = want_array(value)?;
                    match key {
                        "emitters" => cfg.rules.metric_emitters = list,
                        "names" => cfg.rules.metric_names = list,
                        _ => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown key `{key}` in [metrics]"
                            ))
                        }
                    }
                }
                "[[stream]]" => {
                    let s = parse_string(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: `{key}` wants a \"string\""))?;
                    let entry = cfg.rules.streams.last_mut().expect("inside [[stream]]");
                    match key {
                        "name" => entry.name = s,
                        "pattern" => entry.pattern = s,
                        "path" => entry.path = s,
                        _ => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown key `{key}` in [[stream]]"
                            ))
                        }
                    }
                }
                "[[allow]]" => {
                    let s = parse_string(value)
                        .ok_or_else(|| format!("lint.toml:{lineno}: `{key}` wants a \"string\""))?;
                    let entry = cfg.baseline.last_mut().expect("inside [[allow]]");
                    match key {
                        "rule" => entry.rule = s,
                        "path" => entry.path = s,
                        "contains" => entry.contains = s,
                        "reason" => entry.reason = s,
                        _ => {
                            return Err(format!(
                                "lint.toml:{lineno}: unknown key `{key}` in [[allow]]"
                            ))
                        }
                    }
                }
                _ => return Err(format!("lint.toml:{lineno}: `{key}` outside any section")),
            }
        }
        for e in &cfg.baseline {
            if e.rule.is_empty() || e.path.is_empty() || e.reason.is_empty() {
                return Err(format!(
                    "lint.toml:{}: [[allow]] entries need `rule`, `path` and `reason`",
                    e.line
                ));
            }
        }
        for s in &cfg.rules.streams {
            if s.name.is_empty() || s.pattern.is_empty() || s.path.is_empty() {
                return Err(format!(
                    "lint.toml:{}: [[stream]] entries need `name`, `pattern` and `path`",
                    s.line
                ));
            }
        }
        Ok(cfg)
    }

    /// Applies the baseline: suppressed findings are dropped, and every
    /// entry that suppressed nothing becomes a D000 finding (the
    /// baseline must shrink as code is fixed, never rot).
    #[must_use]
    pub fn apply_baseline(&self, findings: Vec<Finding>) -> Vec<Finding> {
        let mut used = vec![false; self.baseline.len()];
        let mut kept: Vec<Finding> = Vec::new();
        for f in findings {
            let suppressed = self.baseline.iter().enumerate().any(|(i, e)| {
                let hit = e.rule == f.rule
                    && e.path == f.path
                    && (e.contains.is_empty() || f.message.contains(&e.contains));
                if hit {
                    used[i] = true;
                }
                hit
            });
            if !suppressed {
                kept.push(f);
            }
        }
        for (i, e) in self.baseline.iter().enumerate() {
            if !used[i] {
                kept.push(Finding {
                    rule: "D000",
                    path: "lint.toml".into(),
                    line: e.line,
                    message: format!(
                        "stale baseline entry ({} in {}): it no longer suppresses anything — delete it",
                        e.rule, e.path
                    ),
                });
            }
        }
        kept
    }
}

/// Folds the raw text into logical lines: an array opened with `[` but
/// not closed on the same line swallows subsequent lines until its
/// `]`. Each logical line keeps the line number it started on.
fn logical_lines(text: &str) -> Result<Vec<(u32, String)>, String> {
    let mut out: Vec<(u32, String)> = Vec::new();
    let mut pending: Option<(u32, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let stripped = strip_comment(raw).trim().to_string();
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(&stripped);
                if array_still_open(&acc) {
                    pending = Some((start, acc));
                } else {
                    out.push((start, acc));
                }
            }
            None => {
                if stripped.contains('=') && array_still_open(&stripped) {
                    pending = Some((lineno, stripped));
                } else {
                    out.push((lineno, stripped));
                }
            }
        }
    }
    if let Some((start, _)) = pending {
        return Err(format!("lint.toml:{start}: unterminated `[...]` array"));
    }
    Ok(out)
}

/// Does the accumulated logical line have an unclosed `[` outside
/// quotes? (Section headers never reach this: they contain no `=`.)
fn array_still_open(s: &str) -> bool {
    let mut in_str = false;
    let mut depth = 0i32;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth > 0
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string does not start a comment.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(v: &str) -> Option<String> {
    let v = v.trim();
    v.strip_prefix('"')?.strip_suffix('"').map(String::from)
}

fn parse_string_array(v: &str) -> Option<Vec<String>> {
    let inner = v.trim().strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_config_and_baseline() {
        let cfg = Config::parse(
            r#"
# comment
[lint]
skip = ["rand", "proptest"]
deterministic = ["seaweed-core"]

[[allow]]
rule = "D004"
path = "crates/bench/src/parallel.rs"
contains = "std::thread"
reason = "sanctioned pool"
"#,
        )
        .unwrap();
        assert_eq!(cfg.skip, vec!["rand", "proptest"]);
        assert_eq!(cfg.deterministic, vec!["seaweed-core"]);
        assert_eq!(cfg.baseline.len(), 1);
        assert_eq!(cfg.baseline[0].contains, "std::thread");
    }

    #[test]
    fn rejects_incomplete_entries_and_unknown_keys() {
        assert!(Config::parse("[[allow]]\nrule = \"D001\"\n").is_err());
        assert!(Config::parse("[lint]\nbogus = [\"x\"]\n").is_err());
        assert!(Config::parse("[wat]\n").is_err());
    }

    #[test]
    fn baseline_suppresses_and_reports_stale() {
        let cfg = Config::parse(
            "[[allow]]\nrule = \"D002\"\npath = \"a.rs\"\nreason = \"r\"\n\n[[allow]]\nrule = \"D003\"\npath = \"b.rs\"\nreason = \"r\"\n",
        )
        .unwrap();
        let findings = vec![Finding {
            rule: "D002",
            path: "a.rs".into(),
            line: 1,
            message: "wall clock".into(),
        }];
        let out = cfg.apply_baseline(findings);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "D000");
        assert!(out[0].message.contains("stale baseline entry"));
    }
}
