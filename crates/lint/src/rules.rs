//! The determinism & safety rule catalogue.
//!
//! Every rule works on the token stream of one file (see
//! [`crate::lexer`]); none require type information. Where a rule needs
//! to know "is this receiver a hash collection", it uses **name-level
//! resolution within the file**: `use`/`type` aliases of
//! `HashMap`/`HashSet` are chased, then every identifier declared with
//! a hash-typed annotation (struct fields, `let` bindings, fn params)
//! or initialized from one is treated as hash-typed. This is a
//! heuristic — it cannot see across files and it resolves by *name*,
//! so a local that shares its name with a hash-typed field elsewhere
//! in the same file is also treated as hash-typed. Rename the local or
//! add an inline `// lint:allow(...)` marker when that bites.
//!
//! | id   | scope                | violation |
//! |------|----------------------|-----------|
//! | D001 | deterministic crates | iteration over `HashMap`/`HashSet` (order is nondeterministic across processes) |
//! | D002 | all audited crates   | wall-clock reads (`Instant::now`, `SystemTime`) |
//! | D003 | all audited crates   | ambient randomness (`thread_rng`, `rand::random`, `from_entropy`, `OsRng`) |
//! | D004 | all audited crates   | `std::thread` / `std::sync::mpsc` concurrency |
//! | D005 | deterministic crates | float-ordered sorts via `partial_cmp` (NaN breaks total order) |
//! | D006 | all audited crates   | crate root missing `#![forbid(unsafe_code)]` |
//! | D007 | deterministic crates | `.clone()` of an engine message payload (per-destination payload clones defeat the shared-payload fan-out; use `Payload`/`multicast`) |

use crate::config::RuleConfig;
use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use crate::{cfg, dataflow, parse};

/// Per-file context handed to every rule.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path (used in findings).
    pub path: &'a str,
    /// Whether the file belongs to a deterministic crate (the simulator
    /// and everything it drives must replay byte-identically).
    pub deterministic: bool,
    /// Whether this file is the crate root (`src/lib.rs`/`src/main.rs`).
    pub is_crate_root: bool,
    pub tokens: &'a [Token],
    /// Registries for D008–D011.
    pub rules: &'a RuleConfig,
}

/// Rule ids in catalogue order, for `--list-rules`.
pub const RULES: &[(&str, &str)] = &[
    ("D000", "allow-marker hygiene: malformed, reason-less or unused markers and stale baseline entries"),
    ("D001", "no iteration over HashMap/HashSet in deterministic crates (iteration order is nondeterministic)"),
    ("D002", "no wall-clock reads (Instant::now, SystemTime) — simulated time only"),
    ("D003", "no ambient randomness (thread_rng, rand::random, from_entropy, OsRng) — seed every RNG from a named stream constant"),
    ("D004", "no std::thread / std::sync::mpsc outside the sanctioned bench worker pool"),
    ("D005", "no float-ordered sorts via partial_cmp in deterministic crates — use total_cmp"),
    ("D006", "every crate root carries #![forbid(unsafe_code)]"),
    ("D007", "no .clone() of engine message payloads in deterministic crates — share via Payload/multicast; only the engine's fault-duplication path may copy"),
    ("D008", "timer-handle discipline: a binding from a timer-acquire fn must be cancelled or stored on every path — a handle dropped while armed is a leak (use a detached timer for fire-and-forget)"),
    ("D009", "stale arena-index escape: a dense index binding may not be used after a registered invalidation point (slot recycle, clear_node, mem::take) without re-lookup"),
    ("D010", "RNG stream discipline: every seed_from_u64 in a deterministic crate must mix a registered stream constant, used only in its declared subsystem file"),
    ("D011", "metrics/trace name registry: counter/gauge/trace-event name literals passed to emitter fns must be declared in lint.toml [metrics]"),
];

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Comparator-taking sort/ordering functions D005 inspects.
const CMP_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
];

/// Runs every applicable rule over one file.
#[must_use]
pub fn check_file(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    if ctx.deterministic {
        d001_hash_iteration(ctx, &mut out);
        d005_partial_cmp_sorts(ctx, &mut out);
        d007_payload_clone(ctx, &mut out);
        // The flow-sensitive pair shares one parse + CFG build.
        let funcs = parse::parse_functions(ctx.tokens);
        let cfgs: Vec<cfg::Cfg> = funcs.iter().map(|f| cfg::build(f, ctx.tokens)).collect();
        d008_timer_discipline(ctx, &funcs, &cfgs, &mut out);
        d009_stale_index(ctx, &funcs, &cfgs, &mut out);
        d010_rng_streams(ctx, &mut out);
        d011_metric_names(ctx, &mut out);
    }
    d002_wall_clock(ctx, &mut out);
    d003_ambient_randomness(ctx, &mut out);
    d004_threads(ctx, &mut out);
    if ctx.is_crate_root {
        d006_forbid_unsafe(ctx, &mut out);
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn finding(ctx: &FileCtx, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.path.to_string(),
        line,
        message,
    }
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct && t.text.as_bytes()[0] == c as u8
}

/// Matches a path pattern at `i`. Segments are identifiers; `"::"`
/// consumes two `:` punct tokens. Returns the index one past the match.
fn match_path(tokens: &[Token], i: usize, segs: &[&str]) -> Option<usize> {
    let mut at = i;
    for &s in segs {
        if s == "::" {
            if at + 1 < tokens.len() && is_punct(&tokens[at], ':') && is_punct(&tokens[at + 1], ':')
            {
                at += 2;
            } else {
                return None;
            }
        } else if at < tokens.len() && is_ident(&tokens[at], s) {
            at += 1;
        } else {
            return None;
        }
    }
    Some(at)
}

// --------------------------------------------------------------- D001

/// Chases `use ... as X` and `type X = ...` aliases of
/// `HashMap`/`HashSet` to a fixpoint; returns every name that denotes a
/// hash collection type in this file.
fn hash_type_names(tokens: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = vec!["HashMap".into(), "HashSet".into()];
    loop {
        let before = names.len();
        for (i, t) in tokens.iter().enumerate() {
            // `HashMap as Map`
            if t.kind == TokenKind::Ident
                && names.contains(&t.text)
                && match_path(tokens, i + 1, &["as"]).is_some()
            {
                if let Some(alias) = tokens.get(i + 2) {
                    if alias.kind == TokenKind::Ident && !names.contains(&alias.text) {
                        names.push(alias.text.clone());
                    }
                }
            }
            // `type X<...> = <rhs>;` with a hash name in the rhs
            if is_ident(t, "type") {
                let Some(name) = tokens.get(i + 1) else {
                    continue;
                };
                if name.kind != TokenKind::Ident {
                    continue;
                }
                let mut j = i + 2;
                while j < tokens.len() && !is_punct(&tokens[j], '=') && !is_punct(&tokens[j], ';') {
                    j += 1;
                }
                if j >= tokens.len() || !is_punct(&tokens[j], '=') {
                    continue;
                }
                let mut k = j + 1;
                let mut rhs_hash = false;
                while k < tokens.len() && !is_punct(&tokens[k], ';') {
                    if tokens[k].kind == TokenKind::Ident && names.contains(&tokens[k].text) {
                        rhs_hash = true;
                    }
                    k += 1;
                }
                if rhs_hash && !names.contains(&name.text) {
                    names.push(name.text.clone());
                }
            }
        }
        if names.len() == before {
            return names;
        }
    }
}

/// Identifiers bound to hash-typed values in this file: `x: HashMap<..>`
/// annotations (fields, params, lets, struct-literal fields initialized
/// from hash types) and `let x = <expr involving a hash name>;`.
fn hash_bound_idents(tokens: &[Token], type_names: &[String]) -> Vec<String> {
    let mut bound: Vec<String> = Vec::new();
    let is_hash = |t: &Token, bound: &[String]| {
        t.kind == TokenKind::Ident && (type_names.contains(&t.text) || bound.contains(&t.text))
    };
    for _ in 0..3 {
        let before = bound.len();
        let mut i = 0;
        while i < tokens.len() {
            let t = &tokens[i];
            // `name : <type-or-value tokens>` up to a delimiter at angle
            // depth 0. Covers struct fields, fn params, annotated lets
            // and struct-literal initializers.
            if t.kind == TokenKind::Ident
                && i + 1 < tokens.len()
                && is_punct(&tokens[i + 1], ':')
                && !(i + 2 < tokens.len() && is_punct(&tokens[i + 2], ':'))
                && (i == 0 || !is_punct(&tokens[i - 1], ':'))
            {
                let mut depth = 0i32;
                let mut j = i + 2;
                let mut saw_hash = false;
                while j < tokens.len() {
                    let u = &tokens[j];
                    if is_punct(u, '<') || is_punct(u, '(') || is_punct(u, '[') {
                        depth += 1;
                    } else if is_punct(u, '>') || is_punct(u, ')') || is_punct(u, ']') {
                        if depth == 0 {
                            break;
                        }
                        depth -= 1;
                    } else if depth == 0
                        && (is_punct(u, ',')
                            || is_punct(u, ';')
                            || is_punct(u, '=')
                            || is_punct(u, '{')
                            || is_punct(u, '}'))
                    {
                        break;
                    }
                    if is_hash(u, &bound) {
                        saw_hash = true;
                    }
                    j += 1;
                    if j - i > 64 {
                        break; // annotation scan bound
                    }
                }
                if saw_hash && !bound.contains(&t.text) {
                    bound.push(t.text.clone());
                }
            }
            // `let [mut] name = <expr>;` where the expr mentions a hash
            // name (covers `let m = &mut self.timer_meta[i];`).
            if is_ident(t, "let") {
                let mut j = i + 1;
                if j < tokens.len() && is_ident(&tokens[j], "mut") {
                    j += 1;
                }
                let Some(name) = tokens.get(j) else {
                    i += 1;
                    continue;
                };
                if name.kind == TokenKind::Ident
                    && tokens.get(j + 1).is_some_and(|u| is_punct(u, '='))
                {
                    let mut k = j + 2;
                    let mut saw_hash = false;
                    while k < tokens.len() && !is_punct(&tokens[k], ';') && k - j < 48 {
                        if is_hash(&tokens[k], &bound) {
                            saw_hash = true;
                        }
                        k += 1;
                    }
                    if saw_hash && !bound.contains(&name.text) {
                        bound.push(name.text.clone());
                    }
                }
            }
            i += 1;
        }
        if bound.len() == before {
            break;
        }
    }
    bound
}

/// Walks backwards from the `.` of a method call to the *direct*
/// receiver identifier (`self.a[i].retain` → `a`, `m.retain` → `m`).
/// Bracketed index/call groups are skipped wholesale so their contents
/// never contribute a name; outer chain segments (`state` in
/// `state.holders.retain`) are deliberately ignored — only the place
/// being iterated matters.
fn direct_receiver(tokens: &[Token], dot: usize) -> Option<String> {
    let mut i = dot;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        if is_punct(t, ')') || is_punct(t, ']') {
            // skip to the matching opener
            let (open, close) = if is_punct(t, ')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 1i32;
            while i > 0 && depth > 0 {
                i -= 1;
                if is_punct(&tokens[i], close) {
                    depth += 1;
                } else if is_punct(&tokens[i], open) {
                    depth -= 1;
                }
            }
        } else if t.kind == TokenKind::Ident {
            return Some(t.text.clone());
        } else {
            return None;
        }
    }
    None
}

fn d001_hash_iteration(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    let type_names = hash_type_names(tokens);
    let bound = hash_bound_idents(tokens, &type_names);
    if bound.is_empty() {
        return;
    }
    let mut seen_lines: Vec<u32> = Vec::new();
    let mut push = |out: &mut Vec<Finding>, line: u32, what: &str, via: &str| {
        if seen_lines.contains(&line) {
            return;
        }
        seen_lines.push(line);
        out.push(finding(
            ctx,
            "D001",
            line,
            format!(
                "iteration over hash collection `{via}` ({what}); HashMap/HashSet order differs \
                 across processes — use BTreeMap/BTreeSet or a sorted vec"
            ),
        ));
    };
    for (i, t) in tokens.iter().enumerate() {
        // `.iter()` / `.retain(..)` / ... on a hash-bound receiver.
        if t.kind == TokenKind::Ident
            && ITER_METHODS.contains(&t.text.as_str())
            && i >= 1
            && is_punct(&tokens[i - 1], '.')
            && tokens.get(i + 1).is_some_and(|u| is_punct(u, '('))
        {
            if let Some(recv) = direct_receiver(tokens, i - 1) {
                if bound.contains(&recv) {
                    push(out, t.line, &format!(".{}()", t.text), &recv);
                }
            }
        }
        // `for <pat> in <expr> {` where the expr mentions a hash-bound
        // name directly (not through a method call, which the arm above
        // already reports).
        if is_ident(t, "for") {
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut found_in = None;
            while j < tokens.len() && j - i < 48 {
                let u = &tokens[j];
                if is_punct(u, '(') || is_punct(u, '[') {
                    depth += 1;
                } else if is_punct(u, ')') || is_punct(u, ']') {
                    depth -= 1;
                } else if depth == 0 && is_ident(u, "in") {
                    found_in = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(in_at) = found_in else { continue };
            let mut k = in_at + 1;
            let mut depth = 0i32;
            while k < tokens.len() && k - in_at < 48 {
                let u = &tokens[k];
                if is_punct(u, '(') || is_punct(u, '[') {
                    depth += 1;
                } else if is_punct(u, ')') || is_punct(u, ']') {
                    depth -= 1;
                } else if depth == 0 && is_punct(u, '{') {
                    break;
                } else if u.kind == TokenKind::Ident && bound.contains(&u.text) {
                    push(out, t.line, "for-loop", &u.text);
                    break;
                }
                k += 1;
            }
        }
    }
}

// --------------------------------------------------------------- D002

fn d002_wall_clock(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        if is_ident(t, "Instant") && match_path(ctx.tokens, i + 1, &["::", "now"]).is_some() {
            out.push(finding(
                ctx,
                "D002",
                t.line,
                "wall-clock read `Instant::now()`; simulated components must use engine time"
                    .into(),
            ));
        }
        if is_ident(t, "SystemTime") {
            out.push(finding(
                ctx,
                "D002",
                t.line,
                "wall-clock type `SystemTime`; simulated components must use engine time".into(),
            ));
        }
    }
}

// --------------------------------------------------------------- D003

fn d003_ambient_randomness(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in ctx.tokens.iter().enumerate() {
        let bad = if is_ident(t, "thread_rng")
            || is_ident(t, "from_entropy")
            || is_ident(t, "OsRng")
            || is_ident(t, "getrandom")
        {
            Some(t.text.clone())
        } else if is_ident(t, "rand") && match_path(ctx.tokens, i + 1, &["::", "random"]).is_some()
        {
            Some("rand::random".into())
        } else {
            None
        };
        if let Some(what) = bad {
            out.push(finding(
                ctx,
                "D003",
                t.line,
                format!("ambient randomness `{what}`; construct every RNG from a named seed/stream constant"),
            ));
        }
    }
}

// --------------------------------------------------------------- D004

fn d004_threads(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let mut seen_lines: Vec<u32> = Vec::new();
    for (i, t) in ctx.tokens.iter().enumerate() {
        let hit = if match_path(ctx.tokens, i, &["std", "::", "thread"]).is_some() {
            Some("std::thread")
        } else if match_path(ctx.tokens, i, &["std", "::", "sync", "::", "mpsc"]).is_some() {
            Some("std::sync::mpsc")
        } else if match_path(ctx.tokens, i, &["thread", "::", "spawn"]).is_some() {
            Some("thread::spawn")
        } else if match_path(ctx.tokens, i, &["mpsc", "::", "channel"]).is_some() {
            Some("mpsc::channel")
        } else {
            None
        };
        if let Some(what) = hit {
            if !seen_lines.contains(&t.line) {
                seen_lines.push(t.line);
                out.push(finding(
                    ctx,
                    "D004",
                    t.line,
                    format!("`{what}`: threads/channels are reserved for the bench worker pool (`bench::parallel`)"),
                ));
            }
        }
    }
}

// --------------------------------------------------------------- D005

fn d005_partial_cmp_sorts(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !CMP_FNS.contains(&t.text.as_str()) {
            continue;
        }
        let Some(open) = tokens.get(i + 1) else {
            continue;
        };
        if !is_punct(open, '(') {
            continue;
        }
        let mut depth = 1i32;
        let mut j = i + 2;
        while j < tokens.len() && depth > 0 {
            let u = &tokens[j];
            if is_punct(u, '(') {
                depth += 1;
            } else if is_punct(u, ')') {
                depth -= 1;
            } else if is_ident(u, "partial_cmp") {
                out.push(finding(
                    ctx,
                    "D005",
                    t.line,
                    format!(
                        "`{}` comparator uses `partial_cmp`; NaN makes the order partial and \
                         platform/input dependent — use `f64::total_cmp`",
                        t.text
                    ),
                ));
                break;
            }
            j += 1;
        }
    }
}

// --------------------------------------------------------------- D007

/// Identifiers that denote an engine message payload by the workspace's
/// own naming convention (`Engine::send(.., payload, ..)` and every
/// protocol handler use this name for the in-flight message body).
const PAYLOAD_IDENTS: &[&str] = &["payload"];

/// Flags `.clone()` whose direct receiver is a message payload. Since the
/// shared-payload envelope landed, fan-out goes through
/// `Engine::multicast`/`send_shared` and the engine's fault-duplication
/// path shares the `Rc` instead of cloning — a fresh `payload.clone()`
/// reintroduces a per-destination copy of the full message body. Like
/// D001, resolution is by name within the file; rename the local or add
/// an inline `// lint:allow(D007): ...` marker for a justified copy.
fn d007_payload_clone(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && t.text == "clone"
            && i >= 1
            && is_punct(&tokens[i - 1], '.')
            && tokens.get(i + 1).is_some_and(|u| is_punct(u, '('))
        {
            if let Some(recv) = direct_receiver(tokens, i - 1) {
                if PAYLOAD_IDENTS.contains(&recv.as_str()) {
                    out.push(finding(
                        ctx,
                        "D007",
                        t.line,
                        format!(
                            "`{recv}.clone()` copies a full message payload per destination; \
                             share one allocation via `Engine::multicast`/`send_shared` \
                             (`Payload` envelope) instead"
                        ),
                    ));
                }
            }
        }
    }
}

// --------------------------------------------------------------- D006

fn d006_forbid_unsafe(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if is_punct(t, '#')
            && tokens.get(i + 1).is_some_and(|u| is_punct(u, '!'))
            && tokens.get(i + 2).is_some_and(|u| is_punct(u, '['))
            && tokens
                .get(i + 3)
                .is_some_and(|u| is_ident(u, "forbid") || is_ident(u, "deny"))
            && tokens.get(i + 4).is_some_and(|u| is_punct(u, '('))
            && tokens
                .get(i + 5)
                .is_some_and(|u| is_ident(u, "unsafe_code"))
        {
            return;
        }
    }
    out.push(finding(
        ctx,
        "D006",
        1,
        "crate root is missing `#![forbid(unsafe_code)]`".into(),
    ));
}

// --------------------------------------------------------------- D008

fn d008_timer_discipline(
    ctx: &FileCtx,
    funcs: &[parse::Func],
    cfgs: &[cfg::Cfg],
    out: &mut Vec<Finding>,
) {
    let r = ctx.rules;
    if r.timer_acquire.is_empty() {
        return;
    }
    for (f, g) in funcs.iter().zip(cfgs) {
        for leak in dataflow::timer_leaks(g, ctx.tokens, &r.timer_acquire, &r.timer_detached) {
            out.push(finding(
                ctx,
                "D008",
                leak.line,
                format!(
                    "timer handle `{}` (armed via `{}` in `{}`) can go out of scope \
                     still armed on some path — cancel it, store it in state released \
                     by a teardown fn ({}), or arm a detached timer",
                    leak.var,
                    leak.via,
                    f.name,
                    r.teardown.join("/"),
                ),
            ));
        }
    }
}

// --------------------------------------------------------------- D009

fn d009_stale_index(
    ctx: &FileCtx,
    funcs: &[parse::Func],
    cfgs: &[cfg::Cfg],
    out: &mut Vec<Finding>,
) {
    let r = ctx.rules;
    if r.index_acquire.is_empty() {
        return;
    }
    // Teardown fns recycle slots, so they are invalidation points too.
    let mut invalidate = r.index_invalidate.clone();
    for t in &r.teardown {
        if !invalidate.contains(t) {
            invalidate.push(t.clone());
        }
    }
    for (f, g) in funcs.iter().zip(cfgs) {
        for u in dataflow::stale_index_uses(g, ctx.tokens, &r.index_acquire, &invalidate) {
            out.push(finding(
                ctx,
                "D009",
                u.use_line,
                format!(
                    "dense index `{}` (looked up on line {} in `{}`) is used after \
                     `{}` may have invalidated it — re-look it up past the \
                     invalidation point",
                    u.var, u.def_line, f.name, u.invalidated_by,
                ),
            ));
        }
    }
}

// --------------------------------------------------------------- D010

/// Paths whose code is outside the deterministic replay surface: test,
/// bench and example trees draw from ad-hoc seeds by design.
fn is_test_path(path: &str) -> bool {
    let p = path.replace('\\', "/");
    ["tests/", "benches/", "examples/"]
        .iter()
        .any(|d| p.starts_with(d) || p.contains(&format!("/{d}")))
}

/// Index of the first `#[cfg(test)]` attribute, or `usize::MAX`; the
/// registry rules ignore tokens past it (unit-test modules sit at the
/// end of a file by workspace convention).
fn cfg_test_boundary(tokens: &[Token]) -> usize {
    for i in 0..tokens.len() {
        if is_punct(&tokens[i], '#')
            && tokens.get(i + 1).is_some_and(|t| is_punct(t, '['))
            && tokens.get(i + 2).is_some_and(|t| is_ident(t, "cfg"))
            && tokens.get(i + 3).is_some_and(|t| is_punct(t, '('))
            && tokens.get(i + 4).is_some_and(|t| is_ident(t, "test"))
        {
            return i;
        }
    }
    usize::MAX
}

fn d010_rng_streams(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let streams = &ctx.rules.streams;
    if streams.is_empty() || is_test_path(ctx.path) {
        return;
    }
    let tokens = ctx.tokens;
    let boundary = cfg_test_boundary(tokens);
    for (i, t) in tokens.iter().enumerate() {
        if i >= boundary {
            break;
        }
        if !is_ident(t, "seed_from_u64") || !tokens.get(i + 1).is_some_and(|u| is_punct(u, '(')) {
            continue;
        }
        // Collect the argument tokens up to the matching `)`.
        let mut depth = 1i32;
        let mut j = i + 2;
        let arg_lo = j;
        while j < tokens.len() && depth > 0 {
            if is_punct(&tokens[j], '(') {
                depth += 1;
            } else if is_punct(&tokens[j], ')') {
                depth -= 1;
            }
            j += 1;
        }
        let args = &tokens[arg_lo..j.saturating_sub(1).max(arg_lo)];
        let hit = streams
            .iter()
            .find(|s| args.iter().any(|a| a.text == s.pattern));
        match hit {
            None => out.push(finding(
                ctx,
                "D010",
                t.line,
                "`seed_from_u64` without a registered stream constant in the seed \
                 expression; declare the subsystem's stream in lint.toml [[stream]] \
                 and mix it in (seed ^ STREAM) so draw order survives refactors"
                    .into(),
            )),
            Some(s) if s.path != ctx.path => out.push(finding(
                ctx,
                "D010",
                t.line,
                format!(
                    "RNG stream `{}` ({}) is declared for `{}` but seeded here — \
                     each subsystem draws only from its own stream",
                    s.name, s.pattern, s.path,
                ),
            )),
            Some(_) => {}
        }
    }
}

// --------------------------------------------------------------- D011

fn d011_metric_names(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let r = ctx.rules;
    if r.metric_names.is_empty() || r.metric_emitters.is_empty() || is_test_path(ctx.path) {
        return;
    }
    let tokens = ctx.tokens;
    let boundary = cfg_test_boundary(tokens);
    for (i, t) in tokens.iter().enumerate() {
        if i >= boundary {
            break;
        }
        if t.kind != TokenKind::Ident
            || !r.metric_emitters.contains(&t.text)
            || !tokens.get(i + 1).is_some_and(|u| is_punct(u, '('))
        {
            continue;
        }
        // Every string literal among the call's arguments must be a
        // registered name (emitters take only name strings as text).
        let mut depth = 1i32;
        let mut j = i + 2;
        while j < tokens.len() && depth > 0 {
            let u = &tokens[j];
            if is_punct(u, '(') {
                depth += 1;
            } else if is_punct(u, ')') {
                depth -= 1;
            } else if u.kind == TokenKind::Literal && u.text.starts_with('"') {
                let name = u.text.trim_matches('"');
                if !r.metric_names.iter().any(|n| n == name) {
                    out.push(finding(
                        ctx,
                        "D011",
                        u.line,
                        format!(
                            "metric/trace name \"{name}\" passed to `{}` is not in the \
                             lint.toml [metrics] registry — declare it there (and in \
                             DESIGN.md) or fix the typo",
                            t.text,
                        ),
                    ));
                }
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(src: &str, deterministic: bool) -> Vec<Finding> {
        check_rules(src, deterministic, &RuleConfig::default())
    }

    fn check_rules(src: &str, deterministic: bool, rules: &RuleConfig) -> Vec<Finding> {
        let lexed = lex(src);
        check_file(&FileCtx {
            path: "test.rs",
            deterministic,
            is_crate_root: false,
            tokens: &lexed.tokens,
            rules,
        })
    }

    #[test]
    fn d001_tracks_aliases_and_fields() {
        let src = "
            use std::collections::HashMap as Map;
            struct S { m: Map<u32, u32> }
            impl S { fn f(&self) { for (k, v) in &self.m {} } }
        ";
        let f = check(src, true);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D001");
    }

    #[test]
    fn d001_type_alias_chain_and_let_propagation() {
        let src = "
            use std::collections::HashMap;
            type SeqMap<V> = HashMap<u64, V, SeqBuild>;
            struct T { meta: Vec<SeqMap<u64>> }
            impl T { fn f(&mut self, i: usize) {
                let m = &mut self.meta[i];
                m.retain(|_, _| true);
            } }
        ";
        let f = check(src, true);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains(".retain()"));
    }

    #[test]
    fn d001_ignores_lookup_only_and_nondeterministic_crates() {
        let src = "
            use std::collections::HashMap;
            struct S { m: HashMap<u32, u32> }
            impl S { fn g(&self) -> Option<&u32> { self.m.get(&1) } }
        ";
        assert!(check(src, true).is_empty());
        let iter = "
            use std::collections::HashMap;
            fn f(m: HashMap<u32, u32>) { for k in m.keys() {} }
        ";
        assert!(!check(iter, true).is_empty());
        assert!(
            check(iter, false).is_empty(),
            "rule only runs in deterministic crates"
        );
    }

    #[test]
    fn d001_btreemap_is_clean() {
        let src = "
            use std::collections::BTreeMap;
            fn f(m: BTreeMap<u32, u32>) { for k in m.keys() {} m.len(); }
        ";
        assert!(check(src, true).is_empty());
    }

    #[test]
    fn d002_wall_clock() {
        let f = check("fn f() { let t = std::time::Instant::now(); }", false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D002");
        let f = check("use std::time::SystemTime;", false);
        assert_eq!(f.len(), 1);
        assert!(check("fn f() { let i: Instant = t; }", false).is_empty());
    }

    #[test]
    fn d003_ambient_randomness() {
        assert_eq!(check("let r = rand::thread_rng();", false)[0].rule, "D003");
        assert_eq!(check("let x: u8 = rand::random();", false)[0].rule, "D003");
        assert_eq!(
            check("let r = StdRng::from_entropy();", false)[0].rule,
            "D003"
        );
        assert!(check("let r = StdRng::seed_from_u64(SEED ^ 0xfa01);", false).is_empty());
        assert!(
            check("fn random_walk() {}", false).is_empty(),
            "bare `random` ident is fine"
        );
    }

    #[test]
    fn d004_threads() {
        assert_eq!(check("use std::thread;", false)[0].rule, "D004");
        assert_eq!(check("use std::sync::mpsc;", false)[0].rule, "D004");
        assert_eq!(check("let h = thread::spawn(|| 1);", false)[0].rule, "D004");
        assert!(check("fn thread_count() -> usize { 1 }", false).is_empty());
    }

    #[test]
    fn d005_partial_cmp_sorts() {
        let f = check(
            "fn f(v: &mut [f64]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
            true,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D005");
        assert!(check("fn f(v: &mut [f64]) { v.sort_by(f64::total_cmp); }", true).is_empty());
        assert!(
            check(
                "fn f(a: f64, b: f64) -> bool { a.partial_cmp(&b).is_some() }",
                true
            )
            .is_empty(),
            "partial_cmp outside a sort comparator is not D005"
        );
    }

    #[test]
    fn d007_payload_clone() {
        let f = check(
            "fn f() { for &to in dests { eng.send(from, to, payload.clone(), 64, c); } }",
            true,
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D007");
        assert!(
            check(
                "fn f() { eng.multicast(from, dests, payload, 64, c); }",
                true
            )
            .is_empty(),
            "multicast without cloning is clean"
        );
        assert!(
            check("fn f() { let p = config.clone(); }", true).is_empty(),
            "cloning non-payload values is not D007"
        );
        assert!(
            check(
                "fn f() { for &to in dests { eng.send(from, to, payload.clone(), 64, c); } }",
                false
            )
            .is_empty(),
            "rule only runs in deterministic crates"
        );
    }

    #[test]
    fn d006_crate_root() {
        let rules = RuleConfig::default();
        let lexed = lex("//! docs\npub fn f() {}\n");
        let f = check_file(&FileCtx {
            path: "src/lib.rs",
            deterministic: true,
            is_crate_root: true,
            tokens: &lexed.tokens,
            rules: &rules,
        });
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "D006");
        let lexed = lex("#![forbid(unsafe_code)]\npub fn f() {}\n");
        let f = check_file(&FileCtx {
            path: "src/lib.rs",
            deterministic: true,
            is_crate_root: true,
            tokens: &lexed.tokens,
            rules: &rules,
        });
        assert!(f.is_empty());
    }

    #[test]
    fn d008_flags_leak_and_honours_consumption() {
        let bad = "impl A { fn f(&mut self, c: bool) {
            let h = self.set_timer(eng, n, d, t);
            if c { self.keep = Some(h); }
        } }";
        let f = check(bad, true);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D008");
        assert!(f[0].message.contains('h'));
        let good = "impl A { fn f(&mut self, c: bool) {
            let h = self.set_timer(eng, n, d, t);
            if c { self.keep = Some(h); } else { eng.cancel_timer(h); }
        } }";
        assert!(check(good, true).is_empty());
        assert!(
            check(bad, false).is_empty(),
            "flow rules only run in deterministic crates"
        );
    }

    #[test]
    fn d009_flags_use_after_invalidation() {
        let bad = "impl A { fn f(&mut self, h: Handle) {
            let s = self.slot_of(h);
            self.release_slot(s);
            self.scan[s] = 0;
        } }";
        let f = check(bad, true);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D009");
        // Teardown fns double as invalidation points.
        let bad2 = "impl A { fn f(&mut self, h: Handle) {
            let s = self.slot_of(h);
            self.clear_node(n);
            touch(s);
        } }";
        assert_eq!(check(bad2, true).len(), 1);
        let good = "impl A { fn f(&mut self, h: Handle) {
            let s = self.slot_of(h);
            self.scan[s] = 0;
            self.release_slot(s);
        } }";
        assert!(check(good, true).is_empty());
    }

    fn rules_with_stream(path: &str) -> RuleConfig {
        RuleConfig {
            streams: vec![crate::config::StreamDecl {
                name: "topology".into(),
                pattern: "TOPOLOGY_STREAM".into(),
                path: path.into(),
                line: 0,
            }],
            ..RuleConfig::default()
        }
    }

    #[test]
    fn d010_stream_registry() {
        // Registry empty: rule is off.
        assert!(check("fn f() { let r = Rng::seed_from_u64(seed); }", true).is_empty());
        let r = rules_with_stream("test.rs");
        let clean = "fn f() { let r = Rng::seed_from_u64(seed ^ TOPOLOGY_STREAM); }";
        assert!(check_rules(clean, true, &r).is_empty());
        let bare = "fn f() { let r = Rng::seed_from_u64(seed); }";
        let f = check_rules(bare, true, &r);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D010");
        // Stream declared for a different file: using it here is a leak
        // across subsystems.
        let elsewhere = rules_with_stream("crates/sim/src/topology.rs");
        let f = check_rules(clean, true, &elsewhere);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("declared for"));
    }

    #[test]
    fn d011_metric_name_registry() {
        // Registry empty: rule is off.
        let src = r#"fn f(eng: &mut E) { eng.set_counter(n, "app.bogus", 1); }"#;
        assert!(check(src, true).is_empty());
        let r = RuleConfig {
            metric_names: vec!["app.known".into()],
            ..RuleConfig::default()
        };
        let f = check_rules(src, true, &r);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "D011");
        assert!(f[0].message.contains("app.bogus"));
        let ok = r#"fn f(eng: &mut E) { eng.set_counter(n, "app.known", 1); }"#;
        assert!(check_rules(ok, true, &r).is_empty());
        // Unit tests below a #[cfg(test)] boundary are exempt.
        let test_mod = "#[cfg(test)]\nmod tests { fn f(eng: &mut E) { eng.set_counter(n, \"app.bogus\", 1); } }";
        assert!(check_rules(test_mod, true, &r).is_empty());
    }
}
