#![forbid(unsafe_code)]
//! CLI entry point. See the crate docs in `lib.rs`.

use std::path::PathBuf;
use std::process::ExitCode;

use seaweed_lint::{load_config, report, rules, run_workspace, workspace};

const USAGE: &str = "\
seaweed-lint — workspace determinism & safety auditor

USAGE: cargo run -p seaweed-lint [-- OPTIONS]

OPTIONS:
  --format <human|json|sarif>   output format (default: human)
  --root <dir>            workspace root (default: discovered from cwd)
  --list-rules            print the rule catalogue and exit
  --help                  this text

Exits 0 when the tree is clean, 1 on any unbaselined finding.";

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("seaweed-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => {
                format = args.next().ok_or("--format wants a value")?;
                if format != "human" && format != "json" && format != "sarif" {
                    return Err(format!("unknown format `{format}`"));
                }
            }
            "--root" => root = Some(PathBuf::from(args.next().ok_or("--root wants a value")?)),
            "--list-rules" => {
                for (id, desc) in rules::RULES {
                    println!("{id}  {desc}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            workspace::find_workspace_root(&cwd)?
        }
    };
    let cfg = load_config(&root)?;
    let res = run_workspace(&root, &cfg)?;
    if format == "json" {
        print!("{}", report::render_json(&res.findings));
    } else if format == "sarif" {
        print!("{}", report::render_sarif(&res.findings));
    } else {
        for f in &res.findings {
            println!("{}", f.render());
        }
        println!(
            "seaweed-lint: {} finding(s) across {} file(s) in {} crate(s)",
            res.findings.len(),
            res.files,
            res.crates
        );
    }
    Ok(if res.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
