#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! `seaweed-lint` — a workspace-wide determinism & safety auditor.
//!
//! Every result this reproduction produces rests on the simulator
//! replaying byte-identically; this tool moves that contract from
//! "hope a 32-seed sweep trips a regression" to "the build refuses
//! it". It audits every workspace crate (vendored shims excluded)
//! against the rule catalogue in [`rules`], honours inline
//! `lint:allow` markers ([`allow`]) and the checked-in `lint.toml`
//! baseline ([`config`]), and exits nonzero on any unbaselined
//! finding.
//!
//! Run it as `cargo run -p seaweed-lint` from anywhere in the
//! workspace. `--format json` emits machine-readable output;
//! `--list-rules` prints the catalogue. See DESIGN.md "Static
//! analysis" for the rule rationale and the policy on allowlists.

pub mod allow;
pub mod cfg;
pub mod config;
pub mod dataflow;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod workspace;

use std::fs;
use std::path::Path;

use config::{Config, RuleConfig};
use report::Finding;
use rules::FileCtx;

/// Lints one in-memory source file with the default rule registries
/// (see [`RuleConfig::default`]). Convenience wrapper over
/// [`lint_source_with`] for tests and fixtures.
#[must_use]
pub fn lint_source(
    path: &str,
    deterministic: bool,
    is_crate_root: bool,
    src: &str,
) -> Vec<Finding> {
    lint_source_with(
        path,
        deterministic,
        is_crate_root,
        src,
        &RuleConfig::default(),
    )
}

/// Lints one in-memory source file: lex, rule checks, inline-marker
/// application. No baseline — that is a workspace-level concern.
#[must_use]
pub fn lint_source_with(
    path: &str,
    deterministic: bool,
    is_crate_root: bool,
    src: &str,
    rules_cfg: &RuleConfig,
) -> Vec<Finding> {
    let lexed = lexer::lex(src);
    let findings = rules::check_file(&FileCtx {
        path,
        deterministic,
        is_crate_root,
        tokens: &lexed.tokens,
        rules: rules_cfg,
    });
    let markers = allow::scan_markers(&lexed.comments);
    allow::apply_markers(path, findings, &markers)
}

/// Result of a workspace run.
#[derive(Debug)]
pub struct RunResult {
    /// Findings that survived markers and the baseline, sorted by
    /// (path, line, rule).
    pub findings: Vec<Finding>,
    /// Files audited.
    pub files: usize,
    /// Crates audited.
    pub crates: usize,
}

/// Audits the whole workspace rooted at `root` with `cfg`.
pub fn run_workspace(root: &Path, cfg: &Config) -> Result<RunResult, String> {
    let crates = workspace::discover(root)?;
    let mut findings: Vec<Finding> = Vec::new();
    let mut files = 0usize;
    let mut audited = 0usize;
    for c in &crates {
        if cfg.skip.contains(&c.name) {
            continue;
        }
        audited += 1;
        let deterministic = cfg.deterministic.contains(&c.name);
        for f in &c.files {
            files += 1;
            let abs = root.join(f);
            let src = fs::read_to_string(&abs).map_err(|e| format!("{}: {e}", abs.display()))?;
            let path = f.to_string_lossy().replace('\\', "/");
            let is_root = c.root_file.as_deref() == Some(f.as_path());
            findings.extend(lint_source_with(
                &path,
                deterministic,
                is_root,
                &src,
                &cfg.rules,
            ));
        }
    }
    let mut findings = cfg.apply_baseline(findings);
    findings
        .sort_by(|a, b| (a.path.clone(), a.line, a.rule).cmp(&(b.path.clone(), b.line, b.rule)));
    Ok(RunResult {
        findings,
        files,
        crates: audited,
    })
}

/// Loads `lint.toml` from the workspace root (defaults when absent).
pub fn load_config(root: &Path) -> Result<Config, String> {
    let p = root.join("lint.toml");
    if !p.is_file() {
        return Ok(Config::default());
    }
    let text = fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
    Config::parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_end_to_end_with_marker() {
        let bad = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(lint_source("x.rs", false, false, bad).len(), 1);
        let ok = "// lint:allow(D002): human-facing progress only\nfn f() { let t = std::time::Instant::now(); }";
        assert!(lint_source("x.rs", false, false, ok).is_empty());
    }
}
