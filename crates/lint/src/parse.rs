//! A lightweight statement parser over the token stream.
//!
//! The flow-sensitive rules (D008/D009) need more structure than a flat
//! token walk: they reason about *paths* through a function. This
//! module recovers just enough shape for that — per-function statement
//! trees with branches (`if`/`else`, `match`), loops (`for`/`while`/
//! `loop`) and early exits (`return`/`break`/`continue`) — without
//! attempting a real Rust grammar. Everything inside a flat statement
//! stays a token range: expressions are never parsed, only scanned.
//!
//! The parser is deliberately *lossy and total*: any construct it does
//! not understand is swallowed into the nearest flat statement by
//! bracket-depth scanning, so malformed or exotic input degrades to a
//! coarser statement tree instead of an error. Coarser trees can only
//! *hide* flow (fewer distinct paths), never invent it, which keeps the
//! dataflow rules on the false-negative side of any parse imprecision.
//! A robustness test in `tests/fixtures.rs` runs this over every file
//! in the workspace.

use crate::lexer::{Token, TokenKind};

/// One parsed function body.
#[derive(Debug)]
pub struct Func {
    /// Function name (for findings).
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    pub body: Vec<Stmt>,
}

/// One statement. Flat variants carry `[lo, hi)` token ranges into the
/// file's token slice; structured variants carry child statement lists.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <expr>;` — `name` is `Some` only for a plain
    /// identifier pattern (`let h = ...` / `let mut h = ...`);
    /// destructuring patterns and `let _` are untracked by design.
    Let {
        name: Option<String>,
        lo: usize,
        hi: usize,
        line: u32,
    },
    /// Any other flat statement (expression, `use`, macro call, ...).
    Expr {
        lo: usize,
        hi: usize,
        line: u32,
    },
    /// `return <expr>;` (or a trailing diverging arm expression).
    Return {
        lo: usize,
        hi: usize,
        line: u32,
    },
    Break {
        line: u32,
    },
    Continue {
        line: u32,
    },
    If {
        /// Condition token range (includes `let` patterns of `if let`).
        cond: (usize, usize),
        then_b: Vec<Stmt>,
        else_b: Vec<Stmt>,
        line: u32,
    },
    /// `for`/`while`/`loop` — `head` covers the iterator/condition
    /// tokens (empty for bare `loop`).
    Loop {
        head: (usize, usize),
        body: Vec<Stmt>,
        line: u32,
    },
    Match {
        /// Scrutinee token range.
        head: (usize, usize),
        arms: Vec<Arm>,
        line: u32,
    },
    /// A bare `{ ... }` / `unsafe { ... }` block.
    Block {
        body: Vec<Stmt>,
        line: u32,
    },
}

/// One `match` arm: pattern (incl. guard) token range plus body.
#[derive(Debug)]
pub struct Arm {
    pub pat: (usize, usize),
    pub body: Vec<Stmt>,
    pub line: u32,
}

/// Nesting bound: beyond this the parser flattens instead of recursing
/// (a statement tree this deep adds no flow precision worth the risk).
const MAX_DEPTH: u32 = 64;

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct && t.text.as_bytes()[0] == c as u8
}

/// Parses every function (including nested ones) in the file. Function
/// bodies never overlap in the result: a nested `fn` is lifted out as
/// its own entry and skipped in the enclosing body.
#[must_use]
pub fn parse_functions(tokens: &[Token]) -> Vec<Func> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if is_ident(&tokens[i], "fn") {
            i = parse_fn(tokens, i, &mut out, 0);
        } else {
            i += 1;
        }
    }
    out
}

/// Parses one `fn` starting at the `fn` keyword; returns the index one
/// past the function (or past the `fn` token when it is not actually a
/// function definition, e.g. an `fn(..)` pointer type).
fn parse_fn(tokens: &[Token], at: usize, out: &mut Vec<Func>, depth: u32) -> usize {
    let line = tokens[at].line;
    let Some(name_tok) = tokens.get(at + 1) else {
        return at + 1;
    };
    if name_tok.kind != TokenKind::Ident {
        return at + 1; // `fn(...)` pointer type or malformed
    }
    let name = name_tok.text.clone();
    // Skip the signature: generics, params, return type, where-clause —
    // everything up to the body `{` or a trait-decl `;`.
    let mut i = at + 2;
    let mut angle = 0i32;
    let mut round = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, '-') && tokens.get(i + 1).is_some_and(|u| is_punct(u, '>')) {
            i += 2; // `->` — don't let its `>` close a generic
            continue;
        }
        if is_punct(t, '<') {
            angle += 1;
        } else if is_punct(t, '>') {
            angle -= 1;
        } else if is_punct(t, '(') || is_punct(t, '[') {
            round += 1;
        } else if is_punct(t, ')') || is_punct(t, ']') {
            round -= 1;
        } else if round == 0 && angle <= 0 {
            if is_punct(t, ';') {
                return i + 1; // bodyless trait method
            }
            if is_punct(t, '{') {
                let (body, end) = parse_block(tokens, i + 1, out, depth);
                out.push(Func { name, line, body });
                return end;
            }
        }
        i += 1;
    }
    i
}

/// Parses statements until the matching `}`; `i` points just past the
/// opening `{`. Returns `(stmts, index one past the close)`.
fn parse_block(
    tokens: &[Token],
    mut i: usize,
    out: &mut Vec<Func>,
    depth: u32,
) -> (Vec<Stmt>, usize) {
    let mut stmts = Vec::new();
    if depth > MAX_DEPTH {
        // Too deep: swallow the block as one flat statement.
        let line = tokens.get(i).map_or(0, |t| t.line);
        let lo = i;
        i = skip_balanced_to_close(tokens, i);
        stmts.push(Stmt::Expr {
            lo,
            hi: i.saturating_sub(1),
            line,
        });
        return (stmts, i);
    }
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, '}') {
            return (stmts, i + 1);
        }
        if is_punct(t, ';') {
            i += 1; // stray empty statement
            continue;
        }
        if is_punct(t, '#') {
            i = skip_attribute(tokens, i);
            continue;
        }
        if t.kind == TokenKind::Ident {
            match t.text.as_str() {
                "let" => {
                    let (s, next) = parse_let(tokens, i);
                    stmts.push(s);
                    i = next;
                    continue;
                }
                "if" => {
                    let (s, next) = parse_if(tokens, i, out, depth);
                    stmts.push(s);
                    i = next;
                    continue;
                }
                "match" => {
                    let (s, next) = parse_match(tokens, i, out, depth);
                    stmts.push(s);
                    i = next;
                    continue;
                }
                "for" | "while" | "loop" => {
                    let line = t.line;
                    let head_lo = i + 1;
                    let open = find_block_open(tokens, head_lo);
                    let head_hi = open;
                    let (body, next) = parse_block(tokens, open + 1, out, depth + 1);
                    stmts.push(Stmt::Loop {
                        head: (head_lo, head_hi),
                        body,
                        line,
                    });
                    i = next;
                    continue;
                }
                "unsafe" if tokens.get(i + 1).is_some_and(|u| is_punct(u, '{')) => {
                    let (body, next) = parse_block(tokens, i + 2, out, depth + 1);
                    stmts.push(Stmt::Block { body, line: t.line });
                    i = next;
                    continue;
                }
                "return" => {
                    let line = t.line;
                    let lo = i;
                    let hi = scan_stmt_end(tokens, i + 1);
                    stmts.push(Stmt::Return { lo, hi, line });
                    i = hi;
                    continue;
                }
                "break" => {
                    let line = t.line;
                    i = scan_stmt_end(tokens, i + 1);
                    stmts.push(Stmt::Break { line });
                    continue;
                }
                "continue" => {
                    let line = t.line;
                    i = scan_stmt_end(tokens, i + 1);
                    stmts.push(Stmt::Continue { line });
                    continue;
                }
                "fn" => {
                    // Nested function: lifted into `out`, skipped here.
                    i = parse_fn(tokens, i, out, depth + 1);
                    continue;
                }
                "struct" | "enum" | "impl" | "trait" | "mod" => {
                    i = skip_item(tokens, i + 1);
                    continue;
                }
                _ => {}
            }
        }
        if is_punct(t, '{') {
            let (body, next) = parse_block(tokens, i + 1, out, depth + 1);
            stmts.push(Stmt::Block { body, line: t.line });
            i = next;
            continue;
        }
        // Anything else: a flat expression statement.
        let line = t.line;
        let lo = i;
        let hi = scan_stmt_end(tokens, i);
        stmts.push(Stmt::Expr { lo, hi, line });
        i = hi.max(lo + 1);
    }
    (stmts, i)
}

/// `let [mut] <pat> [: ty] = <expr>;` — the whole statement is one flat
/// range; only a plain identifier pattern yields a tracked name.
fn parse_let(tokens: &[Token], at: usize) -> (Stmt, usize) {
    let line = tokens[at].line;
    let mut j = at + 1;
    if tokens.get(j).is_some_and(|t| is_ident(t, "mut")) {
        j += 1;
    }
    let name = match (tokens.get(j), tokens.get(j + 1)) {
        (Some(n), Some(nx))
            if n.kind == TokenKind::Ident
                && n.text != "_"
                && (is_punct(nx, '=')
                    || (is_punct(nx, ':') && !is_punct2(tokens, j + 1, "::"))) =>
        {
            Some(n.text.clone())
        }
        _ => None,
    };
    let hi = scan_stmt_end(tokens, j);
    (
        Stmt::Let {
            name,
            lo: at,
            hi,
            line,
        },
        hi,
    )
}

/// `:` at `at` followed by another `:` (i.e. a `::` path)?
fn is_punct2(tokens: &[Token], at: usize, _pat: &str) -> bool {
    tokens.get(at + 1).is_some_and(|t| is_punct(t, ':'))
}

fn parse_if(tokens: &[Token], at: usize, out: &mut Vec<Func>, depth: u32) -> (Stmt, usize) {
    let line = tokens[at].line;
    let cond_lo = at + 1;
    let open = find_block_open(tokens, cond_lo);
    let (then_b, mut i) = parse_block(tokens, open + 1, out, depth + 1);
    let mut else_b = Vec::new();
    if tokens.get(i).is_some_and(|t| is_ident(t, "else")) {
        if tokens.get(i + 1).is_some_and(|t| is_ident(t, "if")) {
            let (nested, next) = parse_if(tokens, i + 1, out, depth);
            else_b.push(nested);
            i = next;
        } else if tokens.get(i + 1).is_some_and(|t| is_punct(t, '{')) {
            let (b, next) = parse_block(tokens, i + 2, out, depth + 1);
            else_b = b;
            i = next;
        }
    }
    (
        Stmt::If {
            cond: (cond_lo, open),
            then_b,
            else_b,
            line,
        },
        i,
    )
}

fn parse_match(tokens: &[Token], at: usize, out: &mut Vec<Func>, depth: u32) -> (Stmt, usize) {
    let line = tokens[at].line;
    let head_lo = at + 1;
    let open = find_block_open(tokens, head_lo);
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < tokens.len() {
        if is_punct(&tokens[i], '}') {
            i += 1;
            break;
        }
        if is_punct(&tokens[i], '#') {
            i = skip_attribute(tokens, i);
            continue;
        }
        if is_punct(&tokens[i], ',') {
            i += 1;
            continue;
        }
        let arm_line = tokens[i].line;
        let pat_lo = i;
        let arrow = find_arm_arrow(tokens, i);
        let pat_hi = arrow;
        let mut body = Vec::new();
        let mut j = arrow + 2; // past `=>`
        if tokens.get(j).is_some_and(|t| is_punct(t, '{')) {
            let (b, next) = parse_block(tokens, j + 1, out, depth + 1);
            body = b;
            j = next;
        } else if j < tokens.len() {
            let t = &tokens[j];
            if is_ident(t, "return") {
                let hi = scan_arm_expr_end(tokens, j + 1);
                body.push(Stmt::Return {
                    lo: j,
                    hi,
                    line: t.line,
                });
                j = hi;
            } else if is_ident(t, "break") {
                j = scan_arm_expr_end(tokens, j + 1);
                body.push(Stmt::Break { line: t.line });
            } else if is_ident(t, "continue") {
                j = scan_arm_expr_end(tokens, j + 1);
                body.push(Stmt::Continue { line: t.line });
            } else {
                let hi = scan_arm_expr_end(tokens, j);
                body.push(Stmt::Expr {
                    lo: j,
                    hi,
                    line: t.line,
                });
                j = hi;
            }
        }
        arms.push(Arm {
            pat: (pat_lo, pat_hi),
            body,
            line: arm_line,
        });
        if j <= i {
            j = i + 1; // guarantee progress on malformed arms
        }
        i = j;
    }
    (
        Stmt::Match {
            head: (head_lo, open),
            arms,
            line,
        },
        i,
    )
}

/// Finds the `{` opening a control-flow body: the first `{` at bracket
/// depth 0 scanning from `at` (braces inside parens/brackets — closure
/// bodies, struct literals in call args — are skipped by the depth
/// count; Rust forbids bare struct literals in these positions).
fn find_block_open(tokens: &[Token], at: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, '(') || is_punct(t, '[') {
            depth += 1;
        } else if is_punct(t, ')') || is_punct(t, ']') {
            depth -= 1;
        } else if depth <= 0 && is_punct(t, '{') {
            return i;
        }
        i += 1;
    }
    i.saturating_sub(1)
}

/// Finds the `=>` of a match arm at bracket depth 0 (struct patterns
/// `Foo { .. }` and tuple patterns nest; `>=`/`->`/guard comparisons
/// never produce `=` directly followed by `>`).
fn find_arm_arrow(tokens: &[Token], at: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, '(') || is_punct(t, '[') || is_punct(t, '{') {
            depth += 1;
        } else if is_punct(t, ')') || is_punct(t, ']') || is_punct(t, '}') {
            if depth == 0 {
                return i; // malformed arm; stop at the match close
            }
            depth -= 1;
        } else if depth == 0
            && is_punct(t, '=')
            && tokens.get(i + 1).is_some_and(|u| is_punct(u, '>'))
        {
            return i;
        }
        i += 1;
    }
    i.saturating_sub(1)
}

/// Scans a flat statement to its end: the `;` at depth 0 (consumed) or
/// a `}` at depth 0 (not consumed — trailing expression). Returns the
/// index one past the statement.
fn scan_stmt_end(tokens: &[Token], at: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, '(') || is_punct(t, '[') || is_punct(t, '{') {
            depth += 1;
        } else if is_punct(t, ')') || is_punct(t, ']') {
            depth -= 1;
        } else if is_punct(t, '}') {
            if depth == 0 {
                return i;
            }
            depth -= 1;
        } else if depth == 0 && is_punct(t, ';') {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Scans a non-block match-arm expression to its end: `,` at depth 0
/// (not consumed; the arm loop eats it) or the match's `}`.
fn scan_arm_expr_end(tokens: &[Token], at: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, '(') || is_punct(t, '[') || is_punct(t, '{') {
            depth += 1;
        } else if is_punct(t, ')') || is_punct(t, ']') {
            depth -= 1;
        } else if is_punct(t, '}') {
            if depth == 0 {
                return i;
            }
            depth -= 1;
        } else if depth == 0 && is_punct(t, ',') {
            return i;
        }
        i += 1;
    }
    i
}

/// Skips `#[...]` / `#![...]`; `at` points at `#`.
fn skip_attribute(tokens: &[Token], at: usize) -> usize {
    let mut i = at + 1;
    if tokens.get(i).is_some_and(|t| is_punct(t, '!')) {
        i += 1;
    }
    if !tokens.get(i).is_some_and(|t| is_punct(t, '[')) {
        return at + 1;
    }
    let mut depth = 1i32;
    i += 1;
    while i < tokens.len() && depth > 0 {
        if is_punct(&tokens[i], '[') {
            depth += 1;
        } else if is_punct(&tokens[i], ']') {
            depth -= 1;
        }
        i += 1;
    }
    i
}

/// Skips a nested item (`struct`/`enum`/`impl`/`trait`/`mod` inside a
/// body): to the first `;` or past the balanced `{...}`.
fn skip_item(tokens: &[Token], at: usize) -> usize {
    let mut i = at;
    while i < tokens.len() {
        let t = &tokens[i];
        if is_punct(t, ';') {
            return i + 1;
        }
        if is_punct(t, '{') {
            return skip_balanced_to_close(tokens, i + 1);
        }
        i += 1;
    }
    i
}

/// `i` points just past an opening `{`; returns the index one past the
/// matching `}`.
fn skip_balanced_to_close(tokens: &[Token], mut i: usize) -> usize {
    let mut depth = 1i32;
    while i < tokens.len() && depth > 0 {
        if is_punct(&tokens[i], '{') {
            depth += 1;
        } else if is_punct(&tokens[i], '}') {
            depth -= 1;
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Func> {
        parse_functions(&lex(src).tokens)
    }

    #[test]
    fn flat_statements_and_let_names() {
        let f = parse("fn f() { let h = go(); h.use_it(); let _ = drop_me(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "f");
        assert_eq!(f[0].body.len(), 3);
        match &f[0].body[0] {
            Stmt::Let { name, .. } => assert_eq!(name.as_deref(), Some("h")),
            s => panic!("{s:?}"),
        }
        match &f[0].body[2] {
            Stmt::Let { name, .. } => assert!(name.is_none(), "`let _` is untracked"),
            s => panic!("{s:?}"),
        }
    }

    #[test]
    fn if_else_chain_and_match_arms() {
        let f = parse(
            "fn f(x: u32) -> u32 {
                if x > 1 { a(); } else if x > 0 { b(); } else { c(); }
                match x { 0 => zero(), 1 => { one(); } _ => return 9, }
                x
            }",
        );
        assert_eq!(f.len(), 1);
        let body = &f[0].body;
        assert_eq!(body.len(), 3, "{body:?}");
        let Stmt::If { then_b, else_b, .. } = &body[0] else {
            panic!("{body:?}")
        };
        assert_eq!(then_b.len(), 1);
        assert!(matches!(else_b[0], Stmt::If { .. }), "else-if chains");
        let Stmt::Match { arms, .. } = &body[1] else {
            panic!("{body:?}")
        };
        assert_eq!(arms.len(), 3);
        assert!(matches!(arms[2].body[0], Stmt::Return { .. }));
    }

    #[test]
    fn loops_breaks_and_closure_braces() {
        let f = parse(
            "fn f(v: &[u32]) {
                for x in v.iter().filter(|y| { **y > 0 }) {
                    if *x == 3 { break; }
                    while *x > 0 { continue; }
                }
                loop { return; }
            }",
        );
        let body = &f[0].body;
        assert_eq!(body.len(), 2, "{body:?}");
        let Stmt::Loop { body: inner, .. } = &body[0] else {
            panic!("{body:?}")
        };
        assert_eq!(inner.len(), 2, "closure braces must not open the body");
    }

    #[test]
    fn nested_fns_are_lifted_not_inlined() {
        let f = parse("fn outer() { fn inner() { leak(); } outer_stmt(); }");
        assert_eq!(f.len(), 2, "{f:?}");
        let outer = f.iter().find(|x| x.name == "outer").unwrap();
        assert_eq!(
            outer.body.len(),
            1,
            "inner fn is lifted out: {:?}",
            outer.body
        );
        assert!(f.iter().any(|x| x.name == "inner"));
    }

    #[test]
    fn trait_decls_generics_and_fn_pointers() {
        let f = parse(
            "trait T { fn sig(&self) -> Option<u32>; }
             fn g<F: Fn(u32) -> bool>(cb: F, p: fn(u8) -> u8) -> Vec<u32> { body(); Vec::new() }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].name, "g");
        assert_eq!(f[0].body.len(), 2);
    }

    #[test]
    fn struct_literals_in_match_arms() {
        let f = parse(
            "fn f(o: Option<Cfg>) -> Cfg {
                match o { Some(Cfg { x }) => Cfg { x }, None => Cfg { x: 0 }, }
            }",
        );
        let Stmt::Match { arms, .. } = &f[0].body[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 2, "{arms:?}");
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "fn f( {",
            "fn",
            "fn f() { match x { ",
            "fn f() { if }",
            "fn f() { let = ; }",
            "}}}}",
            "fn f() { a(b(c(d(e(",
        ] {
            let _ = parse(src);
        }
    }
}
