//! A minimal Rust lexer.
//!
//! The auditor has no registry access, so `syn` is unavailable; instead
//! we tokenize source files by hand and let the rules walk token
//! streams. The lexer understands everything needed to *not* produce
//! false positives from non-code text: line and (nested) block
//! comments, string/char/byte literals, raw strings with arbitrary
//! `#` fences, and lifetimes (so `'a` is never mistaken for an
//! unterminated char). Comments are captured separately with line
//! numbers because `// lint:allow(...)` markers live there.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Token text. Punctuation is a single character; identifiers and
    /// literals carry their full source text.
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Integer or float literal.
    Number,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// `'a` and friends.
    Lifetime,
    /// A single punctuation character (`:`, `(`, `.`, ...).
    Punct,
}

/// A comment, kept out of the token stream but preserved for the
/// allow-marker scanner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// Lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Tokenizes `src`. Unterminated constructs (string, block comment) are
/// tolerated: the remainder of the file is swallowed into the token,
/// which is the best a lint can do on malformed input.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let (end, newlines) = scan_raw_string(b, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => {
                let (end, newlines) = scan_quoted(b, i + 1, b'\'');
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                let (end, newlines) = scan_quoted(b, i + 1, b'"');
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'"' => {
                let (end, newlines) = scan_quoted(b, i, b'"');
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                });
                line += newlines;
                i = end;
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident
                // not closed by another `'` (so `'a'` is a char but
                // `'a` and `'static` are lifetimes).
                if looks_like_lifetime(b, i) {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text: src[i..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let (end, newlines) = scan_quoted(b, i, b'\'');
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: src[i..end].to_string(),
                        line,
                    });
                    line += newlines;
                    i = end;
                }
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                // Numbers may contain `_`, `.`, exponents and type
                // suffixes; a greedy alphanumeric-and-dot scan is fine
                // for linting (we never interpret the value). Method
                // calls on literals (`1.max(2)`) keep working because a
                // `.` followed by an identifier start stops the scan.
                let mut j = i + 1;
                while j < b.len() {
                    let d = b[j];
                    if d == b'.' {
                        if b.get(j + 1).is_some_and(|&n| is_ident_start(n)) {
                            break;
                        }
                        j += 1;
                    } else if d == b'_' || d.is_ascii_alphanumeric() {
                        j += 1;
                    } else if (d == b'+' || d == b'-')
                        && matches!(b[j - 1], b'e' | b'E')
                        && b[i..j].iter().any(|x| x.is_ascii_digit())
                    {
                        j += 1; // exponent sign
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Number,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// `r"`, `r#"`, `br"`, `br#"` ... at `i`?
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Scans a raw string starting at `i`; returns (end index, newline
/// count).
fn scan_raw_string(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut fence = 0usize;
    while b.get(j) == Some(&b'#') {
        fence += 1;
        j += 1;
    }
    j += 1; // opening quote
    let mut newlines = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            newlines += 1;
            j += 1;
        } else if b[j] == b'"'
            && b[j + 1..]
                .iter()
                .take(fence)
                .filter(|&&c| c == b'#')
                .count()
                == fence
        {
            return (j + 1 + fence, newlines);
        } else {
            j += 1;
        }
    }
    (j, newlines)
}

/// Scans a quoted literal (`"` or `'`) starting at the quote index;
/// returns (index one past the closing quote, newline count).
fn scan_quoted(b: &[u8], i: usize, quote: u8) -> (usize, u32) {
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                newlines += 1;
                j += 1;
            }
            c if c == quote => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// A lifetime is `'` followed by an identifier that is *not* closed by
/// a `'` immediately after one ident char (which would be a char
/// literal like `'a'`).
fn looks_like_lifetime(b: &[u8], i: usize) -> bool {
    let Some(&first) = b.get(i + 1) else {
        return false;
    };
    if !is_ident_start(first) {
        return false;
    }
    let mut j = i + 2;
    while j < b.len() && is_ident_continue(b[j]) {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let l = lex("// HashMap in a comment\nlet x = 1; /* SystemTime */");
        assert!(l
            .tokens
            .iter()
            .all(|t| t.text != "HashMap" && t.text != "SystemTime"));
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}");
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn strings_swallow_keywords() {
        assert_eq!(
            idents(r#"let s = "Instant::now inside string";"#),
            vec!["let", "s"]
        );
        assert_eq!(idents(r##"let s = r#"thread_rng"#;"##), vec!["let", "s"]);
        assert_eq!(
            idents("let c = 'x'; let l: &'static str = \"\";"),
            vec!["let", "c", "let", "l", "str"]
        );
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'b' }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'b'");
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 1;";
        let l = lex(src);
        let b = l.tokens.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn numbers_with_method_calls() {
        let l = lex("let x = 1.0e-3f64; let y = 1.max(2);");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Number && t.text == "1.0e-3f64"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == "max"));
    }
}
