//! Inline allowlist markers.
//!
//! A finding can be suppressed at the offending line (or the line
//! directly above it) with a comment of the form
//! `lint:allow(D001): <reason>` at the start of the comment — e.g.
//! `// lint:allow(D002): progress reporting for humans, not simulated`.
//! The reason is mandatory; a marker without one is itself a finding
//! (D000), as is a marker that suppresses nothing — markers must not
//! outlive the code they excuse.

use crate::lexer::Comment;
use crate::report::Finding;

/// One parsed marker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowMarker {
    /// Rule ids the marker suppresses, e.g. `["D001"]`.
    pub rules: Vec<String>,
    /// Line the marker comment starts on.
    pub line: u32,
}

/// Scan result: well-formed markers plus D000 findings for malformed
/// ones.
#[derive(Debug, Default)]
pub struct MarkerScan {
    pub markers: Vec<AllowMarker>,
    pub malformed: Vec<(u32, String)>,
}

/// Extracts markers from a file's comments. Only comments whose text
/// *begins* with `lint:allow(` (after the `//`/`/*` introducer and
/// whitespace) count — prose merely mentioning the syntax does not.
#[must_use]
pub fn scan_markers(comments: &[Comment]) -> MarkerScan {
    let mut out = MarkerScan::default();
    for c in comments {
        let body = c
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim_start();
        let Some(rest) = body.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.malformed
                .push((c.line, "unclosed `lint:allow(`".into()));
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let bad_id = rules.iter().find(|r| !is_rule_id(r));
        if rules.is_empty() || bad_id.is_some() {
            out.malformed.push((
                c.line,
                format!("allow marker names no valid rule id: `{}`", &rest[..close]),
            ));
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            out.malformed.push((
                c.line,
                "allow marker is missing its mandatory `: <reason>`".into(),
            ));
            continue;
        }
        out.markers.push(AllowMarker {
            rules,
            line: c.line,
        });
    }
    out
}

fn is_rule_id(s: &str) -> bool {
    s.len() == 4 && s.starts_with('D') && s[1..].bytes().all(|b| b.is_ascii_digit())
}

/// Applies markers to a file's findings: suppressed findings are
/// removed; malformed and unused markers come back as D000 findings.
#[must_use]
pub fn apply_markers(path: &str, findings: Vec<Finding>, scan: &MarkerScan) -> Vec<Finding> {
    let mut used = vec![false; scan.markers.len()];
    let mut kept: Vec<Finding> = Vec::new();
    for f in findings {
        let suppressed = scan.markers.iter().enumerate().any(|(i, m)| {
            let hit =
                m.rules.iter().any(|r| r == f.rule) && (f.line == m.line || f.line == m.line + 1);
            if hit {
                used[i] = true;
            }
            hit
        });
        if !suppressed {
            kept.push(f);
        }
    }
    for (i, m) in scan.markers.iter().enumerate() {
        if !used[i] {
            kept.push(Finding {
                rule: "D000",
                path: path.to_string(),
                line: m.line,
                message: format!(
                    "unused allow marker for {}: no matching finding on this or the next line",
                    m.rules.join(", ")
                ),
            });
        }
    }
    for (line, msg) in &scan.malformed {
        kept.push(Finding {
            rule: "D000",
            path: path.to_string(),
            line: *line,
            message: msg.clone(),
        });
    }
    kept.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_well_formed_markers() {
        let l = lex("// lint:allow(D001): keys are monotone seqs\nlet x = 1;");
        let s = scan_markers(&l.comments);
        assert_eq!(s.markers.len(), 1);
        assert_eq!(s.markers[0].rules, vec!["D001"]);
        assert!(s.malformed.is_empty());
    }

    #[test]
    fn multi_rule_markers() {
        let l = lex("// lint:allow(D002, D004): bench-only harness code");
        let s = scan_markers(&l.comments);
        assert_eq!(s.markers[0].rules, vec!["D002", "D004"]);
    }

    #[test]
    fn reasonless_marker_is_malformed() {
        let l = lex("// lint:allow(D001)\nlet x = 1;");
        let s = scan_markers(&l.comments);
        assert!(s.markers.is_empty());
        assert_eq!(s.malformed.len(), 1);
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_a_marker() {
        let l = lex("// markers look like `lint:allow(D001): reason`\nlet x = 1;");
        let s = scan_markers(&l.comments);
        assert!(s.markers.is_empty());
        assert!(s.malformed.is_empty());
    }

    #[test]
    fn suppression_and_unused_detection() {
        let f = vec![Finding {
            rule: "D002",
            path: "x.rs".into(),
            line: 5,
            message: "wall clock".into(),
        }];
        let scan = MarkerScan {
            markers: vec![
                AllowMarker {
                    rules: vec!["D002".into()],
                    line: 4,
                },
                AllowMarker {
                    rules: vec!["D003".into()],
                    line: 9,
                },
            ],
            malformed: vec![],
        };
        let out = apply_markers("x.rs", f, &scan);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "D000");
        assert_eq!(out[0].line, 9);
    }
}
