//! Conservative intra-procedural control-flow graphs.
//!
//! Lowers a parsed statement tree ([`crate::parse`]) into a small graph
//! of *flat* nodes — each carrying one statement's token range — with
//! successor edges for branches, loops, early returns and `?`. The
//! graph over-approximates feasible paths on purpose:
//!
//! * every `if` has a fall-through edge even when a branch diverges
//!   dynamically (conditions are never evaluated);
//! * every loop has a zero-iteration exit edge, including bare `loop`
//!   (an infinite loop that never breaks just gains an impossible
//!   path);
//! * any statement containing `?` gains an extra edge to `EXIT`;
//! * `match` is treated as exhaustive over its written arms.
//!
//! Extra paths can only make the dataflow rules *more* suspicious of a
//! function, never less, which is the right failure direction for a
//! resource-discipline audit paired with inline `lint:allow` markers.

use crate::lexer::{Token, TokenKind};
use crate::parse::{Func, Stmt};

/// Node id of the synthetic exit node (always present, always 0).
pub const EXIT: u32 = 0;

/// One CFG node.
#[derive(Debug)]
pub struct Node {
    pub kind: NodeKind,
    /// Successor node ids.
    pub succs: Vec<u32>,
}

#[derive(Debug)]
pub enum NodeKind {
    /// The function's single exit (returns, `?` propagation and normal
    /// fall-off all converge here).
    Exit,
    /// A join/entry point carrying no tokens.
    Nop,
    /// One flat statement: `[lo, hi)` token range, source line, and the
    /// `let`-binding name when the statement is a tracked `let`.
    Flat {
        lo: usize,
        hi: usize,
        line: u32,
        def: Option<String>,
    },
}

/// A function's control-flow graph. Node 0 is [`EXIT`]; `entry` is the
/// first real node.
#[derive(Debug)]
pub struct Cfg {
    pub nodes: Vec<Node>,
    pub entry: u32,
}

impl Cfg {
    fn add(&mut self, kind: NodeKind) -> u32 {
        self.nodes.push(Node {
            kind,
            succs: Vec::new(),
        });
        (self.nodes.len() - 1) as u32
    }

    fn edge(&mut self, from: u32, to: u32) {
        let succs = &mut self.nodes[from as usize].succs;
        if !succs.contains(&to) {
            succs.push(to);
        }
    }
}

/// Loop context for `break`/`continue` lowering.
#[derive(Clone, Copy)]
struct LoopCtx {
    head: u32,
    after: u32,
}

/// Builds the CFG for one function. `tokens` is the *file's* token
/// slice the statement ranges index into.
#[must_use]
pub fn build(func: &Func, tokens: &[Token]) -> Cfg {
    let mut cfg = Cfg {
        nodes: Vec::new(),
        entry: 0,
    };
    let exit = cfg.add(NodeKind::Exit);
    debug_assert_eq!(exit, EXIT);
    let entry = cfg.add(NodeKind::Nop);
    cfg.entry = entry;
    let end = lower_seq(&mut cfg, tokens, &func.body, entry, None);
    if let Some(end) = end {
        cfg.edge(end, EXIT);
    }
    cfg
}

/// Lowers a statement sequence starting from node `cur`. Returns the
/// node control falls out of, or `None` when every path diverges
/// (returned/broke) before the end of the sequence — statements after a
/// divergence are dead and skipped.
fn lower_seq(
    cfg: &mut Cfg,
    tokens: &[Token],
    stmts: &[Stmt],
    mut cur: u32,
    in_loop: Option<LoopCtx>,
) -> Option<u32> {
    for s in stmts {
        match s {
            Stmt::Let { name, lo, hi, line } => {
                let n = cfg.add(NodeKind::Flat {
                    lo: *lo,
                    hi: *hi,
                    line: *line,
                    def: name.clone(),
                });
                cfg.edge(cur, n);
                if range_has_try(tokens, *lo, *hi) {
                    cfg.edge(n, EXIT);
                }
                cur = n;
            }
            Stmt::Expr { lo, hi, line } => {
                let n = cfg.add(NodeKind::Flat {
                    lo: *lo,
                    hi: *hi,
                    line: *line,
                    def: None,
                });
                cfg.edge(cur, n);
                if range_has_try(tokens, *lo, *hi) {
                    cfg.edge(n, EXIT);
                }
                cur = n;
            }
            Stmt::Return { lo, hi, line } => {
                let n = cfg.add(NodeKind::Flat {
                    lo: *lo,
                    hi: *hi,
                    line: *line,
                    def: None,
                });
                cfg.edge(cur, n);
                cfg.edge(n, EXIT);
                return None;
            }
            Stmt::Break { .. } => {
                if let Some(ctx) = in_loop {
                    cfg.edge(cur, ctx.after);
                } else {
                    cfg.edge(cur, EXIT); // malformed input; stay total
                }
                return None;
            }
            Stmt::Continue { .. } => {
                if let Some(ctx) = in_loop {
                    cfg.edge(cur, ctx.head);
                } else {
                    cfg.edge(cur, EXIT);
                }
                return None;
            }
            Stmt::If {
                cond,
                then_b,
                else_b,
                line,
            } => {
                let c = cfg.add(NodeKind::Flat {
                    lo: cond.0,
                    hi: cond.1,
                    line: *line,
                    def: None,
                });
                cfg.edge(cur, c);
                if range_has_try(tokens, cond.0, cond.1) {
                    cfg.edge(c, EXIT);
                }
                let join = cfg.add(NodeKind::Nop);
                let mut reaches_join = false;
                if let Some(end) = lower_seq(cfg, tokens, then_b, c, in_loop) {
                    cfg.edge(end, join);
                    reaches_join = true;
                }
                if else_b.is_empty() {
                    cfg.edge(c, join); // condition false, no else
                    reaches_join = true;
                } else if let Some(end) = lower_seq(cfg, tokens, else_b, c, in_loop) {
                    cfg.edge(end, join);
                    reaches_join = true;
                }
                if !reaches_join {
                    return None; // both branches diverge
                }
                cur = join;
            }
            Stmt::Loop { head, body, line } => {
                let h = cfg.add(NodeKind::Flat {
                    lo: head.0,
                    hi: head.1,
                    line: *line,
                    def: None,
                });
                cfg.edge(cur, h);
                if range_has_try(tokens, head.0, head.1) {
                    cfg.edge(h, EXIT);
                }
                let after = cfg.add(NodeKind::Nop);
                // Zero-iteration exit (also given to bare `loop`: an
                // impossible path is harmless, a missed one is not).
                cfg.edge(h, after);
                let ctx = LoopCtx { head: h, after };
                if let Some(end) = lower_seq(cfg, tokens, body, h, Some(ctx)) {
                    cfg.edge(end, h); // back edge
                }
                cur = after;
            }
            Stmt::Match { head, arms, line } => {
                let m = cfg.add(NodeKind::Flat {
                    lo: head.0,
                    hi: head.1,
                    line: *line,
                    def: None,
                });
                cfg.edge(cur, m);
                if range_has_try(tokens, head.0, head.1) {
                    cfg.edge(m, EXIT);
                }
                let join = cfg.add(NodeKind::Nop);
                let mut reaches_join = false;
                if arms.is_empty() {
                    cfg.edge(m, join);
                    reaches_join = true;
                }
                for arm in arms {
                    // The arm pattern can bind and its guard can read,
                    // so give it its own node on the arm's path.
                    let p = cfg.add(NodeKind::Flat {
                        lo: arm.pat.0,
                        hi: arm.pat.1,
                        line: arm.line,
                        def: None,
                    });
                    cfg.edge(m, p);
                    if let Some(end) = lower_seq(cfg, tokens, &arm.body, p, in_loop) {
                        cfg.edge(end, join);
                        reaches_join = true;
                    }
                }
                if !reaches_join {
                    return None;
                }
                cur = join;
            }
            Stmt::Block { body, .. } => match lower_seq(cfg, tokens, body, cur, in_loop) {
                Some(end) => cur = end,
                None => return None,
            },
        }
    }
    Some(cur)
}

/// Does the token range contain a `?` try operator? (Over-approximate:
/// any `?` punct counts; in expression position that is always `?`.)
fn range_has_try(tokens: &[Token], lo: usize, hi: usize) -> bool {
    tokens[lo.min(tokens.len())..hi.min(tokens.len())]
        .iter()
        .any(|t| t.kind == TokenKind::Punct && t.text == "?")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_functions;

    fn cfg_of(src: &str) -> (Cfg, Vec<Token>) {
        let tokens = lex(src).tokens;
        let funcs = parse_functions(&tokens);
        assert_eq!(funcs.len(), 1, "{funcs:?}");
        let cfg = build(&funcs[0], &tokens);
        (cfg, tokens)
    }

    /// Every node must reach EXIT (totality of the lowering).
    fn all_reach_exit(cfg: &Cfg) -> bool {
        (0..cfg.nodes.len()).all(|start| {
            let mut seen = vec![false; cfg.nodes.len()];
            let mut stack = vec![start as u32];
            while let Some(n) = stack.pop() {
                if n == EXIT {
                    return true;
                }
                if std::mem::replace(&mut seen[n as usize], true) {
                    continue;
                }
                stack.extend(&cfg.nodes[n as usize].succs);
            }
            false
        })
    }

    #[test]
    fn straight_line_chains_to_exit() {
        let (cfg, _) = cfg_of("fn f() { a(); b(); c(); }");
        assert!(all_reach_exit(&cfg));
        // entry -> a -> b -> c -> exit
        let flats = cfg
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Flat { .. }))
            .count();
        assert_eq!(flats, 3);
    }

    #[test]
    fn if_without_else_has_fallthrough() {
        let (cfg, _) = cfg_of("fn f(c: bool) { let h = go(); if c { use_it(h); } }");
        assert!(all_reach_exit(&cfg));
        // The cond node must have two successors: then-branch and join.
        let cond = cfg
            .nodes
            .iter()
            .find(|n| matches!(&n.kind, NodeKind::Flat { def: None, lo, .. } if *lo > 0))
            .unwrap();
        assert!(cond.succs.len() >= 2, "{cond:?}");
    }

    #[test]
    fn returns_and_breaks_divert() {
        let (cfg, _) = cfg_of(
            "fn f(c: bool) -> u32 {
                loop { if c { break; } return 1; }
                2
            }",
        );
        assert!(all_reach_exit(&cfg));
    }

    #[test]
    fn try_operator_adds_exit_edge() {
        let (cfg, _) = cfg_of("fn f() -> Result<(), E> { let x = open()?; finish(x); Ok(()) }");
        let try_node = cfg
            .nodes
            .iter()
            .find(|n| matches!(&n.kind, NodeKind::Flat { def: Some(d), .. } if d == "x"))
            .unwrap();
        assert!(try_node.succs.contains(&EXIT), "{try_node:?}");
        assert_eq!(try_node.succs.len(), 2);
    }

    #[test]
    fn match_arms_branch_and_join() {
        let (cfg, _) = cfg_of(
            "fn f(x: Option<u32>) -> u32 {
                match x { Some(v) => v, None => return 0, }
            }",
        );
        assert!(all_reach_exit(&cfg));
    }
}
