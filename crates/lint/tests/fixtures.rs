//! Fixture suite: one known-bad and one known-good file per rule, the
//! allow-marker round trip, and the end-to-end guarantee that the
//! shipped workspace is lint-clean (which also proves the walker skips
//! this `fixtures/` directory — the bad fixtures would fail it
//! otherwise).

use std::fs;
use std::path::{Path, PathBuf};

use seaweed_lint::report::Finding;
use seaweed_lint::{lint_source, load_config, run_workspace};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints a fixture. All fixtures are audited as deterministic-crate
/// files; `is_root` only matters for the D006 pair.
fn lint_fixture(name: &str, is_root: bool) -> Vec<Finding> {
    let src =
        fs::read_to_string(fixture_dir().join(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
    lint_source(name, true, is_root, &src)
}

/// The bad fixture trips `rule` (and only it) at least `min` times; the
/// good twin is completely clean.
fn assert_pair(rule: &str, is_root: bool, min: usize) {
    let lower = rule.to_lowercase();
    let bad = lint_fixture(&format!("{lower}_bad.rs"), is_root);
    assert!(
        bad.len() >= min && bad.iter().all(|f| f.rule == rule),
        "{rule} bad fixture: expected >= {min} findings, all {rule}; got {bad:#?}"
    );
    let good = lint_fixture(&format!("{lower}_good.rs"), is_root);
    assert!(good.is_empty(), "{rule} good fixture not clean: {good:#?}");
}

#[test]
fn d001_hash_iteration_pair() {
    assert_pair("D001", false, 2);
}

#[test]
fn d002_wall_clock_pair() {
    assert_pair("D002", false, 2);
}

#[test]
fn d003_ambient_randomness_pair() {
    assert_pair("D003", false, 3);
}

#[test]
fn d004_threads_pair() {
    assert_pair("D004", false, 2);
}

#[test]
fn d005_float_sort_pair() {
    assert_pair("D005", false, 2);
}

#[test]
fn d006_forbid_unsafe_pair() {
    assert_pair("D006", true, 1);
}

#[test]
fn d007_payload_clone_pair() {
    assert_pair("D007", false, 2);
}

#[test]
fn allow_markers_round_trip() {
    // Justified markers (next-line and same-line) suppress everything.
    let f = lint_fixture("allow_roundtrip.rs", false);
    assert!(f.is_empty(), "markers failed to suppress: {f:#?}");

    // A marker that suppresses nothing is itself a finding.
    let f = lint_fixture("allow_unused.rs", false);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "D000");
    assert!(f[0].message.contains("unused"), "{}", f[0].message);

    // A reason-less marker is malformed AND does not suppress.
    let f = lint_fixture("allow_malformed.rs", false);
    let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
    assert!(
        rules.contains(&"D000") && rules.contains(&"D002"),
        "expected D000 + surviving D002, got {f:#?}"
    );
}

#[test]
fn shipped_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let cfg = load_config(root).expect("lint.toml parses");
    let res = run_workspace(root, &cfg).expect("workspace audit runs");
    assert!(
        res.findings.is_empty(),
        "workspace has unbaselined findings:\n{}",
        res.findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walker must have skipped this fixtures directory: had it been
    // audited, every *_bad.rs above would have failed the assertion.
    assert!(res.files > 0 && res.crates > 0);
}
