//! Fixture suite: one known-bad and one known-good file per rule, the
//! allow-marker round trip, and the end-to-end guarantee that the
//! shipped workspace is lint-clean (which also proves the walker skips
//! this `fixtures/` directory — the bad fixtures would fail it
//! otherwise).

use std::fs;
use std::path::{Path, PathBuf};

use seaweed_lint::config::{RuleConfig, StreamDecl};
use seaweed_lint::report::Finding;
use seaweed_lint::{lint_source, lint_source_with, load_config, run_workspace};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints a fixture. All fixtures are audited as deterministic-crate
/// files; `is_root` only matters for the D006 pair.
fn lint_fixture(name: &str, is_root: bool) -> Vec<Finding> {
    let src =
        fs::read_to_string(fixture_dir().join(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
    lint_source(name, true, is_root, &src)
}

/// The bad fixture trips `rule` (and only it) at least `min` times; the
/// good twin is completely clean.
fn assert_pair(rule: &str, is_root: bool, min: usize) {
    let lower = rule.to_lowercase();
    let bad = lint_fixture(&format!("{lower}_bad.rs"), is_root);
    assert!(
        bad.len() >= min && bad.iter().all(|f| f.rule == rule),
        "{rule} bad fixture: expected >= {min} findings, all {rule}; got {bad:#?}"
    );
    let good = lint_fixture(&format!("{lower}_good.rs"), is_root);
    assert!(good.is_empty(), "{rule} good fixture not clean: {good:#?}");
}

#[test]
fn d001_hash_iteration_pair() {
    assert_pair("D001", false, 2);
}

#[test]
fn d002_wall_clock_pair() {
    assert_pair("D002", false, 2);
}

#[test]
fn d003_ambient_randomness_pair() {
    assert_pair("D003", false, 3);
}

#[test]
fn d004_threads_pair() {
    assert_pair("D004", false, 2);
}

#[test]
fn d005_float_sort_pair() {
    assert_pair("D005", false, 2);
}

#[test]
fn d006_forbid_unsafe_pair() {
    assert_pair("D006", true, 1);
}

#[test]
fn d007_payload_clone_pair() {
    assert_pair("D007", false, 2);
}

#[test]
fn d008_timer_discipline_pair() {
    assert_pair("D008", false, 2);
}

#[test]
fn d009_stale_index_pair() {
    assert_pair("D009", false, 2);
}

/// Lints a fixture with an explicit rule registry (D010/D011 are off
/// under the default empty registries the other pairs use).
fn lint_fixture_with(name: &str, rules: &RuleConfig) -> Vec<Finding> {
    let src =
        fs::read_to_string(fixture_dir().join(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
    lint_source_with(name, true, false, &src, rules)
}

#[test]
fn d010_rng_stream_pair() {
    let rules = RuleConfig {
        streams: vec![StreamDecl {
            name: "topology".into(),
            pattern: "TOPOLOGY_STREAM".into(),
            path: "d010_good.rs".into(),
            line: 0,
        }],
        ..RuleConfig::default()
    };
    let bad = lint_fixture_with("d010_bad.rs", &rules);
    assert!(
        bad.len() >= 2 && bad.iter().all(|f| f.rule == "D010"),
        "{bad:#?}"
    );
    let good = lint_fixture_with("d010_good.rs", &rules);
    assert!(good.is_empty(), "{good:#?}");
}

#[test]
fn d011_metric_name_pair() {
    let rules = RuleConfig {
        metric_names: vec!["app.queries.completed".into(), "sim.app.give_up".into()],
        ..RuleConfig::default()
    };
    let bad = lint_fixture_with("d011_bad.rs", &rules);
    assert!(
        bad.len() >= 2 && bad.iter().all(|f| f.rule == "D011"),
        "{bad:#?}"
    );
    let good = lint_fixture_with("d011_good.rs", &rules);
    assert!(good.is_empty(), "{good:#?}");
}

/// The exact stale-handle shape PR 8 fixed (rearm before lookup, miss
/// arm drops the armed handle) must be caught by D008 — the bug class
/// this analyzer exists for.
#[test]
fn d008_catches_the_pr8_rearm_bug_shape() {
    let f = lint_fixture("d008_pr8_rearm.rs", false);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "D008");
    assert!(
        f[0].message.contains("timeout") && f[0].message.contains("on_timeout_rearm"),
        "{}",
        f[0].message
    );
}

/// Robustness: the parser, CFG lowering and both dataflow passes run to
/// completion over every `.rs` file in the workspace — including test
/// and bench trees the audit itself skips — without panicking or
/// hanging. (The fixtures directory is included on purpose: the
/// known-bad files are exactly the hostile inputs.)
#[test]
fn parser_and_dataflow_terminate_on_every_workspace_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let mut stack = vec![root.join("crates")];
    let mut files = 0usize;
    let mut funcs_total = 0usize;
    let rules = RuleConfig::default();
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                let Ok(src) = fs::read_to_string(&p) else {
                    continue;
                };
                files += 1;
                let tokens = seaweed_lint::lexer::lex(&src).tokens;
                let funcs = seaweed_lint::parse::parse_functions(&tokens);
                funcs_total += funcs.len();
                for f in &funcs {
                    let cfg = seaweed_lint::cfg::build(f, &tokens);
                    let _ = seaweed_lint::dataflow::timer_leaks(
                        &cfg,
                        &tokens,
                        &rules.timer_acquire,
                        &rules.timer_detached,
                    );
                    let _ = seaweed_lint::dataflow::stale_index_uses(
                        &cfg,
                        &tokens,
                        &rules.index_acquire,
                        &rules.index_invalidate,
                    );
                }
            }
        }
    }
    assert!(files > 100, "walked only {files} files");
    assert!(funcs_total > 500, "parsed only {funcs_total} functions");
}

#[test]
fn allow_markers_round_trip() {
    // Justified markers (next-line and same-line) suppress everything.
    let f = lint_fixture("allow_roundtrip.rs", false);
    assert!(f.is_empty(), "markers failed to suppress: {f:#?}");

    // A marker that suppresses nothing is itself a finding.
    let f = lint_fixture("allow_unused.rs", false);
    assert_eq!(f.len(), 1, "{f:#?}");
    assert_eq!(f[0].rule, "D000");
    assert!(f[0].message.contains("unused"), "{}", f[0].message);

    // A reason-less marker is malformed AND does not suppress.
    let f = lint_fixture("allow_malformed.rs", false);
    let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
    assert!(
        rules.contains(&"D000") && rules.contains(&"D002"),
        "expected D000 + surviving D002, got {f:#?}"
    );
}

#[test]
fn shipped_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let cfg = load_config(root).expect("lint.toml parses");
    let res = run_workspace(root, &cfg).expect("workspace audit runs");
    assert!(
        res.findings.is_empty(),
        "workspace has unbaselined findings:\n{}",
        res.findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walker must have skipped this fixtures directory: had it been
    // audited, every *_bad.rs above would have failed the assertion.
    assert!(res.files > 0 && res.crates > 0);
}
