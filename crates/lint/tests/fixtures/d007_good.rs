//! D007 fixture (clean): one shared allocation serves the whole fan-out,
//! and clones of things that are not message payloads stay legal.

fn push_to_replicas(eng: &mut Engine, members: &[NodeIdx], payload: MetaPush) {
    eng.multicast(OWNER, members, payload, 512, TrafficClass::Maintenance);
}

fn duplicate_handle(rc: &Rc<Msg>) -> Rc<Msg> {
    Rc::clone(rc)
}

fn copy_config(config: &SimConfig) -> SimConfig {
    config.clone()
}
