//! D003 fixture: ambient (OS-seeded) randomness.

fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}

fn pick() -> u32 {
    rand::random::<u32>()
}

fn fresh() -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::from_entropy()
}
