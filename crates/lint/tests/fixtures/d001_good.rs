//! D001 fixture (clean): ordered-map iteration is fine, and hash maps
//! are fine for point lookups — only their iteration order is unstable.

use std::collections::{BTreeMap, HashMap};

fn total(counts: &BTreeMap<String, u64>) -> u64 {
    counts.values().sum()
}

fn lookup(index: &HashMap<String, u64>, key: &str) -> u64 {
    index.get(key).copied().unwrap_or(0)
}
