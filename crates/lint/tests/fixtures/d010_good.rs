//! D010 twin: the one file `TOPOLOGY_STREAM` is declared for mixes it
//! into every seed.

const TOPOLOGY_STREAM: u64 = 0x7090_1097_5140;

fn seed_topology(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ TOPOLOGY_STREAM)
}

fn seed_per_node(seed: u64, n: NodeIdx) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ TOPOLOGY_STREAM ^ u64::from(n.0))
}
