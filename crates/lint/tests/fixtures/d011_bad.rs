//! D011 fixture: metric/trace names not in the registry (audited with
//! a registry declaring only `app.queries.completed` and
//! `sim.app.give_up`).

impl App {
    fn report(&mut self, eng: &mut Engine, n: NodeIdx) {
        eng.set_counter(n, "app.queries.complete", self.completed);
        eng.record_app_event(n, "sim.app.giveup", 1);
    }
}
