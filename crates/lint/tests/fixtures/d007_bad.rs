//! D007 fixture: per-destination clones of an engine message payload —
//! the allocation pattern the shared-payload envelope exists to remove.

fn push_to_replicas(eng: &mut Engine, members: &[NodeIdx], payload: MetaPush) {
    for &to in members {
        eng.send(OWNER, to, payload.clone(), 512, TrafficClass::Maintenance);
    }
}

fn duplicate_for_children(out: &mut Vec<(NodeIdx, Msg)>, children: &[NodeIdx], payload: Msg) {
    for &child in children {
        out.push((child, payload.clone()));
    }
}
