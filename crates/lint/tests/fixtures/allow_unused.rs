//! Marker fixture: the allow below suppresses nothing and must be
//! reported (D000) so dead exemptions cannot accumulate.

// lint:allow(D002): nothing on the next line reads the clock
fn clean() -> u64 {
    7
}
