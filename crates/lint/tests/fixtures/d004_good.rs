//! D004 fixture (clean): sequential sweep, no concurrency primitives.

fn fan_out(seeds: &[u64]) -> Vec<u64> {
    seeds.iter().map(|s| s.wrapping_mul(2)).collect()
}
