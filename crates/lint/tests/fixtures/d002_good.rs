//! D002 fixture (clean): simulated components take the clock as data.

fn deadline(now_micros: u64, timeout_micros: u64) -> u64 {
    now_micros.saturating_add(timeout_micros)
}
