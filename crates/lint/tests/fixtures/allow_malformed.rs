//! Marker fixture: a reason-less allow is malformed — it must be
//! reported (D000) and must NOT suppress the finding beneath it.

// lint:allow(D002)
fn elapsed_ms() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_millis()
}
