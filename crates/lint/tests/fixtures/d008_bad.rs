//! D008 fixture: timer handles that can go out of scope still armed.

impl App {
    // Consumed only when `c` holds: the else path drops an armed timer.
    fn arm_conditionally(&mut self, eng: &mut Engine, n: NodeIdx, c: bool) {
        let h = eng.set_timer(n, self.cfg.period, TAG_REFRESH);
        if c {
            self.refresh = Some(h);
        }
    }

    // An early return walks out over a live handle.
    fn arm_then_bail(&mut self, eng: &mut Engine, n: NodeIdx) {
        let h = self.set_app_timer(eng, n, self.cfg.timeout, TimerAction::Probe { node: n });
        if self.done {
            return;
        }
        self.probe = Some(h);
    }
}
