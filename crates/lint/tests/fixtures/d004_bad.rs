//! D004 fixture: threads and channels outside the sanctioned pool.

fn fan_out() -> u64 {
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    let worker = std::thread::spawn(move || tx.send(1).unwrap());
    worker.join().unwrap();
    rx.recv().unwrap()
}
