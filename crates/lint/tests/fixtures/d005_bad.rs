//! D005 fixture: float sort via `partial_cmp` in a deterministic crate
//! (panics or key-dependent ordering on NaN).

fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

fn rank_unstable(xs: &mut [f64]) {
    xs.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
}
