//! D009 fixture: dense arena indices held across invalidation points.

impl App {
    // The slot is released, then the stale index touches the recycled
    // arena entry.
    fn release_then_touch(&mut self, h: QueryHandle) {
        let s = self.slot_of(h);
        self.release_slot(s);
        self.scan_order[s as usize] = 0;
    }

    // Teardown fns recycle slots too; holding an index across one is
    // the same bug.
    fn teardown_then_touch(&mut self, eng: &mut Engine, n: NodeIdx, h: QueryHandle) {
        let s = self.live_slot(h);
        self.clear_node(eng, n);
        self.per_slot[s as usize] += 1;
    }
}
