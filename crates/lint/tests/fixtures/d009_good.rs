//! D009 twin: indices are used before invalidation, passed *into* the
//! invalidation itself, or re-looked-up afterwards.

impl App {
    fn touch_then_release(&mut self, h: QueryHandle) {
        let s = self.slot_of(h);
        self.scan_order[s as usize] = 0;
        self.release_slot(s);
    }

    fn relookup_after_teardown(&mut self, eng: &mut Engine, n: NodeIdx, h: QueryHandle) {
        let s = self.live_slot(h);
        self.per_slot[s as usize] += 1;
        self.clear_node(eng, n);
        let s = self.live_slot(h);
        self.per_slot[s as usize] += 1;
    }
}
