//! D003 fixture (clean): every RNG derives from an explicit seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn jitter(seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen::<f64>()
}
