//! D008 twin: every armed handle is cancelled, stored, or detached on
//! all paths.

impl App {
    fn arm_and_store(&mut self, eng: &mut Engine, n: NodeIdx, c: bool) {
        let h = eng.set_timer(n, self.cfg.period, TAG_REFRESH);
        if c {
            self.refresh = Some(h);
        } else {
            eng.cancel_timer(h);
        }
    }

    fn bail_disarms(&mut self, eng: &mut Engine, n: NodeIdx) {
        let h = self.set_app_timer(eng, n, self.cfg.timeout, TimerAction::Probe { node: n });
        if self.done {
            self.cancel_app_timer(eng, h);
            return;
        }
        self.probe = Some(h);
    }

    // Fire-and-forget is declared, not accidental: a statement-position
    // arm, an explicit `let _`, or a detached-timer call.
    fn fire_and_forget(&mut self, eng: &mut Engine, n: NodeIdx) {
        eng.set_timer(n, self.cfg.period, TAG_GOSSIP);
        let _ = eng.set_timer(n, self.cfg.period, TAG_TRACE);
        let h = eng.set_detached_timer(n, self.cfg.period, TAG_AUDIT);
    }
}
