//! Marker fixture: every violation carries a justified `lint:allow`,
//! exercising both placements (line above, same line).

fn elapsed_ms() -> u128 {
    // lint:allow(D002): fixture exercises next-line suppression
    let t0 = std::time::Instant::now();
    t0.elapsed().as_millis()
}

fn pick() -> u32 {
    rand::random::<u32>() // lint:allow(D003): fixture exercises same-line suppression
}
