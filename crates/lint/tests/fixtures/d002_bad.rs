//! D002 fixture: wall-clock reads.

fn elapsed_ms() -> u128 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_millis()
}

fn unix_now() -> u64 {
    use std::time::SystemTime;
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap()
        .as_secs()
}
