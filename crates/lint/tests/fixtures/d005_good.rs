//! D005 fixture (clean): `total_cmp` gives floats a total order.

fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}
