//! D011 twin: every emitted name is declared in the registry.

impl App {
    fn report(&mut self, eng: &mut Engine, n: NodeIdx) {
        eng.set_counter(n, "app.queries.completed", self.completed);
        eng.record_app_event(n, "sim.app.give_up", 1);
    }
}
