//! D001 fixture: hash-collection iteration in a deterministic crate,
//! including iteration reached through a `use ... as` alias.

use std::collections::HashMap as Map;

fn keys(index: &Map<u64, u64>) -> Vec<u64> {
    index.keys().copied().collect()
}

fn total(counts: &std::collections::HashMap<String, u64>) -> u64 {
    let mut sum = 0;
    for v in counts.values() {
        sum += v;
    }
    sum
}
