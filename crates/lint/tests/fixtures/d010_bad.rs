//! D010 fixture: RNG seeding outside the stream registry. Audited with
//! a registry that declares `TOPOLOGY_STREAM` for `d010_good.rs`.

fn seed_without_stream(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

fn seed_with_foreign_stream(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ TOPOLOGY_STREAM)
}
