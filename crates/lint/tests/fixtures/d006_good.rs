#![forbid(unsafe_code)]
//! D006 fixture (clean): a compliant crate root.

pub fn noop() {}
