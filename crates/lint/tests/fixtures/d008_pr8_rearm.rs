//! D008 fixture reproducing the PR-8 stale-handle bug shape byte for
//! byte in miniature: a timeout is re-armed *before* the task lookup,
//! and the lookup-miss arm silently drops the armed handle — the timer
//! later fires against a task that no longer exists.

impl App {
    fn on_timeout_rearm(&mut self, eng: &mut Engine, n: NodeIdx, key: TaskKey) {
        let timeout = self.set_app_timer(
            eng,
            n,
            self.cfg.dissem_timeout,
            TimerAction::DissemTimeout { node: n, task: key },
        );
        match self.tasks.get_mut(&key) {
            Some(task) => task.timeout_timer = Some(timeout),
            None => self.stats.internal_drops += 1,
        }
    }
}
