//! Vendored stand-in for the parts of the `proptest` crate this
//! workspace uses, so property tests run without registry access.
//!
//! Scope: random generation of inputs from composable strategies, a
//! `proptest!` macro compatible with the call sites in this repository,
//! assumption-based rejection and deterministic per-case seeding. Not
//! implemented: shrinking (a failing case reports its inputs instead)
//! and persisted failure files.

use std::fmt::Debug;

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's inputs violated a `prop_assume!` — skipped, not failed.
    Reject(String),
    /// A property assertion failed.
    Fail(String),
}

impl TestCaseError {
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types generatable over their full domain via `any::<T>()`.
pub trait Arbitrary: Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_std {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u128>() as $t
            }
        }
    )*};
}
impl_arbitrary_std!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_arbitrary_signed {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u128>() as $t
            }
        }
    )*};
}
impl_arbitrary_signed!(i8, i16, i32, i64, i128, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes.
        let mag = rng.gen::<f64>() * 2e9 - 1e9;
        mag * rng.gen::<f64>()
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types usable as range-strategy bounds.
pub trait RangeSample: Copy + PartialOrd + Debug {
    fn sample(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_range_sample_int {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                if inclusive {
                    rng.gen_range(lo..=hi)
                } else {
                    rng.gen_range(lo..hi)
                }
            }
        }
    )*};
}
impl_range_sample_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl RangeSample for f64 {
    fn sample(rng: &mut TestRng, lo: Self, hi: Self, _inclusive: bool) -> Self {
        assert!(lo < hi, "cannot sample empty f64 range");
        lo + rng.gen::<f64>() * (hi - lo)
    }
}

impl<T: RangeSample> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self.start, self.end, false)
    }
}

impl<T: RangeSample> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// `&str` strategies: the string is a regex-like pattern. Supported
/// syntax — enough for the patterns in this repository — is a sequence
/// of atoms (literal chars or `[...]` classes with ranges) each with an
/// optional `{m}`, `{m,n}`, `*`, `+` or `?` quantifier.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom: a char class or a literal character.
        let class: Vec<(char, char)> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated [ in pattern {pattern:?}"));
            let mut class = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    class.push((chars[j], chars[j + 2]));
                    j += 3;
                } else {
                    class.push((chars[j], chars[j]));
                    j += 1;
                }
            }
            i = close + 1;
            class
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![(c, c)]
        };
        // Parse the quantifier, if any.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("quantifier lower bound"),
                    b.trim().parse::<usize>().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("quantifier count");
                    (n, n)
                }
            }
        } else if i < chars.len() && (chars[i] == '*' || chars[i] == '+' || chars[i] == '?') {
            let q = chars[i];
            i += 1;
            match q {
                '*' => (0, 8),
                '+' => (1, 8),
                _ => (0, 1),
            }
        } else {
            (1, 1)
        };
        let count = rng.gen_range(lo..=hi);
        let weight: u32 = class
            .iter()
            .map(|&(a, b)| (b as u32).saturating_sub(a as u32) + 1)
            .sum();
        for _ in 0..count {
            let mut pick = rng.gen_range(0..weight);
            for &(a, b) in &class {
                let w = (b as u32) - (a as u32) + 1;
                if pick < w {
                    out.push(char::from_u32(a as u32 + pick).expect("valid char"));
                    break;
                }
                pick -= w;
            }
        }
    }
    out
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "empty size range for collection::vec");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::fmt::Debug;

    /// Strategy choosing uniformly from a fixed set of values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Drives one property: runs `f` until `cfg.cases` cases are accepted,
/// with a deterministic seed per (property, attempt).
///
/// `f` returns the rendered inputs plus the case outcome (wrapped in a
/// `catch_unwind` result so panicking cases still report their inputs).
pub fn run_cases<F>(cfg: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> (String, std::thread::Result<TestCaseResult>),
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cfg.cases);
    let base = fnv1a(name.as_bytes())
        ^ std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0u64);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cases.saturating_mul(20).max(1000);
    while accepted < cases {
        assert!(
            attempts < max_attempts,
            "{name}: gave up after {attempts} attempts with only {accepted}/{cases} cases \
             accepted — prop_assume rejects too much"
        );
        let mut rng = TestRng::seed_from_u64(
            base ^ (u64::from(attempts)).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        attempts += 1;
        let (inputs, outcome) = f(&mut rng);
        match outcome {
            Ok(Ok(())) => accepted += 1,
            Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                panic!("{name}: property failed: {msg}\n  inputs: {inputs}")
            }
            Err(payload) => {
                eprintln!("{name}: case panicked\n  inputs: {inputs}");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(
                &__cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || -> $crate::TestCaseResult {
                            $body
                            ::core::result::Result::Ok(())
                        }),
                    );
                    (__inputs, __outcome)
                },
            );
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Mirror of upstream's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = (0u8..8, 0u64..100).generate(&mut rng);
            assert!(v.0 < 8 && v.1 < 100);
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let w = (1u32..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
        }
    }

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = "[a-z]{1,8}".generate(&mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = "[ -~]{0,80}".generate(&mut rng);
            assert!(t.len() <= 80);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)), "{t:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u64..50, v in prop::collection::vec(0i64..10, 1..5)) {
            prop_assume!(x != 13);
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.iter().filter(|&&e| e < 10).count());
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn oneof_and_map_compose(
            y in prop_oneof![
                (0u8..4).prop_map(u32::from),
                (10u8..14).prop_map(u32::from),
            ],
        ) {
            prop_assert!(y < 4 || (10..14).contains(&y));
        }
    }
}
