#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! The Anemone network-monitoring workload (paper §4.1).
//!
//! Anemone [Mortier et al., SIGCOMM MineNet 2005] turns every endsystem
//! into a network monitor: each machine records its own traffic into two
//! tables, `Flow` (one row per active flow per 5-minute measurement
//! interval) and `Packet` (one row per packet). The paper generated its
//! data set by capturing three weeks of inter-LAN traffic for 456 hosts;
//! that trace is unavailable, so this crate synthesizes per-endsystem
//! traffic with the properties the evaluation queries exercise:
//!
//! * a skewed **application/port mix** (HTTP dominating, SMB heavy-tailed,
//!   privileged-port service traffic on servers);
//! * **diurnal activity** for workstations, flat activity for servers;
//! * **heavy-tailed byte counts** per flow (log-normal-ish);
//! * optional gating on the endsystem's availability intervals, so data
//!   volume correlates with uptime exactly as on a real machine.
//!
//! Everything is deterministic per `(seed, endsystem)` and endsystems can
//! be generated one at a time, so experiments at 50k+ endsystems stream —
//! build a fragment, extract its summary and per-query row counts, drop
//! it — mirroring the paper's own pre-computation (§4.3).

pub mod flows;
pub mod queries;

pub use flows::{AnemoneConfig, EndsystemKind};
pub use queries::{
    paper_queries, PaperQuery, QUERY_HTTP_BYTES, QUERY_LARGE_FLOWS, QUERY_PRIV_PACKETS,
    QUERY_SMB_AVG,
};

use seaweed_store::{ColumnDef, DataType, Schema};

/// The `Flow` table schema. Indexed columns (ts, SrcPort, LocalPort,
/// Bytes, App) get histograms in the data summary — five per endsystem,
/// matching the paper's "5 such histograms".
#[must_use]
pub fn flow_schema() -> Schema {
    Schema::new(
        "Flow",
        vec![
            ColumnDef::new("ts", DataType::Int, true),
            ColumnDef::new("IntervalSecs", DataType::Int, false),
            ColumnDef::new("SrcPort", DataType::Int, true),
            ColumnDef::new("DstPort", DataType::Int, false),
            ColumnDef::new("LocalPort", DataType::Int, true),
            ColumnDef::new("Proto", DataType::Str, false),
            ColumnDef::new("App", DataType::Str, true),
            ColumnDef::new("Bytes", DataType::Int, true),
            ColumnDef::new("Packets", DataType::Int, false),
        ],
    )
}

/// The `Packet` table schema (sampled packet records for examples; the
/// evaluation queries all run on `Flow`).
#[must_use]
pub fn packet_schema() -> Schema {
    Schema::new(
        "Packet",
        vec![
            ColumnDef::new("ts", DataType::Int, true),
            ColumnDef::new("SrcPort", DataType::Int, true),
            ColumnDef::new("DstPort", DataType::Int, false),
            ColumnDef::new("Proto", DataType::Str, false),
            ColumnDef::new("Direction", DataType::Str, false),
            ColumnDef::new("SizeBytes", DataType::Int, true),
        ],
    )
}
