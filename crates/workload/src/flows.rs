//! Synthetic per-endsystem traffic generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_store::{Table, Value};
use seaweed_types::{Duration, Time};

use crate::{flow_schema, packet_schema};

/// What kind of machine an endsystem is; shapes its traffic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EndsystemKind {
    /// Interactive desktop: diurnal client traffic.
    Workstation,
    /// Server: flat traffic, listens on privileged ports.
    Server,
}

/// One application in the traffic mix.
#[derive(Clone, Copy, Debug)]
struct AppSpec {
    name: &'static str,
    service_port: u16,
    proto: &'static str,
    /// Relative frequency among flows.
    weight: f64,
    /// Log-normal parameters for bytes per flow record.
    ln_mu: f64,
    ln_sigma: f64,
}

/// Traffic mix loosely modelled on mid-2000s enterprise inter-LAN
/// traffic: web dominates flow counts, SMB dominates bytes.
const APPS: &[AppSpec] = &[
    AppSpec {
        name: "HTTP",
        service_port: 80,
        proto: "TCP",
        weight: 0.42,
        ln_mu: 9.2,
        ln_sigma: 1.6,
    },
    AppSpec {
        name: "HTTPS",
        service_port: 443,
        proto: "TCP",
        weight: 0.13,
        ln_mu: 8.8,
        ln_sigma: 1.4,
    },
    AppSpec {
        name: "SMB",
        service_port: 445,
        proto: "TCP",
        weight: 0.16,
        ln_mu: 11.2,
        ln_sigma: 1.8,
    },
    AppSpec {
        name: "DNS",
        service_port: 53,
        proto: "UDP",
        weight: 0.14,
        ln_mu: 5.6,
        ln_sigma: 0.7,
    },
    AppSpec {
        name: "SMTP",
        service_port: 25,
        proto: "TCP",
        weight: 0.05,
        ln_mu: 8.4,
        ln_sigma: 1.2,
    },
    AppSpec {
        name: "RDP",
        service_port: 3389,
        proto: "TCP",
        weight: 0.04,
        ln_mu: 10.1,
        ln_sigma: 1.3,
    },
    AppSpec {
        name: "LDAP",
        service_port: 389,
        proto: "TCP",
        weight: 0.06,
        ln_mu: 6.9,
        ln_sigma: 0.9,
    },
];

/// Configuration of the Anemone traffic generator.
#[derive(Clone, Debug)]
pub struct AnemoneConfig {
    /// Trace horizon (the paper captured ~3 weeks).
    pub horizon: Duration,
    /// Mean flow records per *active hour* for a workstation.
    pub workstation_flows_per_hour: f64,
    /// Mean flow records per hour for a server (flat over the day).
    pub server_flows_per_hour: f64,
    /// Fraction of endsystems that are servers.
    pub server_fraction: f64,
    /// Flow measurement interval (paper: 5 minutes).
    pub measurement_interval: Duration,
    /// Packets sampled into the Packet table per flow record.
    pub packets_per_flow_sampled: usize,
}

impl Default for AnemoneConfig {
    fn default() -> Self {
        AnemoneConfig {
            horizon: Duration::WEEK * 3,
            workstation_flows_per_hour: 12.0,
            server_flows_per_hour: 30.0,
            server_fraction: 0.08,
            measurement_interval: Duration::from_mins(5),
            packets_per_flow_sampled: 0,
        }
    }
}

impl AnemoneConfig {
    /// Compact config for tests: fewer hours, same shape.
    #[must_use]
    pub fn small() -> Self {
        AnemoneConfig {
            horizon: Duration::from_days(2),
            ..AnemoneConfig::default()
        }
    }

    /// The kind assigned to `node` under `seed` (servers are chosen
    /// deterministically so callers can correlate with other per-node
    /// state).
    #[must_use]
    pub fn kind_of(&self, seed: u64, node: usize) -> EndsystemKind {
        let mut rng = node_rng(seed, node, 0);
        if rng.gen::<f64>() < self.server_fraction {
            EndsystemKind::Server
        } else {
            EndsystemKind::Workstation
        }
    }

    /// Generates the `Flow` fragment for one endsystem. If `up_intervals`
    /// is non-empty, flows are only generated while the endsystem is up.
    #[must_use]
    pub fn generate_flow_table(
        &self,
        seed: u64,
        node: usize,
        up_intervals: &[(Time, Time)],
    ) -> Table {
        let kind = self.kind_of(seed, node);
        let mut rng = node_rng(seed, node, 1);
        let mut table = Table::new(flow_schema());
        let interval_us = self.measurement_interval.as_micros();
        let horizon_us = self.horizon.as_micros();
        let mut t_us = 0u64;
        while t_us < horizon_us {
            let t = Time::from_micros(t_us);
            let active = up_intervals.is_empty()
                || up_intervals.iter().any(|&(up, down)| t >= up && t < down);
            if active {
                let rate_per_hour = self.rate_at(kind, t);
                let mean_per_interval = rate_per_hour * (interval_us as f64 / 3.6e9);
                let n = poisson(&mut rng, mean_per_interval);
                for _ in 0..n {
                    let row = self.gen_flow_row(&mut rng, kind, t);
                    table.insert(row).expect("generated row matches schema");
                }
            }
            t_us += interval_us;
        }
        table
    }

    /// Generates a sampled `Packet` fragment for one endsystem (used by
    /// examples; empty unless `packets_per_flow_sampled > 0`).
    #[must_use]
    pub fn generate_packet_table(
        &self,
        seed: u64,
        node: usize,
        up_intervals: &[(Time, Time)],
    ) -> Table {
        let flows = self.generate_flow_table(seed, node, up_intervals);
        let mut rng = node_rng(seed, node, 2);
        let mut table = Table::new(packet_schema());
        for r in 0..flows.num_rows() {
            for _ in 0..self.packets_per_flow_sampled {
                let ts = flows.get(r, 0);
                let src = flows.get(r, 2);
                let dst = flows.get(r, 3);
                let proto = flows.get(r, 5);
                let dir = if rng.gen::<bool>() { "Rx" } else { "Tx" };
                let size = 40 + (rng.gen::<u32>() % 1460) as i64;
                table
                    .insert(vec![
                        ts,
                        src,
                        dst,
                        proto,
                        Value::from(dir),
                        Value::Int(size),
                    ])
                    .expect("generated row matches schema");
            }
        }
        table
    }

    /// Diurnal activity multiplier: workstations peak during office hours
    /// and go quiet at night and on weekends; servers are flat.
    fn rate_at(&self, kind: EndsystemKind, t: Time) -> f64 {
        match kind {
            EndsystemKind::Server => self.server_flows_per_hour,
            EndsystemKind::Workstation => {
                let hour =
                    t.hour_of_day() as f64 + (t.micros_into_day() % 3_600_000_000) as f64 / 3.6e9;
                let weekday = t.day_of_week() < 5;
                // Smooth bump centred on 13:00 with sigma 3.5h.
                let bump = (-((hour - 13.0) * (hour - 13.0)) / (2.0 * 3.5 * 3.5)).exp();
                let base = 0.08 + 0.92 * bump;
                let day_factor = if weekday { 1.0 } else { 0.18 };
                self.workstation_flows_per_hour * base * day_factor
            }
        }
    }

    fn gen_flow_row(&self, rng: &mut StdRng, kind: EndsystemKind, t: Time) -> Vec<Value> {
        let app = pick_app(rng);
        // Server machines answer on the service port (local privileged
        // port); workstations initiate from ephemeral ports.
        let inbound_service = kind == EndsystemKind::Server && rng.gen::<f64>() < 0.75;
        let ephemeral: i64 = i64::from(rng.gen_range(1024u16..=65_000));
        let (src_port, dst_port, local_port) = if inbound_service {
            // Remote client -> our service: src is their ephemeral port.
            (
                ephemeral,
                i64::from(app.service_port),
                i64::from(app.service_port),
            )
        } else {
            // We are the client: data flows from the remote service port.
            (i64::from(app.service_port), ephemeral, ephemeral)
        };
        let bytes = lognormal(rng, app.ln_mu, app.ln_sigma).min(5e8) as i64;
        let packets = (bytes / 1200 + 1).max(1);
        vec![
            Value::Int(t.as_micros() as i64 / 1_000_000), // seconds since epoch
            Value::Int(self.measurement_interval.as_micros() as i64 / 1_000_000),
            Value::Int(src_port),
            Value::Int(dst_port),
            Value::Int(local_port),
            Value::from(app.proto),
            Value::from(app.name),
            Value::Int(bytes),
            Value::Int(packets),
        ]
    }
}

/// Multiplier folding the per-caller stream id into [`node_rng`] seeds
/// (registered in lint.toml `[[stream]]`).
const FLOWS_STREAM_MIX: u64 = 0x94d0_49bb_1331_11eb;

/// Deterministic per-(seed, node, stream) RNG.
fn node_rng(seed: u64, node: usize, stream: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((node as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(stream.wrapping_mul(FLOWS_STREAM_MIX)),
    )
}

fn pick_app(rng: &mut StdRng) -> &'static AppSpec {
    let total: f64 = APPS.iter().map(|a| a.weight).sum();
    let mut pick = rng.gen::<f64>() * total;
    for app in APPS {
        if pick < app.weight {
            return app;
        }
        pick -= app.weight;
    }
    &APPS[0]
}

/// Poisson sample (Knuth for small means, normal approximation above 30).
fn poisson(rng: &mut StdRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean > 30.0 {
        let g = gauss(rng, mean, mean.sqrt());
        return g.max(0.0).round() as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    gauss(rng, 0.0, 1.0).mul_add(sigma, mu).exp()
}

fn gauss(rng: &mut StdRng, mean: f64, sd: f64) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    mean + sd * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaweed_store::exec::count_matching;
    use seaweed_store::Query;

    fn count(table: &Table, sql: &str) -> u64 {
        let q = Query::parse(sql)
            .unwrap()
            .bind(table.schema(), i64::MAX / 2)
            .unwrap();
        count_matching(&q, table)
    }

    #[test]
    fn generates_rows_matching_schema() {
        let cfg = AnemoneConfig::small();
        let t = cfg.generate_flow_table(1, 0, &[]);
        assert!(t.num_rows() > 50, "too few rows: {}", t.num_rows());
        // Every row satisfies basic sanity.
        assert_eq!(
            count(&t, "SELECT COUNT(*) FROM Flow WHERE Bytes >= 0"),
            t.num_rows() as u64
        );
        assert_eq!(
            count(&t, "SELECT COUNT(*) FROM Flow WHERE Packets >= 1"),
            t.num_rows() as u64
        );
    }

    #[test]
    fn http_dominates_flow_counts() {
        let cfg = AnemoneConfig::small();
        let t = cfg.generate_flow_table(2, 3, &[]);
        let http = count(&t, "SELECT COUNT(*) FROM Flow WHERE App='HTTP'");
        let smtp = count(&t, "SELECT COUNT(*) FROM Flow WHERE App='SMTP'");
        assert!(http > 3 * smtp, "http {http} smtp {smtp}");
        // The paper's headline query has matches: web traffic from port 80.
        assert!(count(&t, "SELECT COUNT(*) FROM Flow WHERE SrcPort=80") > 0);
    }

    #[test]
    fn servers_listen_on_privileged_ports() {
        let mut cfg = AnemoneConfig::small();
        cfg.server_fraction = 1.0;
        let server = cfg.generate_flow_table(5, 1, &[]);
        cfg.server_fraction = 0.0;
        let ws = cfg.generate_flow_table(5, 1, &[]);
        let s_priv = count(&server, "SELECT COUNT(*) FROM Flow WHERE LocalPort < 1024") as f64
            / server.num_rows() as f64;
        let w_priv = count(&ws, "SELECT COUNT(*) FROM Flow WHERE LocalPort < 1024") as f64
            / ws.num_rows() as f64;
        assert!(s_priv > 0.4, "server privileged fraction {s_priv}");
        assert!(w_priv < 0.05, "workstation privileged fraction {w_priv}");
    }

    #[test]
    fn diurnal_activity_for_workstations() {
        let mut cfg = AnemoneConfig::small();
        cfg.server_fraction = 0.0;
        let t = cfg.generate_flow_table(7, 2, &[]);
        // Compare flows in 12:00-15:00 vs 00:00-03:00 on day 0 (a Monday).
        let noon = count(
            &t,
            "SELECT COUNT(*) FROM Flow WHERE ts >= 43200 AND ts < 54000",
        );
        let night = count(&t, "SELECT COUNT(*) FROM Flow WHERE ts >= 0 AND ts < 10800");
        assert!(noon > night * 2, "noon {noon} night {night}");
    }

    #[test]
    fn availability_gating_suppresses_flows() {
        let cfg = AnemoneConfig::small();
        // Only up for the first 6 hours.
        let up = vec![(Time::ZERO, Time::ZERO + Duration::from_hours(6))];
        let t = cfg.generate_flow_table(3, 4, &up);
        let after = count(&t, "SELECT COUNT(*) FROM Flow WHERE ts >= 21600");
        assert_eq!(after, 0);
        assert!(t.num_rows() > 0);
    }

    #[test]
    fn deterministic_per_seed_and_node() {
        let cfg = AnemoneConfig::small();
        let a = cfg.generate_flow_table(9, 5, &[]);
        let b = cfg.generate_flow_table(9, 5, &[]);
        assert_eq!(a.num_rows(), b.num_rows());
        for r in (0..a.num_rows()).step_by(17) {
            for c in 0..a.schema().num_columns() {
                assert_eq!(a.get(r, c), b.get(r, c));
            }
        }
        let c2 = cfg.generate_flow_table(9, 6, &[]);
        assert!(
            a.num_rows() != c2.num_rows() || {
                (0..a.num_rows().min(c2.num_rows())).any(|r| a.get(r, 7) != c2.get(r, 7))
            }
        );
    }

    #[test]
    fn smb_flows_are_heavy() {
        let cfg = AnemoneConfig::small();
        let t = cfg.generate_flow_table(11, 7, &[]);
        let q = |sql: &str| {
            let q = Query::parse(sql).unwrap().bind(t.schema(), 0).unwrap();
            seaweed_store::exec::execute(&q, &t)
                .unwrap()
                .finish()
                .unwrap_or(0.0)
        };
        let smb_avg = q("SELECT AVG(Bytes) FROM Flow WHERE App='SMB'");
        let dns_avg = q("SELECT AVG(Bytes) FROM Flow WHERE App='DNS'");
        assert!(smb_avg > 10.0 * dns_avg, "smb {smb_avg} dns {dns_avg}");
    }

    #[test]
    fn packet_table_sampled() {
        let mut cfg = AnemoneConfig::small();
        cfg.horizon = Duration::from_hours(6);
        cfg.packets_per_flow_sampled = 2;
        let p = cfg.generate_packet_table(1, 0, &[]);
        let f = cfg.generate_flow_table(1, 0, &[]);
        assert_eq!(p.num_rows(), 2 * f.num_rows());
    }
}
