//! The paper's four evaluation queries (Figures 5–8).

/// Figure 5: total web traffic — "the amount of http traffic in the
/// network".
pub const QUERY_HTTP_BYTES: &str = "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80";

/// Figure 6: "the number of flows with significant amounts of traffic".
pub const QUERY_LARGE_FLOWS: &str = "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000";

/// Figure 7: "the average per-host SMB traffic".
pub const QUERY_SMB_AVG: &str = "SELECT AVG(Bytes) FROM Flow WHERE App='SMB'";

/// Figure 8: "the number of packets with privileged port numbers".
pub const QUERY_PRIV_PACKETS: &str = "SELECT SUM(Packets) FROM Flow WHERE LocalPort < 1024";

/// One evaluation query with its paper provenance.
#[derive(Clone, Copy, Debug)]
pub struct PaperQuery {
    /// Which figure the query reproduces.
    pub figure: u32,
    pub sql: &'static str,
    pub label: &'static str,
}

/// All four queries, in figure order.
#[must_use]
pub fn paper_queries() -> [PaperQuery; 4] {
    [
        PaperQuery {
            figure: 5,
            sql: QUERY_HTTP_BYTES,
            label: "SUM(Bytes) SrcPort=80",
        },
        PaperQuery {
            figure: 6,
            sql: QUERY_LARGE_FLOWS,
            label: "COUNT(*) Bytes>20000",
        },
        PaperQuery {
            figure: 7,
            sql: QUERY_SMB_AVG,
            label: "AVG(Bytes) App='SMB'",
        },
        PaperQuery {
            figure: 8,
            sql: QUERY_PRIV_PACKETS,
            label: "SUM(Packets) LocalPort<1024",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_schema;
    use seaweed_store::Query;

    #[test]
    fn all_paper_queries_parse_and_bind() {
        let schema = flow_schema();
        for pq in paper_queries() {
            let q = Query::parse(pq.sql).unwrap_or_else(|e| panic!("{}: {e}", pq.sql));
            q.bind(&schema, 1_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", pq.sql));
        }
    }

    #[test]
    fn queries_have_distinct_ids() {
        use seaweed_types::sha1::id_of;
        let ids: Vec<_> = paper_queries()
            .iter()
            .map(|p| id_of(p.sql.as_bytes()))
            .collect();
        for i in 0..ids.len() {
            for j in 0..i {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }
}
