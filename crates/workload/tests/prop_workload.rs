//! Property-based tests for the Anemone workload generator.

use proptest::prelude::*;
use seaweed_store::exec::count_matching;
use seaweed_store::{DataSummary, Query};
use seaweed_types::{Duration, Time};
use seaweed_workload::{flow_schema, paper_queries, AnemoneConfig};

fn small(hours: u64) -> AnemoneConfig {
    AnemoneConfig {
        horizon: Duration::from_hours(hours),
        ..AnemoneConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated row is schema-valid with sane domains, regardless
    /// of seed/node/gating.
    #[test]
    fn rows_are_sane(seed in 0u64..300, node in 0usize..50, gate_hours in 1u64..24) {
        let cfg = small(24);
        let gate = vec![(Time::ZERO, Time::ZERO + Duration::from_hours(gate_hours))];
        let t = cfg.generate_flow_table(seed, node, &gate);
        let schema = flow_schema();
        prop_assert_eq!(t.schema(), &schema);
        let n = t.num_rows() as u64;
        let check = |sql: &str| {
            let q = Query::parse(sql).unwrap().bind(&schema, 0).unwrap();
            count_matching(&q, &t)
        };
        // Timestamps respect the gate.
        prop_assert_eq!(check(&format!("SELECT COUNT(*) FROM Flow WHERE ts < {}", gate_hours * 3600)), n);
        prop_assert_eq!(check("SELECT COUNT(*) FROM Flow WHERE ts >= 0"), n);
        // Ports are valid; packets positive; bytes non-negative.
        prop_assert_eq!(check("SELECT COUNT(*) FROM Flow WHERE SrcPort >= 1 AND SrcPort <= 65535"), n);
        prop_assert_eq!(check("SELECT COUNT(*) FROM Flow WHERE LocalPort >= 1 AND LocalPort <= 65535"), n);
        prop_assert_eq!(check("SELECT COUNT(*) FROM Flow WHERE Packets >= 1"), n);
        prop_assert_eq!(check("SELECT COUNT(*) FROM Flow WHERE Bytes >= 0"), n);
    }

    /// Generation is a pure function of (seed, node, gate).
    #[test]
    fn generation_is_deterministic(seed in 0u64..300, node in 0usize..50) {
        let cfg = small(12);
        let a = cfg.generate_flow_table(seed, node, &[]);
        let b = cfg.generate_flow_table(seed, node, &[]);
        prop_assert_eq!(a.num_rows(), b.num_rows());
        for r in (0..a.num_rows()).step_by(7) {
            for c in 0..a.schema().num_columns() {
                prop_assert_eq!(a.get(r, c), b.get(r, c));
            }
        }
    }

    /// Summary-based estimates of the paper's queries stay within a few
    /// per cent of exact counts on any fragment (not just the test seeds
    /// used elsewhere).
    #[test]
    fn estimates_track_exact_counts(seed in 0u64..100, node in 0usize..30) {
        let cfg = small(48);
        let t = cfg.generate_flow_table(seed, node, &[]);
        prop_assume!(t.num_rows() >= 200);
        let schema = flow_schema();
        let summary = DataSummary::build(&t);
        for pq in paper_queries() {
            let b = Query::parse(pq.sql).unwrap().bind(&schema, 0).unwrap();
            let exact = count_matching(&b, &t) as f64;
            let est = summary.estimate_rows(&b);
            let err = (est - exact).abs() / t.num_rows() as f64;
            prop_assert!(err < 0.05, "{}: est {est:.1} exact {exact} ({err:.3})", pq.sql);
        }
    }
}
