//! Property-based tests for histograms, aggregates and the SQL parser.

use proptest::prelude::*;
use seaweed_store::histogram::{NumericHistogram, StringHistogram};
use seaweed_store::{AggFunc, Aggregate, CmpOp};

fn values_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-1e6f64..1e6).prop_map(|v| v.round()), 1..400)
}

proptest! {
    /// Estimates never exceed the total row count and are never negative,
    /// for every operator and probe.
    #[test]
    fn histogram_estimates_bounded(values in values_strategy(), probe in -2e6f64..2e6, buckets in 1usize..64) {
        let h = NumericHistogram::build(&values, buckets);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let est = h.estimate(op, probe);
            prop_assert!(est >= -1e-9, "{op:?} negative: {est}");
            prop_assert!(est <= h.total as f64 + 1e-9, "{op:?} over total: {est}");
        }
    }

    /// Complementary operators partition the rows: eq+ne == total and
    /// lt+ge == total (up to float noise).
    #[test]
    fn histogram_complements(values in values_strategy(), probe in -2e6f64..2e6) {
        let h = NumericHistogram::build(&values, 32);
        let total = h.total as f64;
        let eq_ne = h.estimate(CmpOp::Eq, probe) + h.estimate(CmpOp::Ne, probe);
        prop_assert!((eq_ne - total).abs() < 1e-6 * total.max(1.0), "eq+ne = {eq_ne} vs {total}");
        let lt_ge = h.estimate(CmpOp::Lt, probe) + h.estimate(CmpOp::Ge, probe);
        prop_assert!((lt_ge - total).abs() < 1e-6 * total.max(1.0), "lt+ge = {lt_ge} vs {total}");
        let le_gt = h.estimate(CmpOp::Le, probe) + h.estimate(CmpOp::Gt, probe);
        prop_assert!((le_gt - total).abs() < 1e-6 * total.max(1.0), "le+gt = {le_gt} vs {total}");
    }

    /// Range estimates are monotone in the probe.
    #[test]
    fn histogram_range_monotone(values in values_strategy(), a in -2e6f64..2e6, b in -2e6f64..2e6) {
        let h = NumericHistogram::build(&values, 16);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(h.estimate(CmpOp::Le, lo) <= h.estimate(CmpOp::Le, hi) + 1e-9);
        prop_assert!(h.estimate(CmpOp::Gt, lo) + 1e-9 >= h.estimate(CmpOp::Gt, hi));
    }

    /// Equality estimates on data with exact-match buckets: the estimate
    /// for a value present k times in otherwise-distinct data is within a
    /// bucket's worth of k.
    #[test]
    fn histogram_eq_reasonable(k in 1usize..50) {
        let mut values: Vec<f64> = (0..500).map(f64::from).collect();
        values.extend(std::iter::repeat_n(1000.0, k));
        let h = NumericHistogram::build(&values, 64);
        let est = h.estimate(CmpOp::Eq, 1000.0);
        prop_assert!((est - k as f64).abs() < 12.0, "eq estimate {est} for k={k}");
    }

    /// String histograms: per-value estimates are exact for values kept
    /// in the top set, and eq+ne always totals the row count.
    #[test]
    fn string_histogram_consistency(counts in prop::collection::vec(1u64..200, 1..20)) {
        let labels: Vec<String> = (0..counts.len()).map(|i| format!("v{i}")).collect();
        let data: Vec<&str> = labels
            .iter()
            .zip(&counts)
            .flat_map(|(l, &c)| std::iter::repeat_n(l.as_str(), c as usize))
            .collect();
        let h = StringHistogram::build(data.iter().copied(), 8);
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(h.total, total);
        for (l, &c) in labels.iter().zip(&counts) {
            let eq = h.estimate(CmpOp::Eq, l);
            let ne = h.estimate(CmpOp::Ne, l);
            prop_assert!((eq + ne - total as f64).abs() < 1e-6);
            if h.top.iter().any(|(v, _)| v == l) {
                prop_assert_eq!(eq, c as f64);
            }
        }
    }

    /// Aggregate merging is commutative and associative, and matches a
    /// single fold over the concatenation — for every aggregate function.
    #[test]
    fn aggregate_merge_laws(
        xs in prop::collection::vec(-1e6f64..1e6, 0..50),
        ys in prop::collection::vec(-1e6f64..1e6, 0..50),
        zs in prop::collection::vec(-1e6f64..1e6, 0..50),
        func in prop::sample::select(vec![AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max]),
    ) {
        let fold = |vals: &[f64]| {
            let mut a = Aggregate::empty(func);
            for &v in vals {
                a.fold(v);
            }
            a
        };
        let (a, b, c) = (fold(&xs), fold(&ys), fold(&zs));

        // Commutativity.
        let mut ab = a; ab.merge(&b);
        let mut ba = b; ba.merge(&a);
        prop_assert_eq!(ab.rows, ba.rows);
        prop_assert!((ab.sum - ba.sum).abs() <= 1e-6 * ab.sum.abs().max(1.0));
        prop_assert_eq!(ab.min, ba.min);
        prop_assert_eq!(ab.max, ba.max);

        // Associativity.
        let mut ab_c = ab; ab_c.merge(&c);
        let mut bc = b; bc.merge(&c);
        let mut a_bc = a; a_bc.merge(&bc);
        prop_assert_eq!(ab_c.rows, a_bc.rows);
        prop_assert!((ab_c.sum - a_bc.sum).abs() <= 1e-6 * ab_c.sum.abs().max(1.0));

        // Merged equals whole.
        let mut all = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        let whole = fold(&all);
        prop_assert_eq!(ab_c.rows, whole.rows);
        match (ab_c.finish(), whole.finish()) {
            (Some(m), Some(w)) => prop_assert!((m - w).abs() <= 1e-6 * w.abs().max(1.0), "{m} vs {w}"),
            (m, w) => prop_assert_eq!(m, w),
        }
    }

    /// The parser accepts arbitrary conjunctions it printed itself (via
    /// normalized text) and never panics on random input.
    #[test]
    fn parser_total_on_random_input(input in "[ -~]{0,80}") {
        let _ = seaweed_store::Query::parse(&input); // must not panic
    }

    /// Normalized text is a fixed point: parsing it again gives the same
    /// structure.
    #[test]
    fn parser_normalization_fixed_point(
        col in "[a-z]{1,8}",
        v in -1000i64..1000,
        spaces in 1usize..5,
    ) {
        let pad = " ".repeat(spaces);
        let sql = format!("SELECT{pad}COUNT(*){pad}FROM{pad}T{pad}WHERE{pad}{col}{pad}<{pad}{v}");
        let q1 = seaweed_store::Query::parse(&sql).expect("valid");
        let q2 = seaweed_store::Query::parse(&q1.text).expect("normalized reparses");
        prop_assert_eq!(&q1.agg, &q2.agg);
        prop_assert_eq!(&q1.predicates, &q2.predicates);
        prop_assert_eq!(&q1.text, &q2.text);
    }
}
