//! Per-endsystem data summaries — the "h" metadata of Table 1.
//!
//! A [`DataSummary`] is what an endsystem pushes to its metadata replica
//! set: histograms on every indexed column plus the fragment's row count.
//! When a query's completeness predictor is generated on behalf of an
//! *unavailable* endsystem, its replicated summary answers "how many rows
//! relevant to this query does that endsystem hold?" (§3.2.2). The
//! Anemone deployment replicated 5 histograms per endsystem totalling
//! h = 6,473 bytes.

use crate::histogram::ColumnHistogram;
use crate::sql::BoundQuery;
use crate::table::Table;

/// Default bucket budget per histogram (SQL Server uses up to 200 steps;
/// 64 keeps h near the paper's reported size at our workload scale).
pub const DEFAULT_BUCKETS: usize = 64;

/// Replicable summary of one endsystem's fragment of one table.
///
/// Summaries are immutable after [`DataSummary::build`] (an endsystem
/// rebuilds the whole summary when its fragment changes), so the wire
/// size is memoized on first use. The fields are sealed behind read-only
/// accessors precisely because of that memoization: a public field
/// mutated after the first [`DataSummary::wire_size`] call would
/// silently serve a stale size.
#[derive(Clone)]
pub struct DataSummary {
    /// Total rows in the fragment.
    row_count: u64,
    /// `(column index, histogram)` for each indexed column.
    histograms: Vec<(usize, ColumnHistogram)>,
    /// Memoized [`DataSummary::wire_size`]; derived from the fields above,
    /// hence excluded from `Debug`/`PartialEq`.
    wire: std::cell::OnceCell<u32>,
}

impl std::fmt::Debug for DataSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DataSummary")
            .field("row_count", &self.row_count)
            .field("histograms", &self.histograms)
            .finish()
    }
}

impl PartialEq for DataSummary {
    fn eq(&self, other: &Self) -> bool {
        self.row_count == other.row_count && self.histograms == other.histograms
    }
}

impl DataSummary {
    /// Builds the summary for a table fragment (histograms on indexed
    /// columns only, as in the paper).
    #[must_use]
    pub fn build(table: &Table) -> Self {
        Self::build_with_buckets(table, DEFAULT_BUCKETS)
    }

    /// Builds with an explicit per-histogram bucket budget (used by the
    /// `abl02_histogram_buckets` ablation).
    #[must_use]
    pub fn build_with_buckets(table: &Table, buckets: usize) -> Self {
        let histograms = table
            .schema()
            .indexed_columns()
            .into_iter()
            .map(|col| (col, ColumnHistogram::build(table.column(col), buckets)))
            .collect();
        DataSummary {
            row_count: table.num_rows() as u64,
            histograms,
            wire: std::cell::OnceCell::new(),
        }
    }

    /// Estimates the number of rows in this fragment matching a bound
    /// query. Conjunction selectivities are combined under the standard
    /// attribute-independence assumption; predicates on non-indexed
    /// columns fall back to fixed selectivities (equality 10%, range ⅓ —
    /// textbook defaults).
    #[must_use]
    pub fn estimate_rows(&self, query: &BoundQuery) -> f64 {
        if self.row_count == 0 {
            return 0.0;
        }
        let total = self.row_count as f64;
        let mut selectivity = 1.0f64;
        for p in &query.predicates {
            let sel = match self.histogram_for(p.column) {
                Some(h) if h.total() > 0 => h
                    .estimate(p.op, &p.value)
                    .map(|rows| rows / h.total() as f64)
                    .unwrap_or(1.0 / 3.0),
                _ => match p.op {
                    crate::sql::CmpOp::Eq => 0.1,
                    crate::sql::CmpOp::Ne => 0.9,
                    _ => 1.0 / 3.0,
                },
            };
            selectivity *= sel.clamp(0.0, 1.0);
        }
        total * selectivity
    }

    /// Total rows in the summarized fragment.
    #[must_use]
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// `(column index, histogram)` for each indexed column.
    #[must_use]
    pub fn histograms(&self) -> &[(usize, ColumnHistogram)] {
        &self.histograms
    }

    /// The histogram for a column, if that column is indexed.
    #[must_use]
    pub fn histogram_for(&self, column: usize) -> Option<&ColumnHistogram> {
        self.histograms
            .iter()
            .find(|(c, _)| *c == column)
            .map(|(_, h)| h)
    }

    /// Serialized size in bytes — what metadata replication pays per push.
    /// Computed once and memoized (summaries are immutable after build).
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        *self.wire.get_or_init(|| {
            8 + self
                .histograms
                .iter()
                .map(|(_, h)| 4 + h.wire_size())
                .sum::<u32>()
        })
    }

    /// Size of a delta encoding against the previously pushed version —
    /// the §3.2.2 optimization ("sending delta-encoded histograms ...
    /// could reduce network overhead compared to pushing the entire
    /// histogram"). Unchanged histograms cost one presence bit; changed
    /// ones cost their per-bucket delta.
    #[must_use]
    pub fn delta_wire_size(&self, prev: &DataSummary) -> u32 {
        let mut size = 8u32 + self.histograms.len().div_ceil(8) as u32;
        for (col, h) in &self.histograms {
            match prev.histogram_for(*col) {
                Some(ph) if ph == h => {}
                Some(ph) => size += 4 + h.delta_wire_size(ph),
                None => size += 4 + h.wire_size(),
            }
        }
        size.min(self.wire_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::count_matching;
    use crate::schema::{ColumnDef, Schema};
    use crate::sql::Query;
    use crate::value::{DataType, Value};

    fn flow_table(rows: usize) -> Table {
        let schema = Schema::new(
            "Flow",
            vec![
                ColumnDef::new("ts", DataType::Int, true),
                ColumnDef::new("SrcPort", DataType::Int, true),
                ColumnDef::new("Bytes", DataType::Int, true),
                ColumnDef::new("App", DataType::Str, true),
                ColumnDef::new("Scratch", DataType::Int, false),
            ],
        );
        let mut t = Table::new(schema);
        for i in 0..rows {
            let port = match i % 10 {
                0..=5 => 80,
                6..=7 => 443,
                _ => 445,
            };
            let app = match port {
                80 => "HTTP",
                443 => "HTTPS",
                _ => "SMB",
            };
            let bytes = ((i * 37) % 50_000) as i64;
            t.insert(vec![
                Value::Int(i as i64),
                Value::Int(port),
                Value::Int(bytes),
                Value::from(app),
                Value::Int((i % 7) as i64),
            ])
            .unwrap();
        }
        t
    }

    fn estimate_vs_truth(sql: &str) -> (f64, u64) {
        let t = flow_table(5_000);
        let q = Query::parse(sql).unwrap().bind(t.schema(), 0).unwrap();
        let summary = DataSummary::build(&t);
        (summary.estimate_rows(&q), count_matching(&q, &t))
    }

    #[test]
    fn paper_style_queries_estimate_well() {
        // §4.3.2: "the prediction error for total row count is under 0.5%
        // in all cases" for single-indexed-column predicates. Hold single-
        // predicate estimates to 1% of the fragment here.
        for sql in [
            "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80",
            "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000",
            "SELECT AVG(Bytes) FROM Flow WHERE App='SMB'",
            "SELECT COUNT(*) FROM Flow WHERE SrcPort < 1024",
        ] {
            let (est, truth) = estimate_vs_truth(sql);
            let err = (est - truth as f64).abs() / 5_000.0;
            assert!(err < 0.01, "{sql}: est {est:.1} truth {truth}");
        }
    }

    #[test]
    fn conjunction_estimates_reasonably() {
        let (est, truth) =
            estimate_vs_truth("SELECT COUNT(*) FROM Flow WHERE SrcPort=80 AND Bytes > 25000");
        // Independence holds by construction here; allow 5%.
        let err = (est - truth as f64).abs() / 5_000.0;
        assert!(err < 0.05, "est {est:.1} truth {truth}");
    }

    #[test]
    fn non_indexed_column_falls_back() {
        let (est, _) = estimate_vs_truth("SELECT COUNT(*) FROM Flow WHERE Scratch = 3");
        // Fallback equality selectivity is 10% of 5000.
        assert!((est - 500.0).abs() < 1e-9);
    }

    #[test]
    fn empty_table_estimates_zero() {
        let t = flow_table(0);
        let q = Query::parse("SELECT COUNT(*) FROM Flow WHERE SrcPort=80")
            .unwrap()
            .bind(t.schema(), 0)
            .unwrap();
        assert_eq!(DataSummary::build(&t).estimate_rows(&q), 0.0);
    }

    #[test]
    fn wire_size_is_in_table1_ballpark() {
        let t = flow_table(20_000);
        let s = DataSummary::build(&t);
        // Paper: h = 6,473 bytes for 5 histograms. Ours should be the
        // same order of magnitude.
        let size = s.wire_size();
        assert!((1_000..=20_000).contains(&size), "wire size {size}");
        assert_eq!(s.histograms().len(), 4);
    }

    #[test]
    fn rebuild_after_fragment_change_reencodes() {
        // Summaries are immutable-after-build (the fields are sealed), so
        // "mutate then encode" means rebuilding from the grown fragment;
        // the fresh summary must carry a fresh memoized wire size, not
        // the old cell's value.
        let small = DataSummary::build(&flow_table(500));
        let small_size = small.wire_size();
        let big = DataSummary::build(&flow_table(20_000));
        assert_eq!(big.row_count(), 20_000);
        assert!(
            big.wire_size() > small_size,
            "grown fragment must re-encode: {} vs {}",
            big.wire_size(),
            small_size
        );
        // A clone carries the same memoized size (fields are frozen, so
        // sharing the filled cell is sound).
        let clone = big.clone();
        assert_eq!(clone.wire_size(), big.wire_size());
    }

    #[test]
    fn bucket_budget_trades_size_for_accuracy() {
        let t = flow_table(5_000);
        let coarse = DataSummary::build_with_buckets(&t, 4);
        let fine = DataSummary::build_with_buckets(&t, 128);
        assert!(coarse.wire_size() < fine.wire_size());
        let q = Query::parse("SELECT COUNT(*) FROM Flow WHERE Bytes > 20000")
            .unwrap()
            .bind(t.schema(), 0)
            .unwrap();
        let truth = count_matching(&q, &t) as f64;
        let e_fine = (fine.estimate_rows(&q) - truth).abs();
        let e_coarse = (coarse.estimate_rows(&q) - truth).abs();
        assert!(e_fine <= e_coarse + 1.0, "fine {e_fine} coarse {e_coarse}");
    }
}
