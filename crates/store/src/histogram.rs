//! Column histograms and selectivity estimation.
//!
//! "In Seaweed the summary currently consists of histograms on indexed
//! columns of the local database" (§3.2.2). The prototype extracted SQL
//! Server's histograms; we build our own:
//!
//! * numeric columns get **equi-depth** histograms (near-equal row counts
//!   per bucket, so skewed distributions keep resolution where the data
//!   is) with per-bucket distinct counts for equality estimates;
//! * low-cardinality string columns get an exact **frequency** histogram
//!   of the most common values plus an "other" bucket.
//!
//! "Row count estimation based on histograms is extremely accurate for
//! queries ... with range predicates on a single indexed column" (§4.3.2)
//! — the tests at the bottom hold this implementation to that standard.

use std::collections::BTreeMap;

use crate::sql::CmpOp;
use crate::table::ColumnData;
use crate::value::Value;

/// One bucket of an equi-depth histogram over `f64` keys.
///
/// Like SQL Server's histogram steps, each bucket separately records how
/// many rows equal its upper boundary (`hi_count`, cf. `EQ_ROWS`): the
/// builder never splits a run of equal values across buckets, so heavy
/// hitters always end a bucket and are estimated exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bucket {
    /// Smallest value in the bucket.
    pub lo: f64,
    /// Largest value in the bucket (inclusive).
    pub hi: f64,
    pub count: u64,
    pub distinct: u64,
    /// Rows exactly equal to `hi`.
    pub hi_count: u64,
}

/// Equi-depth histogram for a numeric column.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NumericHistogram {
    pub buckets: Vec<Bucket>,
    pub total: u64,
}

impl NumericHistogram {
    /// Builds a histogram with at most `max_buckets` buckets from raw
    /// values (need not be sorted).
    #[must_use]
    pub fn build(values: &[f64], max_buckets: usize) -> Self {
        assert!(max_buckets >= 1);
        if values.is_empty() {
            return NumericHistogram::default();
        }
        let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(f64::total_cmp);
        let total = sorted.len() as u64;
        let per = sorted.len().div_ceil(max_buckets);
        let mut buckets = Vec::with_capacity(max_buckets);
        let mut i = 0usize;
        while i < sorted.len() {
            let mut j = (i + per).min(sorted.len());
            // Never split a run of equal values across buckets: extend j to
            // cover the full run so equality estimates stay exact-ish.
            while j < sorted.len() && sorted[j] == sorted[j - 1] {
                j += 1;
            }
            let slice = &sorted[i..j];
            let mut distinct = 1u64;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    distinct += 1;
                }
            }
            let hi = slice[slice.len() - 1];
            let hi_count = slice.iter().rev().take_while(|&&v| v == hi).count() as u64;
            buckets.push(Bucket {
                lo: slice[0],
                hi,
                count: slice.len() as u64,
                distinct,
                hi_count,
            });
            i = j;
        }
        NumericHistogram { buckets, total }
    }

    /// Estimated number of rows satisfying `column op v`. The six
    /// operators are derived from two primitives (`= v` and `< v`), so
    /// complementary pairs always partition the total exactly.
    #[must_use]
    pub fn estimate(&self, op: CmpOp, v: f64) -> f64 {
        let total = self.total as f64;
        match op {
            CmpOp::Eq => self.estimate_eq(v),
            CmpOp::Ne => (total - self.estimate_eq(v)).max(0.0),
            CmpOp::Lt => self.estimate_strictly_below(v),
            CmpOp::Le => (self.estimate_strictly_below(v) + self.estimate_eq(v)).min(total),
            CmpOp::Gt => (total - self.estimate_strictly_below(v) - self.estimate_eq(v)).max(0.0),
            CmpOp::Ge => (total - self.estimate_strictly_below(v)).max(0.0),
        }
    }

    fn estimate_eq(&self, v: f64) -> f64 {
        let mut est = 0.0;
        for b in &self.buckets {
            if v == b.hi {
                // Boundary values are tracked exactly.
                est += b.hi_count as f64;
            } else if v >= b.lo && v < b.hi {
                // Interior values share the non-boundary rows uniformly.
                let interior = (b.count - b.hi_count) as f64;
                let interior_distinct = b.distinct.saturating_sub(1).max(1) as f64;
                est += interior / interior_distinct;
            }
        }
        est
    }

    /// Rows strictly below `v`.
    fn estimate_strictly_below(&self, v: f64) -> f64 {
        let mut est = 0.0;
        for b in &self.buckets {
            if b.hi < v {
                est += b.count as f64;
            } else if v == b.hi {
                // Everything but the boundary rows.
                est += (b.count - b.hi_count) as f64;
            } else if b.lo < v {
                // Interior: linear interpolation over the non-boundary
                // rows across the value span.
                let span = b.hi - b.lo;
                debug_assert!(span > 0.0, "lo < v <= hi implies a span");
                let frac = ((v - b.lo) / span).clamp(0.0, 1.0);
                est += (b.count - b.hi_count) as f64 * frac;
            }
        }
        est.min(self.total as f64)
    }

    /// Approximate serialized size: 16-byte header + 28 bytes per bucket
    /// (two f64 edges, count and distinct as u32s, packed).
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        16 + 28 * self.buckets.len() as u32
    }

    /// Size of a delta encoding against a previous version: a header, a
    /// presence bitmap, and only the buckets that changed (§3.2.2's
    /// "sending delta-encoded histograms which could reduce network
    /// overhead"). Falls back to the full size when the bucket layout
    /// changed shape.
    #[must_use]
    pub fn delta_wire_size(&self, prev: &NumericHistogram) -> u32 {
        if self.buckets.len() != prev.buckets.len() {
            return self.wire_size();
        }
        let changed = self
            .buckets
            .iter()
            .zip(&prev.buckets)
            .filter(|(a, b)| a != b)
            .count() as u32;
        let bitmap = self.buckets.len().div_ceil(8) as u32;
        (16 + bitmap + 28 * changed).min(self.wire_size())
    }
}

/// Frequency histogram for a (low-cardinality) string column: exact counts
/// for the top `max_entries` values, aggregate for the rest.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StringHistogram {
    /// Most frequent values with exact counts, sorted descending by count.
    pub top: Vec<(String, u64)>,
    pub other_count: u64,
    pub other_distinct: u64,
    pub total: u64,
}

impl StringHistogram {
    #[must_use]
    pub fn build<'a, I>(values: I, max_entries: usize) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
        let mut total = 0u64;
        for v in values {
            *counts.entry(v).or_insert(0) += 1;
            total += 1;
        }
        let mut pairs: Vec<(&str, u64)> = counts.into_iter().collect();
        // Sort by count descending, then lexically for determinism.
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let cut = pairs.len().min(max_entries);
        let top: Vec<(String, u64)> = pairs[..cut]
            .iter()
            .map(|(s, c)| ((*s).to_owned(), *c))
            .collect();
        let other_count: u64 = pairs[cut..].iter().map(|(_, c)| c).sum();
        StringHistogram {
            top,
            other_count,
            other_distinct: (pairs.len() - cut) as u64,
            total,
        }
    }

    /// Estimated rows satisfying `column op s`. Only equality forms are
    /// meaningful for categorical strings; range operators fall back to a
    /// fixed fraction of the column.
    #[must_use]
    pub fn estimate(&self, op: CmpOp, s: &str) -> f64 {
        let eq = self
            .top
            .iter()
            .find(|(v, _)| v == s)
            .map(|(_, c)| *c as f64)
            .unwrap_or_else(|| {
                if self.other_distinct == 0 {
                    0.0
                } else {
                    self.other_count as f64 / self.other_distinct as f64
                }
            });
        match op {
            CmpOp::Eq => eq,
            CmpOp::Ne => (self.total as f64 - eq).max(0.0),
            _ => self.total as f64 / 3.0,
        }
    }

    /// Approximate serialized size.
    #[must_use]
    pub fn wire_size(&self) -> u32 {
        let top: usize = self.top.iter().map(|(s, _)| s.len() + 8).sum();
        (24 + top) as u32
    }

    /// Size of a delta encoding against a previous version: only entries
    /// whose counts changed (new entries carry their string).
    #[must_use]
    pub fn delta_wire_size(&self, prev: &StringHistogram) -> u32 {
        let mut size = 24u32;
        for (s, c) in &self.top {
            match prev.top.iter().find(|(ps, _)| ps == s) {
                Some((_, pc)) if pc == c => {}
                Some(_) => size += 10, // index + new count
                None => size += s.len() as u32 + 10,
            }
        }
        size.min(self.wire_size())
    }
}

/// A histogram over one column, either flavour.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnHistogram {
    Numeric(NumericHistogram),
    Strings(StringHistogram),
}

impl ColumnHistogram {
    /// Builds the appropriate flavour for a column.
    #[must_use]
    pub fn build(column: &ColumnData, max_buckets: usize) -> Self {
        match column {
            ColumnData::Ints(v) => {
                let vals: Vec<f64> = v.iter().map(|&x| x as f64).collect();
                ColumnHistogram::Numeric(NumericHistogram::build(&vals, max_buckets))
            }
            ColumnData::Floats(v) => {
                ColumnHistogram::Numeric(NumericHistogram::build(v, max_buckets))
            }
            ColumnData::Strs { codes, dict } => {
                let it = codes.iter().map(|&c| dict[c as usize].as_str());
                ColumnHistogram::Strings(StringHistogram::build(it, max_buckets))
            }
        }
    }

    /// Estimated rows satisfying `column op value`; `None` when the value
    /// type does not fit the histogram (bind should have prevented it).
    #[must_use]
    pub fn estimate(&self, op: CmpOp, value: &Value) -> Option<f64> {
        match (self, value) {
            (ColumnHistogram::Numeric(h), v) => v.as_f64().map(|x| h.estimate(op, x)),
            (ColumnHistogram::Strings(h), Value::Str(s)) => Some(h.estimate(op, s)),
            (ColumnHistogram::Strings(_), _) => None,
        }
    }

    #[must_use]
    pub fn total(&self) -> u64 {
        match self {
            ColumnHistogram::Numeric(h) => h.total,
            ColumnHistogram::Strings(h) => h.total,
        }
    }

    #[must_use]
    pub fn wire_size(&self) -> u32 {
        match self {
            ColumnHistogram::Numeric(h) => h.wire_size(),
            ColumnHistogram::Strings(h) => h.wire_size(),
        }
    }

    /// Delta-encoded size against a previous version of the same column's
    /// histogram (full size when flavours differ).
    #[must_use]
    pub fn delta_wire_size(&self, prev: &ColumnHistogram) -> u32 {
        match (self, prev) {
            (ColumnHistogram::Numeric(a), ColumnHistogram::Numeric(b)) => a.delta_wire_size(b),
            (ColumnHistogram::Strings(a), ColumnHistogram::Strings(b)) => a.delta_wire_size(b),
            _ => self.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform() -> Vec<f64> {
        (0..10_000).map(|i| (i % 1000) as f64).collect()
    }

    #[test]
    fn range_estimates_on_uniform_data_are_tight() {
        let h = NumericHistogram::build(&uniform(), 64);
        assert_eq!(h.total, 10_000);
        // True: 10 rows per distinct value, values 0..1000.
        for (op, v, truth) in [
            (CmpOp::Lt, 500.0, 5_000.0),
            (CmpOp::Le, 499.0, 5_000.0),
            (CmpOp::Ge, 900.0, 1_000.0),
            (CmpOp::Gt, 899.0, 1_000.0),
        ] {
            let est = h.estimate(op, v);
            let err = (est - truth).abs() / 10_000.0;
            assert!(err < 0.02, "{op:?} {v}: est {est} truth {truth}");
        }
    }

    #[test]
    fn equality_estimate_on_uniform_data() {
        let h = NumericHistogram::build(&uniform(), 64);
        let est = h.estimate(CmpOp::Eq, 123.0);
        assert!((est - 10.0).abs() < 5.0, "eq est {est}");
        let ne = h.estimate(CmpOp::Ne, 123.0);
        assert!((ne - 9_990.0).abs() < 5.0);
    }

    #[test]
    fn skewed_data_keeps_resolution() {
        // 90% zeros, a heavy tail to 1e6.
        let mut vals: Vec<f64> = vec![0.0; 9_000];
        vals.extend((0..1_000).map(|i| (i * i) as f64));
        let h = NumericHistogram::build(&vals, 32);
        // Eq on the spike should be close to 9000 (plus one tail zero).
        let eq0 = h.estimate(CmpOp::Eq, 0.0);
        assert!((eq0 - 9_001.0).abs() < 200.0, "eq0 {eq0}");
        // Rows above 250_000 (i*i > 250_000 => i > 500): ~500 rows.
        let hi = h.estimate(CmpOp::Gt, 250_000.0);
        assert!((hi - 500.0).abs() < 120.0, "tail {hi}");
    }

    #[test]
    fn out_of_range_probes() {
        let h = NumericHistogram::build(&uniform(), 16);
        assert_eq!(h.estimate(CmpOp::Lt, -5.0), 0.0);
        assert_eq!(h.estimate(CmpOp::Gt, 1e9), 0.0);
        assert_eq!(h.estimate(CmpOp::Ge, 1e9), 0.0);
        assert_eq!(h.estimate(CmpOp::Le, 1e9), 10_000.0);
        assert_eq!(h.estimate(CmpOp::Eq, 12345.0), 0.0);
    }

    #[test]
    fn empty_histogram() {
        let h = NumericHistogram::build(&[], 8);
        assert_eq!(h.total, 0);
        assert_eq!(h.estimate(CmpOp::Lt, 10.0), 0.0);
    }

    #[test]
    fn equal_runs_not_split() {
        let vals = vec![1.0; 1000];
        let h = NumericHistogram::build(&vals, 10);
        assert_eq!(h.buckets.len(), 1);
        assert_eq!(h.estimate(CmpOp::Eq, 1.0), 1000.0);
        assert_eq!(h.estimate(CmpOp::Lt, 1.0), 0.0);
        assert_eq!(h.estimate(CmpOp::Gt, 1.0), 0.0);
    }

    #[test]
    fn string_histogram_exact_for_top_values() {
        let data: Vec<&str> = std::iter::repeat_n("HTTP", 700)
            .chain(std::iter::repeat_n("SMB", 200))
            .chain(std::iter::repeat_n("DNS", 90))
            .chain(["a", "b", "c", "d", "e", "f", "g", "h", "i", "j"])
            .collect();
        let h = StringHistogram::build(data.iter().copied(), 3);
        assert_eq!(h.total, 1000);
        assert_eq!(h.estimate(CmpOp::Eq, "HTTP"), 700.0);
        assert_eq!(h.estimate(CmpOp::Eq, "SMB"), 200.0);
        assert_eq!(h.estimate(CmpOp::Ne, "HTTP"), 300.0);
        // Unknown value estimated from the other bucket: 10 rows over 10
        // distinct values = 1.
        assert_eq!(h.estimate(CmpOp::Eq, "zzz"), 1.0);
    }

    #[test]
    fn column_histogram_dispatch() {
        let ints = ColumnData::Ints((0..100).collect());
        let h = ColumnHistogram::build(&ints, 8);
        assert_eq!(h.total(), 100);
        let est = h.estimate(CmpOp::Lt, &Value::Int(50)).unwrap();
        assert!((est - 50.0).abs() < 3.0);
        assert!(
            h.estimate(CmpOp::Lt, &Value::from("x")).is_none()
                || matches!(h, ColumnHistogram::Numeric(_))
        );
        assert!(h.wire_size() > 0);
    }
}
