//! Parser for the Seaweed SQL subset.
//!
//! §2 restricts read-only queries to single-table select-project-aggregate
//! with no distributed joins. The grammar accepted here covers every query
//! in the paper's evaluation:
//!
//! ```text
//! query   := SELECT agg FROM ident [WHERE cond (AND cond)*] [GROUP BY ident]
//! agg     := (COUNT | SUM | AVG | MIN | MAX) '(' ('*' | ident) ')'
//! cond    := ident op operand
//! op      := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//! operand := number | 'string' | NOW() [('+'|'-') number]
//! ```
//!
//! Parsing happens once at the injection endsystem; *binding* resolves
//! `NOW()` against the injection timestamp and column names against the
//! application schema, producing a [`BoundQuery`] every endsystem (or
//! metadata replica) can evaluate locally.

use crate::error::StoreError;
use crate::exec::AggFunc;
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    #[must_use]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// Right-hand side of a comparison before binding.
#[derive(Clone, PartialEq, Debug)]
pub enum Operand {
    Literal(Value),
    /// `NOW()` plus a signed offset in seconds.
    Now {
        offset_secs: i64,
    },
}

/// One `column op operand` condition, unbound.
#[derive(Clone, PartialEq, Debug)]
pub struct RawComparison {
    pub column: String,
    pub op: CmpOp,
    pub operand: Operand,
}

/// A parsed (but unbound) query.
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    pub agg: AggFunc,
    /// Aggregated column name; `None` for `COUNT(*)`.
    pub agg_column: Option<String>,
    pub table: String,
    pub predicates: Vec<RawComparison>,
    /// Optional `GROUP BY` column.
    pub group_by: Option<String>,
    /// Normalized source text (used to derive the queryId).
    pub text: String,
}

/// A bound comparison: column index and concrete value.
#[derive(Clone, PartialEq, Debug)]
pub struct Comparison {
    pub column: usize,
    pub op: CmpOp,
    pub value: Value,
}

/// A query bound to a schema and an injection time.
#[derive(Clone, PartialEq, Debug)]
pub struct BoundQuery {
    pub agg: AggFunc,
    /// Aggregated column index; `None` for `COUNT(*)`.
    pub agg_column: Option<usize>,
    pub predicates: Vec<Comparison>,
    /// Optional `GROUP BY` column index.
    pub group_by: Option<usize>,
}

impl Query {
    /// Parses `text`.
    pub fn parse(text: &str) -> Result<Query, StoreError> {
        Parser::new(text).parse()
    }

    /// Binds the query against `schema` with `NOW()` = `now_secs`.
    pub fn bind(&self, schema: &Schema, now_secs: i64) -> Result<BoundQuery, StoreError> {
        if !self.table.eq_ignore_ascii_case(&schema.table) {
            return Err(StoreError::UnknownTable(self.table.clone()));
        }
        let agg_column = match &self.agg_column {
            None => None,
            Some(name) => {
                let idx = schema.column_index(name)?;
                let dtype = schema.column(idx).dtype;
                if self.agg != AggFunc::Count && dtype == DataType::Str {
                    return Err(StoreError::BadAggregate(format!(
                        "{:?} over string column {name}",
                        self.agg
                    )));
                }
                Some(idx)
            }
        };
        let mut predicates = Vec::with_capacity(self.predicates.len());
        for raw in &self.predicates {
            let column = schema.column_index(&raw.column)?;
            let dtype = schema.column(column).dtype;
            let value = match &raw.operand {
                Operand::Now { offset_secs } => Value::Int(now_secs + offset_secs),
                Operand::Literal(v) => v.clone(),
            };
            let compatible = matches!(
                (dtype, &value),
                (DataType::Int, Value::Int(_))
                    | (DataType::Int, Value::Float(_))
                    | (DataType::Float, Value::Int(_))
                    | (DataType::Float, Value::Float(_))
                    | (DataType::Str, Value::Str(_))
            );
            if !compatible {
                return Err(StoreError::TypeMismatch {
                    column: raw.column.clone(),
                    expected: dtype.name(),
                    got: value.dtype().name(),
                });
            }
            predicates.push(Comparison {
                column,
                op: raw.op,
                value,
            });
        }
        let group_by = match &self.group_by {
            None => None,
            Some(name) => Some(schema.column_index(name)?),
        };
        Ok(BoundQuery {
            agg: self.agg,
            agg_column,
            predicates,
            group_by,
        })
    }
}

// ---------------------------------------------------------------- lexer --

#[derive(Clone, PartialEq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Sym(&'static str),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> StoreError {
        StoreError::Parse {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn next_tok(&mut self) -> Result<(usize, Tok), StoreError> {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        let start = self.pos;
        if self.pos >= self.src.len() {
            return Ok((start, Tok::Eof));
        }
        let c = self.src[self.pos];
        match c {
            b'(' | b')' | b'*' | b',' | b'+' => {
                self.pos += 1;
                let s = match c {
                    b'(' => "(",
                    b')' => ")",
                    b'*' => "*",
                    b',' => ",",
                    _ => "+",
                };
                Ok((start, Tok::Sym(s)))
            }
            b'=' => {
                self.pos += 1;
                Ok((start, Tok::Sym("=")))
            }
            b'!' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Ok((start, Tok::Sym("!=")))
                } else {
                    Err(self.err("expected '=' after '!'"))
                }
            }
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => {
                        self.pos += 1;
                        Ok((start, Tok::Sym("<=")))
                    }
                    Some(b'>') => {
                        self.pos += 1;
                        Ok((start, Tok::Sym("!=")))
                    }
                    _ => Ok((start, Tok::Sym("<"))),
                }
            }
            b'>' => {
                self.pos += 1;
                if self.peek() == Some(b'=') {
                    self.pos += 1;
                    Ok((start, Tok::Sym(">=")))
                } else {
                    Ok((start, Tok::Sym(">")))
                }
            }
            b'-' => {
                self.pos += 1;
                Ok((start, Tok::Sym("-")))
            }
            b'\'' => {
                self.pos += 1;
                let s0 = self.pos;
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos >= self.src.len() {
                    return Err(self.err("unterminated string literal"));
                }
                let s = String::from_utf8_lossy(&self.src[s0..self.pos]).into_owned();
                self.pos += 1;
                Ok((start, Tok::Str(s)))
            }
            b'0'..=b'9' | b'.' => {
                let s0 = self.pos;
                let mut is_float = false;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_digit() || self.src[self.pos] == b'.')
                {
                    if self.src[self.pos] == b'.' {
                        is_float = true;
                    }
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.src[s0..self.pos]).expect("ascii");
                if is_float {
                    s.parse::<f64>()
                        .map(|f| (start, Tok::Float(f)))
                        .map_err(|_| self.err(format!("bad float literal {s}")))
                } else {
                    s.parse::<i64>()
                        .map(|i| (start, Tok::Int(i)))
                        .map_err(|_| self.err(format!("bad integer literal {s}")))
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let s0 = self.pos;
                while self.pos < self.src.len()
                    && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.src[s0..self.pos])
                    .expect("ascii")
                    .to_owned();
                Ok((start, Tok::Ident(s)))
            }
            other => Err(self.err(format!("unexpected character {:?}", other as char))),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }
}

// --------------------------------------------------------------- parser --

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    tok_pos: usize,
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            lexer: Lexer::new(src),
            tok: Tok::Eof,
            tok_pos: 0,
            src,
        }
    }

    fn bump(&mut self) -> Result<(), StoreError> {
        let (pos, tok) = self.lexer.next_tok()?;
        self.tok = tok;
        self.tok_pos = pos;
        Ok(())
    }

    fn err(&self, message: impl Into<String>) -> StoreError {
        StoreError::Parse {
            pos: self.tok_pos,
            message: message.into(),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), StoreError> {
        match &self.tok {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => self.bump(),
            other => Err(self.err(format!("expected {kw}, found {other:?}"))),
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<(), StoreError> {
        match &self.tok {
            Tok::Sym(s) if *s == sym => self.bump(),
            other => Err(self.err(format!("expected '{sym}', found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, StoreError> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Ident(s) => {
                self.bump()?;
                Ok(s)
            }
            other => {
                self.tok = other;
                Err(self.err("expected identifier"))
            }
        }
    }

    fn parse(mut self) -> Result<Query, StoreError> {
        self.bump()?;
        self.expect_keyword("SELECT")?;
        let agg_name = self.ident()?;
        let agg = match agg_name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            other => return Err(self.err(format!("unknown aggregate {other}"))),
        };
        self.expect_sym("(")?;
        let agg_column = if self.tok == Tok::Sym("*") {
            if agg != AggFunc::Count {
                return Err(self.err("only COUNT may take '*'"));
            }
            self.bump()?;
            None
        } else {
            Some(self.ident()?)
        };
        self.expect_sym(")")?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let mut predicates = Vec::new();
        if let Tok::Ident(s) = &self.tok {
            if s.eq_ignore_ascii_case("WHERE") {
                self.bump()?;
                loop {
                    predicates.push(self.comparison()?);
                    match &self.tok {
                        Tok::Ident(s) if s.eq_ignore_ascii_case("AND") => self.bump()?,
                        _ => break,
                    }
                }
            }
        }
        let mut group_by = None;
        if let Tok::Ident(s) = &self.tok {
            if s.eq_ignore_ascii_case("GROUP") {
                self.bump()?;
                self.expect_keyword("BY")?;
                group_by = Some(self.ident()?);
            }
        }
        if self.tok != Tok::Eof {
            return Err(self.err(format!("trailing input: {:?}", self.tok)));
        }
        Ok(Query {
            agg,
            agg_column,
            table,
            predicates,
            group_by,
            text: normalize(self.src),
        })
    }

    fn comparison(&mut self) -> Result<RawComparison, StoreError> {
        let column = self.ident()?;
        let op = match &self.tok {
            Tok::Sym("=") => CmpOp::Eq,
            Tok::Sym("!=") => CmpOp::Ne,
            Tok::Sym("<") => CmpOp::Lt,
            Tok::Sym("<=") => CmpOp::Le,
            Tok::Sym(">") => CmpOp::Gt,
            Tok::Sym(">=") => CmpOp::Ge,
            other => return Err(self.err(format!("expected comparison operator, found {other:?}"))),
        };
        self.bump()?;
        let operand = self.operand()?;
        Ok(RawComparison {
            column,
            op,
            operand,
        })
    }

    fn operand(&mut self) -> Result<Operand, StoreError> {
        match std::mem::replace(&mut self.tok, Tok::Eof) {
            Tok::Int(i) => {
                self.bump()?;
                Ok(Operand::Literal(Value::Int(i)))
            }
            Tok::Float(f) => {
                self.bump()?;
                Ok(Operand::Literal(Value::Float(f)))
            }
            Tok::Str(s) => {
                self.bump()?;
                Ok(Operand::Literal(Value::Str(s)))
            }
            Tok::Sym("-") => {
                // Negative numeric literal.
                self.bump()?;
                match std::mem::replace(&mut self.tok, Tok::Eof) {
                    Tok::Int(i) => {
                        self.bump()?;
                        Ok(Operand::Literal(Value::Int(-i)))
                    }
                    Tok::Float(f) => {
                        self.bump()?;
                        Ok(Operand::Literal(Value::Float(-f)))
                    }
                    other => {
                        self.tok = other;
                        Err(self.err("expected number after '-'"))
                    }
                }
            }
            Tok::Ident(s) if s.eq_ignore_ascii_case("NOW") => {
                self.bump()?;
                self.expect_sym("(")?;
                self.expect_sym(")")?;
                let mut offset = 0i64;
                match &self.tok {
                    Tok::Sym("-") => {
                        self.bump()?;
                        offset = -self.int_literal()?;
                    }
                    Tok::Sym("+") => {
                        self.bump()?;
                        offset = self.int_literal()?;
                    }
                    _ => {}
                }
                Ok(Operand::Now {
                    offset_secs: offset,
                })
            }
            other => {
                self.tok = other;
                Err(self.err("expected literal or NOW()"))
            }
        }
    }

    fn int_literal(&mut self) -> Result<i64, StoreError> {
        match self.tok {
            Tok::Int(i) => {
                self.bump()?;
                Ok(i)
            }
            _ => Err(self.err("expected integer literal")),
        }
    }
}

/// Normalizes query text for hashing: collapse whitespace runs. (Two
/// queries differing only in spacing get the same queryId.)
fn normalize(src: &str) -> String {
    src.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};

    fn flow_schema() -> Schema {
        Schema::new(
            "Flow",
            vec![
                ColumnDef::new("ts", DataType::Int, true),
                ColumnDef::new("SrcPort", DataType::Int, true),
                ColumnDef::new("LocalPort", DataType::Int, true),
                ColumnDef::new("Bytes", DataType::Int, true),
                ColumnDef::new("Packets", DataType::Int, false),
                ColumnDef::new("App", DataType::Str, true),
            ],
        )
    }

    #[test]
    fn parses_the_papers_queries() {
        let q1 = Query::parse(
            "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80 AND ts <= NOW() AND ts >= NOW() - 86400",
        )
        .unwrap();
        assert_eq!(q1.agg, AggFunc::Sum);
        assert_eq!(q1.agg_column.as_deref(), Some("Bytes"));
        assert_eq!(q1.table, "Flow");
        assert_eq!(q1.predicates.len(), 3);
        assert_eq!(
            q1.predicates[2].operand,
            Operand::Now {
                offset_secs: -86400
            }
        );

        let q2 = Query::parse("SELECT COUNT(*) FROM Flow WHERE Bytes > 20000").unwrap();
        assert_eq!(q2.agg, AggFunc::Count);
        assert_eq!(q2.agg_column, None);

        let q3 = Query::parse("SELECT AVG(Bytes) FROM Flow WHERE App='SMB'").unwrap();
        assert_eq!(
            q3.predicates[0].operand,
            Operand::Literal(Value::from("SMB"))
        );

        let q4 = Query::parse("SELECT SUM(Packets) FROM Flow WHERE LocalPort < 1024").unwrap();
        assert_eq!(q4.predicates[0].op, CmpOp::Lt);
    }

    #[test]
    fn binding_resolves_now_and_columns() {
        let q = Query::parse("SELECT SUM(Bytes) FROM Flow WHERE ts >= NOW() - 3600").unwrap();
        let b = q.bind(&flow_schema(), 10_000).unwrap();
        assert_eq!(b.agg_column, Some(3));
        assert_eq!(b.predicates[0].column, 0);
        assert_eq!(b.predicates[0].value, Value::Int(6_400));
    }

    #[test]
    fn bind_errors() {
        let s = flow_schema();
        let q = Query::parse("SELECT SUM(Bytes) FROM Packet").unwrap();
        assert!(matches!(q.bind(&s, 0), Err(StoreError::UnknownTable(_))));
        let q = Query::parse("SELECT SUM(Nope) FROM Flow").unwrap();
        assert!(matches!(q.bind(&s, 0), Err(StoreError::UnknownColumn(_))));
        let q = Query::parse("SELECT SUM(App) FROM Flow").unwrap();
        assert!(matches!(q.bind(&s, 0), Err(StoreError::BadAggregate(_))));
        let q = Query::parse("SELECT COUNT(*) FROM Flow WHERE App=5").unwrap();
        assert!(matches!(
            q.bind(&s, 0),
            Err(StoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(Query::parse("FROBNICATE").is_err());
        assert!(Query::parse("SELECT MEDIAN(x) FROM T").is_err());
        assert!(Query::parse("SELECT SUM(*) FROM T").is_err());
        assert!(Query::parse("SELECT COUNT(*) FROM T WHERE a ==").is_err());
        assert!(Query::parse("SELECT COUNT(*) FROM T extra stuff").is_err());
        assert!(Query::parse("SELECT COUNT(*) FROM T WHERE s = 'unterminated").is_err());
    }

    #[test]
    fn operators_and_literals() {
        let q = Query::parse(
            "select count(*) from T where a != 1 and b <> 2 and c <= 3.5 and d >= -4 and e = 'x y'",
        )
        .unwrap();
        assert_eq!(q.predicates[0].op, CmpOp::Ne);
        assert_eq!(q.predicates[1].op, CmpOp::Ne);
        assert_eq!(q.predicates[2].operand, Operand::Literal(Value::Float(3.5)));
        assert_eq!(q.predicates[3].operand, Operand::Literal(Value::Int(-4)));
        assert_eq!(
            q.predicates[4].operand,
            Operand::Literal(Value::from("x y"))
        );
    }

    #[test]
    fn text_is_normalized_for_hashing() {
        let a = Query::parse("SELECT COUNT(*)   FROM  Flow").unwrap();
        let b = Query::parse("SELECT COUNT(*) FROM Flow").unwrap();
        assert_eq!(a.text, b.text);
    }

    #[test]
    fn group_by_parses_and_binds() {
        let q = Query::parse("SELECT SUM(Bytes) FROM Flow WHERE Bytes > 0 GROUP BY App").unwrap();
        assert_eq!(q.group_by.as_deref(), Some("App"));
        let b = q.bind(&flow_schema(), 0).unwrap();
        assert_eq!(b.group_by, Some(5));
        // Plain queries have no grouping.
        let q = Query::parse("SELECT COUNT(*) FROM Flow").unwrap();
        assert_eq!(q.group_by, None);
        // Unknown group column fails at bind.
        let q = Query::parse("SELECT COUNT(*) FROM Flow GROUP BY nope").unwrap();
        assert!(matches!(
            q.bind(&flow_schema(), 0),
            Err(StoreError::UnknownColumn(_))
        ));
        // GROUP without BY is a parse error.
        assert!(Query::parse("SELECT COUNT(*) FROM Flow GROUP App").is_err());
    }

    #[test]
    fn cmpop_eval_table() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal));
        assert!(!CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Less) && CmpOp::Ne.eval(Greater) && !CmpOp::Ne.eval(Equal));
        assert!(CmpOp::Le.eval(Equal) && CmpOp::Le.eval(Less) && !CmpOp::Le.eval(Greater));
        assert!(CmpOp::Ge.eval(Equal) && CmpOp::Ge.eval(Greater) && !CmpOp::Ge.eval(Less));
    }
}
