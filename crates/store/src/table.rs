//! Columnar table storage.
//!
//! Tables are append-only column vectors — all the engine needs for
//! Seaweed's read-only distributed queries and endsystem-local inserts.
//! String columns are dictionary-encoded: the Anemone workload stores
//! low-cardinality values (application names, protocols) in them.

use crate::error::StoreError;
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// Physical storage of one column.
#[derive(Clone, Debug)]
pub enum ColumnData {
    Ints(Vec<i64>),
    Floats(Vec<f64>),
    /// Dictionary codes plus the dictionary itself.
    Strs {
        codes: Vec<u32>,
        dict: Vec<String>,
    },
}

impl ColumnData {
    fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::Int => ColumnData::Ints(Vec::new()),
            DataType::Float => ColumnData::Floats(Vec::new()),
            DataType::Str => ColumnData::Strs {
                codes: Vec::new(),
                dict: Vec::new(),
            },
        }
    }

    fn len(&self) -> usize {
        match self {
            ColumnData::Ints(v) => v.len(),
            ColumnData::Floats(v) => v.len(),
            ColumnData::Strs { codes, .. } => codes.len(),
        }
    }
}

/// A horizontally partitioned table's local fragment.
#[derive(Clone, Debug)]
pub struct Table {
    schema: Schema,
    columns: Vec<ColumnData>,
}

impl Table {
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .columns
            .iter()
            .map(|c| ColumnData::new(c.dtype))
            .collect();
        Table { schema, columns }
    }

    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, ColumnData::len)
    }

    /// Appends one row. Values must match the schema's arity and types
    /// (ints are accepted into float columns).
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), StoreError> {
        if row.len() != self.schema.num_columns() {
            return Err(StoreError::BadRow {
                expected: self.schema.num_columns(),
                got: row.len(),
            });
        }
        // Validate all values before mutating any column so a failed
        // insert leaves the table unchanged.
        for (i, v) in row.iter().enumerate() {
            let expected = self.schema.column(i).dtype;
            let ok = matches!(
                (expected, v),
                (DataType::Int, Value::Int(_))
                    | (DataType::Float, Value::Float(_))
                    | (DataType::Float, Value::Int(_))
                    | (DataType::Str, Value::Str(_))
            );
            if !ok {
                return Err(StoreError::TypeMismatch {
                    column: self.schema.column(i).name.clone(),
                    expected: expected.name(),
                    got: v.dtype().name(),
                });
            }
        }
        for (i, v) in row.into_iter().enumerate() {
            match (&mut self.columns[i], v) {
                (ColumnData::Ints(col), Value::Int(x)) => col.push(x),
                (ColumnData::Floats(col), Value::Float(x)) => col.push(x),
                (ColumnData::Floats(col), Value::Int(x)) => col.push(x as f64),
                (ColumnData::Strs { codes, dict }, Value::Str(s)) => {
                    let code = match dict.iter().position(|d| *d == s) {
                        Some(c) => c as u32,
                        None => {
                            dict.push(s);
                            (dict.len() - 1) as u32
                        }
                    };
                    codes.push(code);
                }
                _ => unreachable!("validated above"),
            }
        }
        Ok(())
    }

    /// Reads one cell.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> Value {
        match &self.columns[col] {
            ColumnData::Ints(v) => Value::Int(v[row]),
            ColumnData::Floats(v) => Value::Float(v[row]),
            ColumnData::Strs { codes, dict } => Value::Str(dict[codes[row] as usize].clone()),
        }
    }

    /// Raw access to a column (used by scans and histogram building).
    #[must_use]
    pub fn column(&self, col: usize) -> &ColumnData {
        &self.columns[col]
    }

    /// Approximate resident bytes of the fragment — drives the analytic
    /// models' d parameter when measured from generated workloads.
    #[must_use]
    pub fn approx_bytes(&self) -> u64 {
        let mut total = 0u64;
        for c in &self.columns {
            total += match c {
                ColumnData::Ints(v) => (v.len() * 8) as u64,
                ColumnData::Floats(v) => (v.len() * 8) as u64,
                ColumnData::Strs { codes, dict } => {
                    (codes.len() * 4) as u64 + dict.iter().map(|s| s.len() as u64 + 24).sum::<u64>()
                }
            };
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn table() -> Table {
        Table::new(Schema::new(
            "Flow",
            vec![
                ColumnDef::new("ts", DataType::Int, true),
                ColumnDef::new("Bytes", DataType::Float, false),
                ColumnDef::new("App", DataType::Str, true),
            ],
        ))
    }

    #[test]
    fn insert_and_get() {
        let mut t = table();
        t.insert(vec![
            Value::Int(100),
            Value::Float(1.5),
            Value::from("HTTP"),
        ])
        .unwrap();
        t.insert(vec![Value::Int(200), Value::Int(3), Value::from("SMB")])
            .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.get(0, 0), Value::Int(100));
        assert_eq!(t.get(1, 1), Value::Float(3.0)); // int widened
        assert_eq!(t.get(1, 2), Value::from("SMB"));
    }

    #[test]
    fn dictionary_reuses_codes() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::Float(0.0), Value::from("HTTP")])
                .unwrap();
        }
        match t.column(2) {
            ColumnData::Strs { dict, codes } => {
                assert_eq!(dict.len(), 1);
                assert!(codes.iter().all(|&c| c == 0));
            }
            _ => panic!("wrong column type"),
        }
    }

    #[test]
    fn bad_rows_rejected_atomically() {
        let mut t = table();
        assert!(matches!(
            t.insert(vec![Value::Int(1)]),
            Err(StoreError::BadRow {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            t.insert(vec![Value::from("x"), Value::Float(0.0), Value::from("y")]),
            Err(StoreError::TypeMismatch { .. })
        ));
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn approx_bytes_grows() {
        let mut t = table();
        let before = t.approx_bytes();
        t.insert(vec![Value::Int(1), Value::Float(2.0), Value::from("DNS")])
            .unwrap();
        assert!(t.approx_bytes() > before);
    }
}
