//! Error type for the store crate.

use std::fmt;

/// Errors from parsing, binding or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Lexical or syntactic error in the SQL text.
    Parse { pos: usize, message: String },
    /// The query references an unknown table.
    UnknownTable(String),
    /// The query references an unknown column.
    UnknownColumn(String),
    /// A value or operation does not fit the column type.
    TypeMismatch {
        column: String,
        expected: &'static str,
        got: &'static str,
    },
    /// Row shape does not match the schema.
    BadRow { expected: usize, got: usize },
    /// The aggregate function cannot apply to this column type.
    BadAggregate(String),
    /// A data provider was asked to execute a query it has no answers
    /// for (pre-computed providers serve a fixed query set).
    UnknownQuery(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            StoreError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            StoreError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            StoreError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch on {column}: expected {expected}, got {got}"
                )
            }
            StoreError::BadRow { expected, got } => {
                write!(f, "bad row: expected {expected} values, got {got}")
            }
            StoreError::BadAggregate(m) => write!(f, "bad aggregate: {m}"),
            StoreError::UnknownQuery(q) => write!(f, "query not pre-registered: {q}"),
        }
    }
}

impl std::error::Error for StoreError {}
