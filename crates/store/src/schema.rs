//! Table schemas.
//!
//! The paper assumes "for any given application there is a standard schema
//! across endsystems" (§2): every endsystem holds a horizontal partition
//! of each table. A [`Schema`] is shared application-wide; histograms are
//! maintained on columns marked `indexed`.

use crate::error::StoreError;
use crate::value::DataType;

/// One column of a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub dtype: DataType,
    /// Indexed columns get histograms in the endsystem's data summary.
    pub indexed: bool,
}

impl ColumnDef {
    #[must_use]
    pub fn new(name: &str, dtype: DataType, indexed: bool) -> Self {
        ColumnDef {
            name: name.to_owned(),
            dtype,
            indexed,
        }
    }
}

/// Schema of one table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    pub table: String,
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    /// # Panics
    /// Panics on duplicate column names (a schema is application code).
    #[must_use]
    pub fn new(table: &str, columns: Vec<ColumnDef>) -> Self {
        for (i, a) in columns.iter().enumerate() {
            for b in &columns[..i] {
                assert!(
                    !a.name.eq_ignore_ascii_case(&b.name),
                    "duplicate column {}",
                    a.name
                );
            }
        }
        Schema {
            table: table.to_owned(),
            columns,
        }
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Result<usize, StoreError> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| StoreError::UnknownColumn(name.to_owned()))
    }

    #[must_use]
    pub fn column(&self, idx: usize) -> &ColumnDef {
        &self.columns[idx]
    }

    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Indices of all indexed columns.
    #[must_use]
    pub fn indexed_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.indexed)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            "Flow",
            vec![
                ColumnDef::new("ts", DataType::Int, true),
                ColumnDef::new("SrcPort", DataType::Int, true),
                ColumnDef::new("Bytes", DataType::Int, false),
                ColumnDef::new("App", DataType::Str, true),
            ],
        )
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.column_index("srcport").unwrap(), 1);
        assert_eq!(s.column_index("TS").unwrap(), 0);
        assert!(matches!(
            s.column_index("nope"),
            Err(StoreError::UnknownColumn(_))
        ));
    }

    #[test]
    fn indexed_columns_listed() {
        assert_eq!(schema().indexed_columns(), vec![0, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_rejected() {
        let _ = Schema::new(
            "T",
            vec![
                ColumnDef::new("a", DataType::Int, false),
                ColumnDef::new("A", DataType::Str, false),
            ],
        );
    }
}
