#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! A per-endsystem relational engine.
//!
//! Every endsystem in Seaweed runs queries and updates against its own
//! local database (the paper's prototype used SQL Server 2005). This crate
//! is our from-scratch replacement: a small columnar engine with
//!
//! * typed schemas and tables ([`schema`], [`table`]),
//! * a hand-written parser for the paper's SQL subset — single-table
//!   `SELECT <aggregate> FROM <table> WHERE <conjunction>` with `NOW()`
//!   arithmetic ([`sql`]),
//! * aggregate execution with mergeable partial aggregates so results can
//!   be combined in-network ([`exec`]),
//! * equi-depth histograms on indexed columns and histogram-based
//!   row-count estimation ([`histogram`]), and
//! * per-endsystem data summaries — the "h" metadata replicated to the
//!   DHT for completeness prediction ([`summary`]).
//!
//! Queries are *parsed* once at the injection endsystem, *bound* (NOW()
//! resolved, columns checked) against the shared application schema, and
//! then either executed against a live table or estimated against a
//! replicated summary on behalf of an unavailable endsystem.

pub mod error;
pub mod exec;
pub mod histogram;
pub mod schema;
pub mod sql;
pub mod summary;
pub mod table;
pub mod value;

pub use error::StoreError;
pub use exec::{AggFunc, Aggregate};
pub use histogram::{ColumnHistogram, StringHistogram};
pub use schema::{ColumnDef, Schema};
pub use sql::{BoundQuery, CmpOp, Comparison, Query};
pub use summary::DataSummary;
pub use table::Table;
pub use value::{DataType, Value};
