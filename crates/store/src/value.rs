//! Values and data types.

use std::cmp::Ordering;
use std::fmt;

/// Column data types. Timestamps are stored as [`DataType::Int`] seconds
/// since the simulation epoch (matching the paper's `ts <= NOW()` idiom).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DataType {
    Int,
    Float,
    Str,
}

impl DataType {
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
        }
    }
}

/// A single scalar value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    #[must_use]
    pub fn dtype(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Numeric view (ints widen to f64); `None` for strings.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(_) => None,
        }
    }

    /// Compares two values, coercing Int/Float; string-vs-number is not
    /// comparable.
    #[must_use]
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_coerces_numerics() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(4.0).compare(&Value::Int(3)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn strings_compare_lexically_and_not_with_numbers() {
        assert_eq!(
            Value::from("abc").compare(&Value::from("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::from("x").compare(&Value::Int(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::from("SMB").to_string(), "'SMB'");
    }
}
