//! Query execution and mergeable partial aggregates.
//!
//! Seaweed aggregates results *in-network* (§3.4): each aggregation-tree
//! vertex combines the partial aggregates of its children. [`Aggregate`]
//! is therefore a commutative monoid — `merge` is associative and
//! insensitive to arrival order — carrying enough state for COUNT, SUM,
//! AVG (sum + count), MIN and MAX. The row count also doubles as the
//! completeness numerator: "completeness is defined as the ratio of tuples
//! processed to the total number of tuples relevant to the query" (§1).

use crate::error::StoreError;
use crate::sql::BoundQuery;
use crate::table::{ColumnData, Table};
use crate::value::Value;

/// Supported aggregate functions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// A mergeable partial aggregate.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Aggregate {
    pub func: AggFunc,
    /// Rows folded in (the completeness numerator).
    pub rows: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Aggregate {
    /// The identity element for `func`.
    #[must_use]
    pub fn empty(func: AggFunc) -> Self {
        Aggregate {
            func,
            rows: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one value in (`0.0` for pure COUNT(*) rows).
    pub fn fold(&mut self, v: f64) {
        self.rows += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another partial aggregate of the same function.
    ///
    /// # Panics
    /// Panics (in debug) if the functions differ.
    pub fn merge(&mut self, other: &Aggregate) {
        debug_assert_eq!(self.func, other.func, "merging different aggregates");
        self.rows += other.rows;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The final scalar answer; `None` when no rows matched (SQL NULL).
    #[must_use]
    pub fn finish(&self) -> Option<f64> {
        match self.func {
            AggFunc::Count => Some(self.rows as f64),
            AggFunc::Sum => Some(self.sum),
            AggFunc::Avg => {
                if self.rows == 0 {
                    None
                } else {
                    Some(self.sum / self.rows as f64)
                }
            }
            AggFunc::Min => (self.rows > 0).then_some(self.min),
            AggFunc::Max => (self.rows > 0).then_some(self.max),
        }
    }
}

/// Executes a bound query against a local table fragment (ignoring any
/// `GROUP BY`; see [`execute_grouped`]).
pub fn execute(query: &BoundQuery, table: &Table) -> Result<Aggregate, StoreError> {
    let mut agg = Aggregate::empty(query.agg);
    let rows = matching_rows(query, table);
    match query.agg_column {
        None => {
            for _ in rows {
                agg.fold(0.0);
            }
        }
        Some(col) => match table.column(col) {
            ColumnData::Ints(v) => {
                for r in rows {
                    agg.fold(v[r] as f64);
                }
            }
            ColumnData::Floats(v) => {
                for r in rows {
                    agg.fold(v[r]);
                }
            }
            ColumnData::Strs { .. } => {
                if query.agg == AggFunc::Count {
                    for _ in rows {
                        agg.fold(0.0);
                    }
                } else {
                    return Err(StoreError::BadAggregate(
                        "numeric aggregate over string column".into(),
                    ));
                }
            }
        },
    }
    Ok(agg)
}

/// Executes several bound queries against the same local table fragment
/// in **one pass over the rows** (shared-scan batching): each row is
/// visited once and offered to every query. Per query, rows are folded
/// in the same ascending row order as [`execute`], so each returned
/// aggregate is bit-identical to running that query alone — only the
/// scan cost is shared, never the answer.
pub fn execute_batch(queries: &[&BoundQuery], table: &Table) -> Vec<Result<Aggregate, StoreError>> {
    /// Per-query fold source, resolved once before the row walk.
    enum Src<'a> {
        CountOnly,
        Ints(&'a [i64]),
        Floats(&'a [f64]),
        Bad,
    }
    let mut aggs: Vec<Result<Aggregate, StoreError>> = Vec::with_capacity(queries.len());
    let mut srcs: Vec<Src> = Vec::with_capacity(queries.len());
    for q in queries {
        let src = match q.agg_column {
            None => Src::CountOnly,
            Some(col) => match table.column(col) {
                ColumnData::Ints(v) => Src::Ints(v),
                ColumnData::Floats(v) => Src::Floats(v),
                ColumnData::Strs { .. } if q.agg == AggFunc::Count => Src::CountOnly,
                ColumnData::Strs { .. } => Src::Bad,
            },
        };
        aggs.push(match src {
            Src::Bad => Err(StoreError::BadAggregate(
                "numeric aggregate over string column".into(),
            )),
            _ => Ok(Aggregate::empty(q.agg)),
        });
        srcs.push(src);
    }
    for r in 0..table.num_rows() {
        for (i, q) in queries.iter().enumerate() {
            let Ok(agg) = &mut aggs[i] else { continue };
            if !row_matches(q, table, r) {
                continue;
            }
            match srcs[i] {
                Src::CountOnly => agg.fold(0.0),
                Src::Ints(v) => agg.fold(v[r] as f64),
                Src::Floats(v) => agg.fold(v[r]),
                Src::Bad => unreachable!("flagged as Err above"),
            }
        }
    }
    aggs
}

/// Executes a `GROUP BY` aggregate against a local table fragment,
/// returning one partial aggregate per group value, sorted by group key.
///
/// Grouped queries are a *local-engine* feature: Seaweed's in-network
/// aggregation carries scalar aggregates (the paper's scope), so grouped
/// distributed queries belong in a layer above (§1.3: "functionality ...
/// could be provided in a layer above Seaweed"). [`merge_grouped`]
/// combines fragments' grouped results for such a layer.
pub fn execute_grouped(
    query: &BoundQuery,
    table: &Table,
) -> Result<Vec<(Value, Aggregate)>, StoreError> {
    let group_col = query
        .group_by
        .ok_or_else(|| StoreError::BadAggregate("execute_grouped without GROUP BY".into()))?;
    let mut groups: Vec<(Value, Aggregate)> = Vec::new();
    let mut upsert =
        |key: Value, v: f64, agg_fn: AggFunc| match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, a)) => a.fold(v),
            None => {
                let mut a = Aggregate::empty(agg_fn);
                a.fold(v);
                groups.push((key, a));
            }
        };
    for r in 0..table.num_rows() {
        if !row_matches(query, table, r) {
            continue;
        }
        let key = table.get(r, group_col);
        let v = match query.agg_column {
            None => 0.0,
            Some(col) => match table.get(r, col) {
                Value::Int(i) => i as f64,
                Value::Float(f) => f,
                Value::Str(_) if query.agg == AggFunc::Count => 0.0,
                Value::Str(_) => {
                    return Err(StoreError::BadAggregate(
                        "numeric aggregate over string column".into(),
                    ))
                }
            },
        };
        upsert(key, v, query.agg);
    }
    groups.sort_by(|(a, _), (b, _)| a.compare(b).unwrap_or(std::cmp::Ordering::Equal));
    Ok(groups)
}

/// Merges two grouped partial results (e.g. from different endsystems'
/// fragments), preserving sorted group order.
#[must_use]
pub fn merge_grouped(
    mut left: Vec<(Value, Aggregate)>,
    right: &[(Value, Aggregate)],
) -> Vec<(Value, Aggregate)> {
    for (key, agg) in right {
        match left.iter_mut().find(|(k, _)| k == key) {
            Some((_, a)) => a.merge(agg),
            None => left.push((key.clone(), *agg)),
        }
    }
    left.sort_by(|(a, _), (b, _)| a.compare(b).unwrap_or(std::cmp::Ordering::Equal));
    left
}

/// Exact count of rows matching the query's predicates — used both for
/// execution and as the ground-truth row count behind completeness.
#[must_use]
pub fn count_matching(query: &BoundQuery, table: &Table) -> u64 {
    matching_rows(query, table).count() as u64
}

/// Iterator over matching row indices.
fn matching_rows<'a>(query: &'a BoundQuery, table: &'a Table) -> impl Iterator<Item = usize> + 'a {
    (0..table.num_rows()).filter(move |&r| row_matches(query, table, r))
}

fn row_matches(query: &BoundQuery, table: &Table, row: usize) -> bool {
    query.predicates.iter().all(|p| {
        let cell = cell_matches(table.column(p.column), row, p);
        cell
    })
}

fn cell_matches(col: &ColumnData, row: usize, p: &crate::sql::Comparison) -> bool {
    match (col, &p.value) {
        (ColumnData::Ints(v), Value::Int(x)) => p.op.eval(v[row].cmp(x)),
        (ColumnData::Ints(v), Value::Float(x)) => {
            (v[row] as f64).partial_cmp(x).is_some_and(|o| p.op.eval(o))
        }
        (ColumnData::Floats(v), Value::Int(x)) => v[row]
            .partial_cmp(&(*x as f64))
            .is_some_and(|o| p.op.eval(o)),
        (ColumnData::Floats(v), Value::Float(x)) => {
            v[row].partial_cmp(x).is_some_and(|o| p.op.eval(o))
        }
        (ColumnData::Strs { codes, dict }, Value::Str(s)) => {
            p.op.eval(dict[codes[row] as usize].as_str().cmp(s.as_str()))
        }
        _ => false, // bind() prevents incompatible comparisons
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, Schema};
    use crate::sql::Query;
    use crate::value::DataType;

    fn flow_table() -> Table {
        let schema = Schema::new(
            "Flow",
            vec![
                ColumnDef::new("ts", DataType::Int, true),
                ColumnDef::new("SrcPort", DataType::Int, true),
                ColumnDef::new("Bytes", DataType::Int, true),
                ColumnDef::new("App", DataType::Str, true),
            ],
        );
        let mut t = Table::new(schema);
        let rows = [
            (100, 80, 5_000, "HTTP"),
            (200, 80, 25_000, "HTTP"),
            (300, 445, 40_000, "SMB"),
            (400, 443, 1_000, "HTTPS"),
            (500, 80, 15_000, "HTTP"),
            (600, 445, 30_000, "SMB"),
        ];
        for (ts, port, bytes, app) in rows {
            t.insert(vec![
                Value::Int(ts),
                Value::Int(port),
                Value::Int(bytes),
                Value::from(app),
            ])
            .unwrap();
        }
        t
    }

    fn run(sql: &str, now: i64) -> (Aggregate, Table) {
        let t = flow_table();
        let q = Query::parse(sql).unwrap().bind(t.schema(), now).unwrap();
        (execute(&q, &t).unwrap(), t)
    }

    #[test]
    fn sum_with_equality() {
        let (agg, _) = run("SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80", 0);
        assert_eq!(agg.rows, 3);
        assert_eq!(agg.finish(), Some(45_000.0));
    }

    #[test]
    fn count_star_with_range() {
        let (agg, _) = run("SELECT COUNT(*) FROM Flow WHERE Bytes > 20000", 0);
        assert_eq!(agg.finish(), Some(3.0));
    }

    #[test]
    fn avg_over_string_predicate() {
        let (agg, _) = run("SELECT AVG(Bytes) FROM Flow WHERE App='SMB'", 0);
        assert_eq!(agg.finish(), Some(35_000.0));
    }

    #[test]
    fn min_max() {
        let (mn, _) = run("SELECT MIN(Bytes) FROM Flow", 0);
        assert_eq!(mn.finish(), Some(1_000.0));
        let (mx, _) = run("SELECT MAX(Bytes) FROM Flow", 0);
        assert_eq!(mx.finish(), Some(40_000.0));
    }

    #[test]
    fn now_window() {
        // NOW() = 450: ts in [NOW()-250, NOW()] = [200, 450].
        let (agg, _) = run(
            "SELECT COUNT(*) FROM Flow WHERE ts <= NOW() AND ts >= NOW() - 250",
            450,
        );
        assert_eq!(agg.finish(), Some(3.0)); // ts 200, 300, 400
    }

    #[test]
    fn empty_result_is_null_for_avg_min_max() {
        let (avg, _) = run("SELECT AVG(Bytes) FROM Flow WHERE SrcPort=9999", 0);
        assert_eq!(avg.finish(), None);
        let (mn, _) = run("SELECT MIN(Bytes) FROM Flow WHERE SrcPort=9999", 0);
        assert_eq!(mn.finish(), None);
        let (cnt, _) = run("SELECT COUNT(*) FROM Flow WHERE SrcPort=9999", 0);
        assert_eq!(cnt.finish(), Some(0.0));
    }

    #[test]
    fn merge_is_order_insensitive_and_matches_whole() {
        let t = flow_table();
        let q = Query::parse("SELECT AVG(Bytes) FROM Flow WHERE SrcPort=80")
            .unwrap()
            .bind(t.schema(), 0)
            .unwrap();
        let whole = execute(&q, &t).unwrap();

        // Split the table into two fragments and merge partials.
        let mut frag1 = Table::new(t.schema().clone());
        let mut frag2 = Table::new(t.schema().clone());
        for r in 0..t.num_rows() {
            let row: Vec<Value> = (0..4).map(|c| t.get(r, c)).collect();
            if r % 2 == 0 {
                frag1.insert(row).unwrap();
            } else {
                frag2.insert(row).unwrap();
            }
        }
        let a1 = execute(&q, &frag1).unwrap();
        let a2 = execute(&q, &frag2).unwrap();
        let mut m12 = a1;
        m12.merge(&a2);
        let mut m21 = a2;
        m21.merge(&a1);
        assert_eq!(m12, m21);
        assert_eq!(m12.finish(), whole.finish());
        assert_eq!(m12.rows, whole.rows);
    }

    #[test]
    fn count_matching_agrees_with_execute() {
        let t = flow_table();
        let q = Query::parse("SELECT SUM(Bytes) FROM Flow WHERE Bytes >= 15000")
            .unwrap()
            .bind(t.schema(), 0)
            .unwrap();
        assert_eq!(count_matching(&q, &t), execute(&q, &t).unwrap().rows);
    }

    #[test]
    fn grouped_execution_and_merge() {
        let t = flow_table();
        let q = Query::parse("SELECT SUM(Bytes) FROM Flow GROUP BY App")
            .unwrap()
            .bind(t.schema(), 0)
            .unwrap();
        let groups = execute_grouped(&q, &t).unwrap();
        let by_key: Vec<(String, f64)> = groups
            .iter()
            .map(|(k, a)| (k.to_string(), a.finish().unwrap()))
            .collect();
        assert_eq!(
            by_key,
            vec![
                ("'HTTP'".to_string(), 45_000.0),
                ("'HTTPS'".to_string(), 1_000.0),
                ("'SMB'".to_string(), 70_000.0),
            ]
        );

        // Split into fragments; merged grouped results equal the whole.
        let mut frag1 = Table::new(t.schema().clone());
        let mut frag2 = Table::new(t.schema().clone());
        for r in 0..t.num_rows() {
            let row: Vec<Value> = (0..4).map(|c| t.get(r, c)).collect();
            if r % 2 == 0 {
                frag1.insert(row).unwrap();
            } else {
                frag2.insert(row).unwrap();
            }
        }
        let g1 = execute_grouped(&q, &frag1).unwrap();
        let g2 = execute_grouped(&q, &frag2).unwrap();
        let merged = merge_grouped(g1, &g2);
        assert_eq!(merged, groups);
    }

    #[test]
    fn grouped_count_star_and_errors() {
        let t = flow_table();
        let q = Query::parse("SELECT COUNT(*) FROM Flow WHERE Bytes >= 15000 GROUP BY SrcPort")
            .unwrap()
            .bind(t.schema(), 0)
            .unwrap();
        let groups = execute_grouped(&q, &t).unwrap();
        let total: u64 = groups.iter().map(|(_, a)| a.rows).sum();
        assert_eq!(total, count_matching(&q, &t));
        // Calling grouped execution without GROUP BY errors.
        let plain = Query::parse("SELECT COUNT(*) FROM Flow")
            .unwrap()
            .bind(t.schema(), 0)
            .unwrap();
        assert!(execute_grouped(&plain, &t).is_err());
    }

    #[test]
    fn string_inequality() {
        let (agg, _) = run("SELECT COUNT(*) FROM Flow WHERE App != 'HTTP'", 0);
        assert_eq!(agg.finish(), Some(3.0));
    }

    #[test]
    fn batch_execution_is_bit_identical_to_solo() {
        let t = flow_table();
        let sqls = [
            "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80",
            "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000",
            "SELECT AVG(Bytes) FROM Flow WHERE App='SMB'",
            "SELECT MIN(Bytes) FROM Flow",
            "SELECT MAX(Bytes) FROM Flow WHERE SrcPort=9999", // matches nothing
            "SELECT COUNT(App) FROM Flow WHERE App != 'HTTP'", // string COUNT
        ];
        let bound: Vec<_> = sqls
            .iter()
            .map(|s| Query::parse(s).unwrap().bind(t.schema(), 0).unwrap())
            .collect();
        let refs: Vec<&BoundQuery> = bound.iter().collect();
        let batch = execute_batch(&refs, &t);
        for (i, (q, b)) in bound.iter().zip(&batch).enumerate() {
            let solo = execute(q, &t).unwrap();
            let b = b.as_ref().unwrap();
            assert_eq!(solo, *b, "batch diverged for {:?}", sqls[i]);
            // Bit-level f64 agreement, beyond PartialEq.
            assert_eq!(solo.sum.to_bits(), b.sum.to_bits());
            assert_eq!(solo.min.to_bits(), b.min.to_bits());
            assert_eq!(solo.max.to_bits(), b.max.to_bits());
        }
    }

    #[test]
    fn batch_isolates_per_query_errors() {
        let t = flow_table();
        let good = Query::parse("SELECT COUNT(*) FROM Flow")
            .unwrap()
            .bind(t.schema(), 0)
            .unwrap();
        // SUM over a string column fails at execution; `bind` rejects the
        // SQL form, so build the bound query directly (the execution
        // guard still has to hold for hand-built bindings).
        let bad = BoundQuery {
            agg: AggFunc::Sum,
            agg_column: Some(3), // App (string)
            predicates: Vec::new(),
            group_by: None,
        };
        let out = execute_batch(&[&good, &bad, &good], &t);
        assert_eq!(out[0].as_ref().unwrap().finish(), Some(6.0));
        assert!(out[1].is_err());
        assert_eq!(out[2].as_ref().unwrap().finish(), Some(6.0));
        // The solo path agrees that it errors.
        assert!(execute(&bad, &t).is_err());
    }

    proptest::proptest! {
        /// Shared-scan batching over random fragments and predicate mixes
        /// returns, per query, exactly the solo-execution aggregate.
        #[test]
        fn batch_matches_solo_on_random_tables(
            rows in proptest::collection::vec((0i64..1000, 0i64..4, -500i64..500), 0..64),
            ports in proptest::collection::vec(0i64..4, 1..6),
        ) {
            let schema = Schema::new(
                "T",
                vec![
                    ColumnDef::new("ts", DataType::Int, true),
                    ColumnDef::new("p", DataType::Int, true),
                    ColumnDef::new("v", DataType::Int, true),
                ],
            );
            let mut t = Table::new(schema);
            for (ts, p, v) in rows {
                t.insert(vec![Value::Int(ts), Value::Int(p), Value::Int(v)]).unwrap();
            }
            let bound: Vec<BoundQuery> = ports
                .iter()
                .map(|p| {
                    Query::parse(&format!("SELECT SUM(v) FROM T WHERE p = {p}"))
                        .unwrap()
                        .bind(t.schema(), 0)
                        .unwrap()
                })
                .collect();
            let refs: Vec<&BoundQuery> = bound.iter().collect();
            let batch = execute_batch(&refs, &t);
            for (q, b) in bound.iter().zip(&batch) {
                let solo = execute(q, &t).unwrap();
                let b = b.as_ref().unwrap();
                proptest::prop_assert_eq!(&solo, b);
                proptest::prop_assert_eq!(solo.sum.to_bits(), b.sum.to_bits());
            }
        }
    }
}
