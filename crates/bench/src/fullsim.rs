//! The packet-level full-stack runner behind Figures 9 and 10.
//!
//! Builds the complete system — CorpNet-like topology, Pastry overlay,
//! Seaweed protocols, pre-computed Anemone data plane — replays an
//! availability trace, injects queries at given instants, and returns the
//! bandwidth report plus protocol statistics.

use seaweed_availability::AvailabilityTrace;
use seaweed_core::{Precomputed, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig, OverlayStats};
use seaweed_sim::{BandwidthReport, CorpNetTopology, Engine, SimConfig, Topology, UniformTopology};
use seaweed_store::{BoundQuery, Query};
use seaweed_types::{Duration, Time};
use seaweed_workload::{flow_schema, AnemoneConfig};

/// Configuration of a full-stack run.
pub struct FullSimConfig {
    pub seed: u64,
    /// Seed for the endsystemId assignment only (Figure 9(c) varies this
    /// while keeping trace/workload fixed). Defaults to `seed`.
    pub id_seed: u64,
    /// Use the 298-router CorpNet-like topology (default) or a uniform
    /// 5 ms fabric.
    pub corpnet: bool,
    pub collect_cdf: bool,
    pub loss_rate: f64,
    /// Gate traffic generation on the availability trace (machines
    /// generate no data while off). The paper's data came from a
    /// router-side capture and it "pessimistically assumes the total
    /// data size as of the end of the trace" (§4.3), so the overhead
    /// experiments run ungated by default.
    pub gate_data_on_trace: bool,
    pub anemone: AnemoneConfig,
    pub seaweed: SeaweedConfig,
    pub overlay: OverlayConfig,
    /// SQL of the queries that may be injected (must be NOW()-free so
    /// pre-computation is injection-time independent).
    pub queries: Vec<String>,
    /// `(query index, injection time)`; the origin is the first available
    /// endsystem at that instant.
    pub injections: Vec<(usize, Time)>,
    /// Query lifetime.
    pub ttl: Duration,
}

impl FullSimConfig {
    /// Defaults: CorpNet topology, paper protocol parameters, the
    /// Figure 9 query injected Tuesday 00:00 of week 2 (trace times are
    /// relative to a Monday epoch, mirroring the paper's July 1999
    /// calendar).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FullSimConfig {
            seed,
            id_seed: seed,
            corpnet: true,
            collect_cdf: true,
            loss_rate: 0.0,
            gate_data_on_trace: false,
            // Data volume per endsystem follows the paper's full capture
            // period (3 weeks) regardless of the simulated window.
            anemone: AnemoneConfig::default(),
            seaweed: SeaweedConfig {
                seed,
                // §4.3: histograms pushed with an average period of
                // 17.5 min, randomized phase (the SeaweedConfig default).
                ..Default::default()
            },
            overlay: OverlayConfig {
                seed,
                ..Default::default()
            },
            queries: vec!["SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80".to_owned()],
            injections: vec![(0, Time::ZERO + Duration::from_days(8))],
            ttl: Duration::from_days(30),
        }
    }
}

/// Everything measured in one run.
pub struct FullSimResult {
    pub report: BandwidthReport,
    pub seaweed_stats: seaweed_core::SeaweedStats,
    pub overlay_stats: OverlayStats,
    /// Per injected query: (predictor latency, rows at horizon,
    /// predictor total rows).
    pub queries: Vec<QueryOutcome>,
    pub mean_online: f64,
    pub sim_events: u64,
}

pub struct QueryOutcome {
    pub predictor_latency: Option<Duration>,
    pub rows: u64,
    pub predicted_total: f64,
    pub population_rows: u64,
}

/// Runs the full stack over `trace`.
#[must_use]
pub fn run_full(cfg: &FullSimConfig, trace: &AvailabilityTrace) -> FullSimResult {
    let n = trace.num_endsystems();
    let schema = flow_schema();
    let bound: Vec<BoundQuery> = cfg
        .queries
        .iter()
        .map(|sql| {
            Query::parse(sql)
                .expect("parses")
                .bind(&schema, 0)
                .expect("binds")
        })
        .collect();

    // Stream-generate the data plane: summaries + per-query answers.
    let mut provider = Precomputed::new(n);
    let mut population_rows = vec![0u64; bound.len()];
    for node in 0..n {
        let gate: &[(Time, Time)] = if cfg.gate_data_on_trace {
            trace.intervals(node)
        } else {
            &[]
        };
        let table = cfg.anemone.generate_flow_table(cfg.seed, node, gate);
        provider
            .record_fragment(node, &table, &bound)
            .expect("experiment queries execute against generated fragments");
        for (qi, b) in bound.iter().enumerate() {
            population_rows[qi] += seaweed_store::exec::count_matching(b, &table);
        }
    }

    let topology: Box<dyn Topology> = if cfg.corpnet {
        Box::new(CorpNetTopology::new(n, cfg.seed))
    } else {
        Box::new(UniformTopology::new(n, Duration::from_millis(5)))
    };
    let mut eng: SeaweedEngine = Engine::new(
        topology,
        SimConfig {
            seed: cfg.seed,
            loss_rate: cfg.loss_rate,
            collect_cdf: cfg.collect_cdf,
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(Overlay::random_ids(n, cfg.id_seed), cfg.overlay.clone());
    let mut sw = Seaweed::new(overlay, provider, cfg.seaweed.clone());
    trace.replay_into(&mut eng);

    // Run, pausing at each injection instant.
    let mut injections = cfg.injections.clone();
    injections.sort_by_key(|&(_, t)| t);
    let mut handles: Vec<(usize, seaweed_core::QueryHandle, Time)> = Vec::new();
    for &(qi, at) in &injections {
        sw.run_until(&mut eng, at);
        let origin = eng
            .up_nodes()
            .next()
            .expect("an endsystem is available at injection");
        let h = sw
            .inject_query(&mut eng, origin, &cfg.queries[qi], cfg.ttl, &schema)
            .expect("query injects");
        handles.push((qi, h, at));
    }
    sw.run_until(&mut eng, trace.horizon());

    let queries = handles
        .iter()
        .map(|&(qi, h, at)| {
            let q = sw.query(h);
            QueryOutcome {
                predictor_latency: q.predictor_at.map(|t| t.since(at)),
                rows: q.rows(),
                predicted_total: q
                    .predictor
                    .as_ref()
                    .map_or(0.0, seaweed_core::Predictor::total_rows),
                population_rows: population_rows[qi],
            }
        })
        .collect();

    let mean_online = {
        let s = trace.stats();
        s.mean_availability * n as f64
    };
    let seaweed_stats = sw.stats;
    let overlay_stats = sw.overlay.stats;
    let sim_events = eng.messages_sent;
    let report = eng.finish();
    FullSimResult {
        report,
        seaweed_stats,
        overlay_stats,
        queries,
        mean_online,
        sim_events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaweed_availability::FarsiteConfig;
    use seaweed_sim::TrafficClass;

    #[test]
    fn small_full_stack_run_produces_sane_report() {
        let horizon = Duration::from_days(3);
        let (trace, _) = FarsiteConfig::small(80, 1).generate(9);
        // Trim trace to 3 days by regenerating with matching horizon.
        let mut cfg = FullSimConfig::new(9);
        cfg.injections = vec![(0, Time::ZERO + Duration::from_days(1))];
        // Build a fresh 3-day trace instead of the 1-week default.
        let (trace3, _) = {
            let mut fc = FarsiteConfig::small(80, 1);
            fc.horizon = horizon;
            fc.generate(9)
        };
        drop(trace);
        let result = run_full(&cfg, &trace3);

        // Maintenance traffic dominates overlay traffic (paper Fig 9a).
        let maint = result
            .report
            .mean_tx_per_online_bps(TrafficClass::Maintenance);
        let overlay = result.report.mean_tx_per_online_bps(TrafficClass::Overlay);
        let query = result.report.mean_tx_per_online_bps(TrafficClass::Query);
        assert!(maint > 0.0 && overlay > 0.0 && query > 0.0);
        assert!(
            maint > overlay,
            "maintenance {maint} should exceed overlay {overlay}"
        );

        // The query reached most of the population.
        let q = &result.queries[0];
        assert!(q.predictor_latency.is_some());
        assert!(q.rows > 0);
        assert!(q.rows <= q.population_rows);
        assert!(
            q.rows as f64 > 0.8 * q.population_rows as f64,
            "rows {} of {}",
            q.rows,
            q.population_rows
        );
        assert!(result.sim_events > 0);
    }
}
