//! Parallel fan-out for multi-seed / multi-config sweeps.
//!
//! Every simulation run stays single-threaded and deterministic (the
//! engine's contract); sweeps over seeds or parameter settings are
//! embarrassingly parallel across runs. [`run_sweep`] distributes the
//! items of a sweep over a fixed pool of `std::thread` workers (the
//! dependency set has no rayon/crossbeam) and returns results in input
//! order, so CSV output is byte-identical whatever the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use crate::cli::Args;

/// Worker-thread count for a sweep of `runs` items: the `--jobs N` flag
/// if given, else the `SEAWEED_JOBS` environment variable, else the
/// machine's available parallelism — always clamped to `1..=runs`.
#[must_use]
pub fn jobs(args: &Args, runs: usize) -> usize {
    let default = std::env::var("SEAWEED_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
    args.get("jobs", default).clamp(1, runs.max(1))
}

/// Runs `f(index, &item)` for every item, fanning out over `jobs`
/// worker threads, and returns the results in input order. Items are
/// handed out dynamically (work stealing by shared counter), so uneven
/// run times do not serialize the sweep. With `jobs <= 1` everything
/// runs on the calling thread — handy for debugging and exact baseline
/// comparisons.
///
/// # Panics
/// A panic inside `f` propagates to the caller once the sweep finishes
/// joining its workers.
pub fn run_sweep<T, R, F>(inputs: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = inputs.len();
    if jobs <= 1 || n <= 1 {
        return inputs.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            let tx = tx.clone();
            let (next, inputs, f) = (&next, &inputs, &f);
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i, &inputs[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            results[i] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every sweep item completes"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..40).collect();
        let out = run_sweep(inputs.clone(), 8, |i, &x| {
            // Uneven work so completion order differs from input order.
            let spin = (x * 7919) % 97;
            let mut acc = 0u64;
            for k in 0..spin * 1000 {
                acc = acc.wrapping_add(k);
            }
            (i as u64, x * 2, acc & 1)
        });
        for (i, (idx, doubled, _)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*doubled, inputs[i] * 2);
        }
    }

    #[test]
    fn single_job_runs_inline() {
        let out = run_sweep(vec![1, 2, 3], 1, |_, &x| x + 10);
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn parallel_matches_serial() {
        let inputs: Vec<u64> = (0..25).map(|i| i * 3 + 1).collect();
        let serial = run_sweep(inputs.clone(), 1, |i, &x| x.wrapping_mul(i as u64 + 1));
        let parallel = run_sweep(inputs, 6, |i, &x| x.wrapping_mul(i as u64 + 1));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn jobs_clamps_to_run_count() {
        let args = Args::parse_args(["prog".to_owned()]);
        assert_eq!(jobs(&args, 1), 1);
        assert!(jobs(&args, 64) >= 1);
        let forced = Args::parse_args(["prog".to_owned(), "--jobs".to_owned(), "3".to_owned()]);
        assert_eq!(jobs(&forced, 64), 3);
        assert_eq!(jobs(&forced, 2), 2);
    }
}
