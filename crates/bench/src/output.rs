//! Experiment output: CSV series and aligned console tables.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Writes rows of f64 series as CSV under `results/` (creating the
/// directory), with a header row.
pub fn write_csv(path: &str, header: &[&str], rows: &[Vec<f64>]) {
    let mut out = String::new();
    writeln!(out, "{}", header.join(",")).expect("string write");
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format_num(*v)).collect();
        writeln!(out, "{}", line.join(",")).expect("string write");
    }
    if let Some(dir) = Path::new(path).parent() {
        fs::create_dir_all(dir).expect("create results dir");
    }
    fs::write(path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("  wrote {path} ({} rows)", rows.len());
}

fn format_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1e7 || v.abs() < 1e-3 {
        format!("{v:.6e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.4}")
    }
}

/// An aligned console table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = *w))
                .collect();
            println!("  {}", parts.join("  "));
        };
        line(&self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("  {}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let path = "results/test_output_csv.csv";
        write_csv(path, &["a", "b"], &[vec![1.0, 2.5], vec![1e9, 0.0001]]);
        let body = std::fs::read_to_string(path).unwrap();
        let mut lines = body.lines();
        assert_eq!(lines.next(), Some("a,b"));
        assert_eq!(lines.next(), Some("1,2.5000"));
        let third = lines.next().unwrap();
        assert!(third.starts_with("1.0"), "{third}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new(&["x", "value"]);
        t.row(vec!["1".into(), "long-cell-content".into()]);
        t.print();
    }
}
