//! Minimal command-line flag parsing for experiment binaries.
//!
//! Hand-rolled on purpose — the permitted dependency set has no CLI
//! crate, and the needs are trivial: `--flag value` pairs and boolean
//! switches.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
    program: String,
}

impl Args {
    /// Parses `std::env::args()`.
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_args(std::env::args())
    }

    /// Parses an explicit iterator (first item = program name).
    pub fn parse_args<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut it = iter.into_iter();
        let program = it.next().unwrap_or_default();
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut pending: Option<String> = None;
        for arg in it {
            if let Some(stripped) = arg.strip_prefix("--") {
                if let Some(key) = pending.take() {
                    switches.push(key);
                }
                pending = Some(stripped.to_owned());
            } else if let Some(key) = pending.take() {
                values.insert(key, arg);
            } else {
                eprintln!("ignoring stray argument: {arg}");
            }
        }
        if let Some(key) = pending {
            switches.push(key);
        }
        Args {
            values,
            switches,
            program,
        }
    }

    /// The program name (`argv[0]`).
    #[must_use]
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Is a boolean switch present (e.g. `--full`)?
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.values.get(name) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|e| {
                panic!("bad value for --{name}: {raw} ({e})");
            }),
        }
    }

    /// A string value with a default.
    #[must_use]
    pub fn get_str(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Args {
        Args::parse_args(
            std::iter::once("prog".to_owned()).chain(args.iter().map(|s| (*s).to_owned())),
        )
    }

    #[test]
    fn values_switches_and_defaults() {
        let a = parse(&["--n", "500", "--full", "--out", "results/x.csv", "--flag"]);
        assert_eq!(a.get("n", 100usize), 500);
        assert_eq!(a.get("seed", 7u64), 7);
        assert!(a.has("full"));
        assert!(a.has("flag"));
        assert!(!a.has("quick"));
        assert_eq!(a.get_str("out", "d"), "results/x.csv");
        assert_eq!(a.program(), "prog");
    }

    #[test]
    #[should_panic(expected = "bad value")]
    fn bad_value_panics() {
        let a = parse(&["--n", "xyz"]);
        let _: usize = a.get("n", 1);
    }
}
