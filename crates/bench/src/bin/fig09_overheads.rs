//! Figure 9: packet-level performance overheads of the full stack.
//!
//! * (a) per-online-endsystem bandwidth over time, split into MSPastry /
//!   Seaweed maintenance / query traffic (paper: 20,000 endsystems, mean
//!   69 B/s, maintenance dominating);
//! * (b) the CDF of per-endsystem per-hour transmission bandwidth (99th
//!   percentile 178 B/s tx, 195 B/s rx; y-intercept = unavailability);
//! * (c) insensitivity to endsystemId assignment (5 random assignments,
//!   paper at 8,000 endsystems);
//! * (d) per-endsystem overhead versus network size (maintenance O(1),
//!   query and Pastry O(log N)).
//!
//! Default scale is reduced (documented in EXPERIMENTS.md); pass `--full`
//! for the paper's scale.

use seaweed_availability::FarsiteConfig;
use seaweed_bench::fullsim::{run_full, FullSimConfig};
use seaweed_bench::{jobs, run_sweep, write_csv, Args, OutTable};
use seaweed_sim::TrafficClass;
use seaweed_types::{Duration, Time};

fn main() {
    let args = Args::parse();
    let part = args.get_str("part", "all");
    let full = args.has("full");
    if part == "a" || part == "b" || part == "all" {
        part_ab(&args, full);
    }
    if part == "c" || part == "all" {
        part_c(&args, full);
    }
    if part == "d" || part == "all" {
        part_d(&args, full);
    }
}

fn simulate(
    n: usize,
    weeks: u64,
    seed: u64,
    id_seed: u64,
    collect_cdf: bool,
) -> seaweed_bench::fullsim::FullSimResult {
    let horizon = Duration::WEEK * weeks;
    let (trace, _) = {
        let mut fc = FarsiteConfig::small(n, weeks);
        fc.horizon = horizon;
        fc.generate(seed)
    };
    let mut cfg = FullSimConfig::new(seed);
    cfg.id_seed = id_seed;
    cfg.collect_cdf = collect_cdf;
    cfg.injections = vec![(0, Time::ZERO + Duration::from_days((7 * weeks / 2).max(1)))];
    run_full(&cfg, &trace)
}

fn part_ab(args: &Args, full: bool) {
    let n = args.get("n", if full { 20_000 } else { 2_000 });
    let weeks = args.get("weeks", if full { 4 } else { 2u64 });
    let seed = args.get("seed", 9u64);
    println!("Figure 9(a,b): {n} endsystems, {weeks} weeks, CorpNet topology");
    // lint:allow(D002): operator-facing progress timing for a host-side experiment driver, never feeds simulated time
    let t0 = std::time::Instant::now();
    let result = simulate(n, weeks, seed, seed, true);
    println!(
        "  simulated in {:.1}s ({} messages)",
        t0.elapsed().as_secs_f64(),
        result.sim_events
    );

    // (a) hourly series.
    let rows: Vec<Vec<f64>> = result
        .report
        .tx_hours
        .iter()
        .enumerate()
        .map(|(h, agg)| {
            vec![
                h as f64,
                agg.per_online_bps(TrafficClass::Overlay),
                agg.per_online_bps(TrafficClass::Maintenance),
                agg.per_online_bps(TrafficClass::Query),
                agg.total_per_online_bps(),
            ]
        })
        .collect();
    write_csv(
        "results/fig09a_overhead_timeseries.csv",
        &[
            "hour",
            "pastry_bps",
            "maintenance_bps",
            "query_bps",
            "total_bps",
        ],
        &rows,
    );
    let mut t = OutTable::new(&["component", "mean B/s per online endsystem"]);
    let overlay = result.report.mean_tx_per_online_bps(TrafficClass::Overlay);
    let maint = result
        .report
        .mean_tx_per_online_bps(TrafficClass::Maintenance);
    let query = result.report.mean_tx_per_online_bps(TrafficClass::Query);
    t.row(vec!["MSPastry".into(), format!("{overlay:.1}")]);
    t.row(vec!["Seaweed maintenance".into(), format!("{maint:.1}")]);
    t.row(vec!["Seaweed query".into(), format!("{query:.3}")]);
    t.row(vec![
        "total".into(),
        format!("{:.1}", overlay + maint + query),
    ]);
    t.print();
    println!("  (paper at 20,000 endsystems: total mean 69 B/s, maintenance dominant)");

    // (b) CDF of per-(endsystem, hour) bandwidth.
    let mut rows = Vec::new();
    for pct in 0..=100 {
        rows.push(vec![
            f64::from(result.report.tx_percentile(f64::from(pct))),
            f64::from(result.report.rx_percentile(f64::from(pct))),
            f64::from(pct) / 100.0,
        ]);
    }
    write_csv(
        "results/fig09b_bandwidth_cdf.csv",
        &["tx_bps", "rx_bps", "cdf"],
        &rows,
    );
    println!(
        "  CDF: tx 99th pct {:.0} B/s (paper 178), rx 99th pct {:.0} B/s (paper 195), \
         zero-hours fraction {:.3} (paper: mean unavailability ~0.19)",
        result.report.tx_percentile(99.0),
        result.report.rx_percentile(99.0),
        result.report.tx_zero_fraction(),
    );
}

fn part_c(args: &Args, full: bool) {
    let n = args.get("n", if full { 8_000 } else { 800 });
    let weeks = 1u64;
    let seed = args.get("seed", 9u64);
    let id_seeds: Vec<u64> = (0..5u64).map(|s| 1_000 + s).collect();
    let workers = jobs(args, id_seeds.len());
    println!(
        "\nFigure 9(c): sensitivity to endsystemId assignment \
         ({n} endsystems, {} assignments, {workers} threads)",
        id_seeds.len()
    );
    let results = run_sweep(id_seeds, workers, |_, &id_seed| {
        simulate(n, weeks, seed, id_seed, true)
    });
    let mut curves: Vec<Vec<f64>> = Vec::new();
    let mut means = Vec::new();
    for result in &results {
        means.push(result.report.mean_tx_total_per_online_bps());
        let curve: Vec<f64> = (0..=100)
            .map(|p| f64::from(result.report.tx_percentile(f64::from(p))))
            .collect();
        curves.push(curve);
    }
    let rows: Vec<Vec<f64>> = (0..=100usize)
        .map(|p| {
            let mut row = vec![p as f64 / 100.0];
            row.extend(curves.iter().map(|c| c[p]));
            row
        })
        .collect();
    write_csv(
        "results/fig09c_id_assignment_cdfs.csv",
        &["cdf", "assign0", "assign1", "assign2", "assign3", "assign4"],
        &rows,
    );
    let lo = means.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = means.iter().copied().fold(0.0f64, f64::max);
    println!(
        "  means across assignments: {:.2}..{:.2} B/s (spread {:.2}%); paper: curves visually indistinguishable",
        lo,
        hi,
        100.0 * (hi - lo) / lo,
    );
}

fn part_d(args: &Args, full: bool) {
    let weeks = 1u64;
    let seed = args.get("seed", 9u64);
    let sizes: Vec<usize> = if full {
        vec![2_000, 8_000, 20_000, 51_663]
    } else {
        vec![250, 500, 1_000, 2_000, 4_000]
    };
    let workers = jobs(args, sizes.len());
    println!("\nFigure 9(d): overhead vs network size {sizes:?} ({workers} threads)");
    let results = run_sweep(sizes, workers, |_, &n| {
        (n, simulate(n, weeks, seed, seed, false))
    });
    let mut rows = Vec::new();
    let mut t = OutTable::new(&["N", "pastry B/s", "maintenance B/s", "query B/s"]);
    for (n, result) in &results {
        let overlay = result.report.mean_tx_per_online_bps(TrafficClass::Overlay);
        let maint = result
            .report
            .mean_tx_per_online_bps(TrafficClass::Maintenance);
        let query = result.report.mean_tx_per_online_bps(TrafficClass::Query);
        rows.push(vec![*n as f64, overlay, maint, query]);
        t.row(vec![
            format!("{n}"),
            format!("{overlay:.2}"),
            format!("{maint:.2}"),
            format!("{query:.4}"),
        ]);
    }
    write_csv(
        "results/fig09d_overhead_vs_n.csv",
        &["n", "pastry_bps", "maintenance_bps", "query_bps"],
        &rows,
    );
    t.print();
    println!(
        "  (paper: maintenance O(1); query and Pastry grow O(log N), orders of magnitude lower)"
    );
}
