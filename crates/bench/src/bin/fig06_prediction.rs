//! Figure 6: completeness prediction accuracy for
//! `seaweed_workload::QUERY_LARGE_FLOWS` — predicted vs actual
//! cumulative rows over 48 h, and prediction error across injection days
//! and times of day.

use seaweed_bench::figures::run_prediction_figure;
use seaweed_bench::Args;
use seaweed_workload::QUERY_LARGE_FLOWS;

fn main() {
    let args = Args::parse();
    run_prediction_figure(6, QUERY_LARGE_FLOWS, &args);
}
