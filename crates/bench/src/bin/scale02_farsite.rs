//! Scale 02: the paper's Farsite-scale run, end-to-end at packet level.
//!
//! The paper's evaluation (fig05-08) replays a 51,663-endsystem Farsite
//! corporate-desktop trace. `scale01` stopped at N = 16,000 because the
//! map-based hot state collapsed events/s with population; this sweep
//! runs the arena/SoA layout through N = 4,000 / 8,000 / 16,000 and then
//! the full 51,663-endsystem population: every endsystem joins the
//! overlay, runs the metadata push loop, and one SUM aggregation query
//! covers the whole population. Each point must finish **complete and
//! clean**: completeness 1.0 (every endsystem's row aggregated) and a
//! [`ChaosOracle`] pass over the final state.
//!
//! Two artifacts, same split as scale01:
//!
//! * `results/scale02.csv` — deterministic columns only; with a fixed
//!   `--seed` the file is byte-stable across machines (CI smoke compares
//!   two runs with `cmp`).
//! * `BENCH_scale02.json` — the same points plus wall-clock seconds,
//!   events/second and peak RSS, the machine-dependent numbers backing
//!   the EXPERIMENTS.md entry.

use seaweed_bench::{write_csv, Args, OutTable};
use seaweed_core::{ChaosOracle, LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{CorpNetTopology, Engine, NodeIdx, SimConfig};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

/// The Farsite trace population (paper §4).
const FARSITE_N: usize = 51_663;

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// Process peak resident set (VmHWM) in bytes; 0 where /proc is absent.
/// Monotone over process lifetime, so points are run in ascending N and
/// the figure reported for each point is "peak RSS so far".
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

struct Point {
    n: usize,
    wall_s: f64,
    peak_rss: u64,
    events: u64,
    messages: u64,
    tx_bytes: [u64; 3],
    meta_pushes: u64,
    dissem_msgs: u64,
    predictor_reports: u64,
    result_submissions: u64,
    rows: u64,
}

fn run_point(n: usize, seed: u64) -> Point {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(n);
    for node in 0..n {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .expect("seed row");
        tables.push(t);
    }
    let topo = CorpNetTopology::new(n, seed);
    let mut eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let mut sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );
    // All endsystems come up within the first simulated minute, whatever
    // the population, so per-endsystem workload is N-independent and the
    // sweep isolates simulator scaling (same regime as scale01).
    let step = (60_000_000 / n as u64).max(1);
    for i in 0..n {
        eng.schedule_up(Time(1 + i as u64 * step), NodeIdx(i as u32));
    }

    // lint:allow(D002): host-side benchmark timing for BENCH_scale02.json, never feeds simulated time
    let t0 = std::time::Instant::now();
    let mut events = 0u64;
    let mut drive = |sw: &mut Seaweed<LiveTables>, eng: &mut SeaweedEngine, horizon: Time| {
        while let Some((_, ev)) = eng.next_event_before(horizon) {
            events += 1;
            sw.dispatch(eng, ev);
        }
    };
    // Joins plus one full metadata-push cycle, then a population-wide
    // aggregation query for the second half-hour.
    drive(&mut sw, &mut eng, secs(900));
    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(0),
            "SELECT SUM(v) FROM T WHERE flag = 1",
            Duration::from_hours(1),
            &schema,
        )
        .expect("inject");
    drive(&mut sw, &mut eng, secs(1800));
    let wall_s = t0.elapsed().as_secs_f64();

    // End-to-end acceptance: every endsystem's row reached the origin
    // (completeness 1.0) and the protocol invariants hold on the final
    // state — the Farsite point is only a result if it is *clean*.
    let rows = sw.query(h).rows();
    assert_eq!(rows, n as u64, "completeness must be 1.0 at N={n}");
    ChaosOracle::new(n as u64).assert_clean(&sw, &eng);

    let stats = sw.stats;
    let messages = eng.messages_sent;
    let report = eng.finish();
    Point {
        n,
        wall_s,
        peak_rss: peak_rss_bytes(),
        events,
        messages,
        tx_bytes: report.total_tx,
        meta_pushes: stats.meta_pushes,
        dissem_msgs: stats.disseminate_msgs,
        predictor_reports: stats.predictor_reports,
        result_submissions: stats.result_submissions,
        rows,
    }
}

fn write_json(path: &str, seed: u64, points: &[Point]) {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    writeln!(out, "  \"bench\": \"scale02_farsite\",").expect("string write");
    writeln!(out, "  \"seed\": {seed},").expect("string write");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0}, \
             \"peak_rss_bytes\": {}, \"messages\": {}, \"tx_overlay_bytes\": {}, \
             \"tx_maintenance_bytes\": {}, \"tx_query_bytes\": {}, \"completeness\": {:.3}}}{comma}",
            p.n,
            p.wall_s,
            p.events,
            p.events as f64 / p.wall_s.max(1e-9),
            p.peak_rss,
            p.messages,
            p.tx_bytes[0],
            p.tx_bytes[1],
            p.tx_bytes[2],
            p.rows as f64 / p.n as f64,
        )
        .expect("string write");
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("  wrote {path}");
}

fn main() {
    let args = Args::parse();
    let base = args.get("base", 4_000usize);
    let max_n = args.get("max-n", 16_000usize);
    // The headline point; `--farsite-n 0` drops it (CI smoke).
    let farsite_n = args.get("farsite-n", FARSITE_N);
    let seed = args.get("seed", 42u64);
    let out = args.get_str("out", "results/scale02.csv");
    let json = args.get_str("json", "BENCH_scale02.json");

    let mut sizes = Vec::new();
    let mut n = base;
    while n <= max_n {
        sizes.push(n);
        n *= 2;
    }
    if farsite_n > 0 && !sizes.contains(&farsite_n) {
        sizes.push(farsite_n);
    }
    sizes.sort_unstable();
    println!("Scale 02 (Farsite): N in {sizes:?}, seed {seed}");

    let mut points = Vec::new();
    for &n in &sizes {
        let p = run_point(n, seed);
        println!(
            "  N={:>6}: {:>9} events, {:>6.1}s wall ({:.0} events/s), peak RSS {:.0} MB, completeness {:.3}",
            p.n,
            p.events,
            p.wall_s,
            p.events as f64 / p.wall_s.max(1e-9),
            p.peak_rss as f64 / 1e6,
            p.rows as f64 / p.n as f64,
        );
        points.push(p);
    }

    // Deterministic columns only — the CI smoke `cmp`s two same-seed runs.
    let rows: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            vec![
                p.n as f64,
                p.events as f64,
                p.messages as f64,
                p.tx_bytes[0] as f64,
                p.tx_bytes[1] as f64,
                p.tx_bytes[2] as f64,
                p.meta_pushes as f64,
                p.dissem_msgs as f64,
                p.predictor_reports as f64,
                p.result_submissions as f64,
                p.rows as f64,
                p.rows as f64 / p.n as f64,
            ]
        })
        .collect();
    write_csv(
        &out,
        &[
            "n",
            "events",
            "messages",
            "tx_overlay_bytes",
            "tx_maintenance_bytes",
            "tx_query_bytes",
            "meta_pushes",
            "disseminate_msgs",
            "predictor_reports",
            "result_submissions",
            "rows",
            "completeness",
        ],
        &rows,
    );
    write_json(&json, seed, &points);

    let mut t = OutTable::new(&["n", "events", "wall_s", "events/s", "peak_rss_MB"]);
    for p in &points {
        t.row(vec![
            p.n.to_string(),
            p.events.to_string(),
            format!("{:.1}", p.wall_s),
            format!("{:.0}", p.events as f64 / p.wall_s.max(1e-9)),
            format!("{:.0}", p.peak_rss as f64 / 1e6),
        ]);
    }
    t.print();
}
