//! Runs every experiment at default (laptop) scale, in paper order.
//!
//! `cargo run --release -p seaweed-bench --bin run_all`
//!
//! Each experiment is also available as its own binary with `--n`,
//! `--seed`, `--weeks`, `--full` overrides; this driver shells out to the
//! sibling binaries so their output (and `results/*.csv`) is identical to
//! running them individually.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "tab01_params",
    "tab02_pier_availability",
    "fig01_availability",
    "fig02_predictor",
    "fig03_scalability",
    "fig04_scalability_small",
    "fig05_prediction",
    "fig06_prediction",
    "fig07_prediction",
    "fig08_prediction",
    "fig09_overheads",
    "fig10_churn",
    "lat01_predictor_latency",
    "abl01_replication_k",
    "abl02_histogram_buckets",
    "abl03_fanout",
    "abl04_periodic_threshold",
    "abl05_predictors",
    "abl06_delta_encoding",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let started = std::time::Instant::now();
    let mut failures = Vec::new();
    for (i, exp) in EXPERIMENTS.iter().enumerate() {
        println!("\n=== [{}/{}] {exp} ===", i + 1, EXPERIMENTS.len());
        let t0 = std::time::Instant::now();
        let status = Command::new(bin_dir.join(exp))
            .args(std::env::args().skip(1)) // pass through e.g. --full
            .status();
        match status {
            Ok(s) if s.success() => {
                println!(
                    "=== {exp} finished in {:.1}s ===",
                    t0.elapsed().as_secs_f64()
                );
            }
            Ok(s) => {
                eprintln!("=== {exp} FAILED: {s} ===");
                failures.push(*exp);
            }
            Err(e) => {
                eprintln!("=== {exp} could not start: {e} (build with --release -p seaweed-bench first) ===");
                failures.push(*exp);
            }
        }
    }
    println!(
        "\nall experiments done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    if failures.is_empty() {
        println!("every experiment completed; series are under results/");
    } else {
        eprintln!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
