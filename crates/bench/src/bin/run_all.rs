//! Runs every experiment at default (laptop) scale, in paper order.
//!
//! `cargo run --release -p seaweed-bench --bin run_all`
//!
//! Each experiment is also available as its own binary with `--n`,
//! `--seed`, `--weeks`, `--full` overrides; this driver shells out to the
//! sibling binaries so their output (and `results/*.csv`) is identical to
//! running them individually. Experiments run `--jobs` (or
//! `SEAWEED_JOBS`) at a time; each child's output is captured and printed
//! in paper order once the sweep finishes, with a progress line as each
//! child exits.

use std::process::Command;

use seaweed_bench::{jobs, run_sweep, Args};

const EXPERIMENTS: &[&str] = &[
    "tab01_params",
    "tab02_pier_availability",
    "fig01_availability",
    "fig02_predictor",
    "fig03_scalability",
    "fig04_scalability_small",
    "fig05_prediction",
    "fig06_prediction",
    "fig07_prediction",
    "fig08_prediction",
    "fig09_overheads",
    "fig10_churn",
    "lat01_predictor_latency",
    "abl01_replication_k",
    "abl02_histogram_buckets",
    "abl03_fanout",
    "abl04_periodic_threshold",
    "abl05_predictors",
    "abl06_delta_encoding",
    "chaos01_faults",
    "scale01_endsystems",
    // Last: the Farsite-scale and storm sweeps dwarf everything above.
    "scale02_farsite",
    "storm01_query_storm",
];

struct ExpOutcome {
    name: &'static str,
    ok: bool,
    secs: f64,
    stdout: Vec<u8>,
    stderr: Vec<u8>,
    note: Option<String>,
}

fn main() {
    let args = Args::parse();
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    // Children are internally single-threaded per run (their own sweeps
    // fall back to --jobs 1 here), so process-level parallelism is the
    // only fan-out and the machine is not oversubscribed.
    let workers = jobs(&args, EXPERIMENTS.len());
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    println!(
        "running {} experiments, {workers} at a time",
        EXPERIMENTS.len()
    );
    // lint:allow(D002): operator-facing progress timing for a host-side experiment driver, never feeds simulated time
    let started = std::time::Instant::now();

    let outcomes = run_sweep(EXPERIMENTS.to_vec(), workers, |i, &exp| {
        // lint:allow(D002): operator-facing progress timing for a host-side experiment driver, never feeds simulated time
        let t0 = std::time::Instant::now();
        let out = Command::new(bin_dir.join(exp))
            .args(&passthrough)
            .args(["--jobs", "1"])
            .output();
        let outcome = match out {
            Ok(o) => ExpOutcome {
                name: exp,
                ok: o.status.success(),
                secs: t0.elapsed().as_secs_f64(),
                stdout: o.stdout,
                stderr: o.stderr,
                note: (!o.status.success()).then(|| format!("exited with {}", o.status)),
            },
            Err(e) => ExpOutcome {
                name: exp,
                ok: false,
                secs: t0.elapsed().as_secs_f64(),
                stdout: Vec::new(),
                stderr: Vec::new(),
                note: Some(format!(
                    "could not start: {e} (build with --release -p seaweed-bench first)"
                )),
            },
        };
        // Progress line in completion order; full output follows in
        // paper order below.
        println!(
            "  [{}/{}] {exp} {} in {:.1}s",
            i + 1,
            EXPERIMENTS.len(),
            if outcome.ok { "finished" } else { "FAILED" },
            outcome.secs
        );
        outcome
    });

    let mut failures = Vec::new();
    for (i, o) in outcomes.iter().enumerate() {
        println!("\n=== [{}/{}] {} ===", i + 1, EXPERIMENTS.len(), o.name);
        print!("{}", String::from_utf8_lossy(&o.stdout));
        eprint!("{}", String::from_utf8_lossy(&o.stderr));
        if o.ok {
            println!("=== {} finished in {:.1}s ===", o.name, o.secs);
        } else {
            let note = o.note.as_deref().unwrap_or("failed");
            eprintln!("=== {} FAILED: {note} ===", o.name);
            failures.push(o.name);
        }
    }
    println!(
        "\nall experiments done in {:.1}s",
        started.elapsed().as_secs_f64()
    );
    if failures.is_empty() {
        println!("every experiment completed; series are under results/");
    } else {
        eprintln!("FAILED: {failures:?}");
        std::process::exit(1);
    }
}
