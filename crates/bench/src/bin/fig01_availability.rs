//! Figure 1: availability of the endsystem population over the trace
//! (hourly probes; paper: 51,663 endsystems, July/August 1999, mean 81%,
//! visible diurnal and weekly banding).

use seaweed_availability::FarsiteConfig;
use seaweed_bench::{write_csv, Args};

fn main() {
    let args = Args::parse();
    let full = args.has("full");
    let n = args.get("n", if full { 51_663 } else { 5_000 });
    let weeks = args.get("weeks", 4u64);
    let seed = args.get("seed", 1u64);

    println!("Figure 1: hourly availability of {n} endsystems over {weeks} weeks (seed {seed})");
    let (trace, _) = FarsiteConfig::small(n, weeks).generate(seed);
    let series = trace.hourly_availability();
    let stats = trace.stats();

    let rows: Vec<Vec<f64>> = series
        .iter()
        .enumerate()
        .map(|(h, &frac)| vec![h as f64, frac * n as f64, frac])
        .collect();
    write_csv(
        "results/fig01_availability.csv",
        &["hour", "available", "fraction"],
        &rows,
    );

    let min = series.iter().copied().fold(1.0f64, f64::min);
    let max = series.iter().copied().fold(0.0f64, f64::max);
    println!(
        "  mean availability: {:.1}% (paper: 81%)",
        stats.mean_availability * 100.0
    );
    println!("  hourly range: {:.1}% .. {:.1}%", min * 100.0, max * 100.0);
    println!(
        "  departure rate: {:.2e} per online endsystem per second (paper: 4.06e-6)",
        stats.departure_rate_per_online_sec
    );

    // Tiny ASCII sparkline of the first two weeks, one char per 4 hours.
    let lo = min;
    let span = (max - lo).max(1e-9);
    let glyphs: Vec<char> = " .:-=+*#%@".chars().collect();
    let line: String = series
        .iter()
        .take((14 * 24).min(series.len()))
        .step_by(4)
        .map(|&v| glyphs[(((v - lo) / span) * (glyphs.len() - 1) as f64).round() as usize])
        .collect();
    println!("  first 2 weeks (1 char = 4 h): {line}");
}
