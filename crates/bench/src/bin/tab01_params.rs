//! Table 1: model parameters.
//!
//! Prints the analytic-model parameter set with each value's provenance,
//! plus the measured equivalents from our synthetic substitutes (trace
//! statistics and generated-workload summary sizes) so the calibration is
//! visible.

use seaweed_availability::FarsiteConfig;
use seaweed_bench::{Args, OutTable};
use seaweed_store::DataSummary;
use seaweed_types::Duration;
use seaweed_workload::AnemoneConfig;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 1500usize);
    let seed = args.get("seed", 1u64);

    let p = seaweed_analytic::ModelParams::default();
    println!("Table 1: model parameters (paper values)\n");
    let mut t = OutTable::new(&["variable", "description", "value", "source"]);
    t.row(vec![
        "N".into(),
        "number of endsystems".into(),
        format!("{}", p.n),
        "Microsoft CorpNet".into(),
    ]);
    t.row(vec![
        "f_on".into(),
        "fraction available".into(),
        format!("{}", p.f_on),
        "Farsite".into(),
    ]);
    t.row(vec![
        "c".into(),
        "churn rate (1/s)".into(),
        format!("{:.1e}", p.c),
        "Farsite".into(),
    ]);
    t.row(vec![
        "u".into(),
        "update rate (B/s)".into(),
        format!("{}", p.u),
        "Anemone".into(),
    ]);
    t.row(vec![
        "d".into(),
        "database size (B)".into(),
        format!("{:.1e}", p.d),
        "Anemone".into(),
    ]);
    t.row(vec![
        "k".into(),
        "replicas".into(),
        format!("{}", p.k),
        "Farsite".into(),
    ]);
    t.row(vec![
        "h".into(),
        "summary size (B)".into(),
        format!("{}", p.h),
        "Seaweed/Anemone".into(),
    ]);
    t.row(vec![
        "a".into(),
        "availability model (B)".into(),
        format!("{}", p.a),
        "Seaweed".into(),
    ]);
    t.row(vec![
        "p".into(),
        "summary push rate (1/s)".into(),
        format!("{:.2e}", p.p),
        "Seaweed (see params.rs note)".into(),
    ]);
    t.row(vec![
        "r".into(),
        "PIER refresh (1/s)".into(),
        "3.3e-3 / 2.8e-4".into(),
        "PIER (5 min / 1 h)".into(),
    ]);
    t.print();

    println!("\nmeasured from our synthetic substitutes ({n} endsystems, seed {seed}):\n");
    let (trace, _) = FarsiteConfig::small(n, 4).generate(seed);
    let stats = trace.stats();
    let anemone = AnemoneConfig::default();
    let sample = 40.min(n);
    let mut h_sum = 0u64;
    let mut bytes = 0u64;
    for node in 0..sample {
        let t = anemone.generate_flow_table(seed, node, trace.intervals(node));
        h_sum += u64::from(DataSummary::build(&t).wire_size());
        bytes += t.approx_bytes();
    }
    let h_mean = h_sum as f64 / sample as f64;
    let d_mean = bytes as f64 / sample as f64;
    let u_mean = d_mean / (Duration::WEEK * 3).as_secs_f64();

    let mut m = OutTable::new(&["variable", "paper", "measured (synthetic)"]);
    m.row(vec![
        "f_on".into(),
        "0.81".into(),
        format!("{:.3}", stats.mean_availability),
    ]);
    m.row(vec![
        "departure rate".into(),
        "4.06e-6 /online/s".into(),
        format!("{:.2e} /online/s", stats.departure_rate_per_online_sec),
    ]);
    m.row(vec![
        "c".into(),
        "6.9e-6".into(),
        format!("{:.2e}", stats.churn_rate(n)),
    ]);
    m.row(vec!["h".into(), "6473 B".into(), format!("{h_mean:.0} B")]);
    m.row(vec![
        "d".into(),
        "2.6e9 B (1 month, full packet data)".into(),
        format!("{d_mean:.2e} B (3 weeks, flow records only)"),
    ]);
    m.row(vec![
        "u".into(),
        "970 B/s".into(),
        format!("{u_mean:.1} B/s (flow records only)"),
    ]);
    m.print();
}
