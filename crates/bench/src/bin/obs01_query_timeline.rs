//! Obs 01: per-query lifecycle timelines — predicted vs *actual*
//! completeness over time, from the same run.
//!
//! Every other prediction figure compares the predictor against a
//! replayed availability trace. This one uses the tentpole
//! observability layer instead: the full Seaweed stack runs with
//! event tracing enabled, each query's
//! [`QueryTimeline`](seaweed_core::QueryTimeline) records its
//! actual fragment arrivals, and the CSV lays the predictor's curve
//! alongside the actual completeness series at fixed checkpoints,
//! plus the per-stage latencies (injection → predictor, injection →
//! first result).
//!
//! A subset of endsystems is taken down before injection and returns
//! on a staggered schedule afterwards, so the actual curve climbs as
//! the predictor said it would. With a fixed `--seed` both the CSV and
//! the exported JSONL trace are byte-stable across runs; CI runs the
//! binary twice and `cmp`s the trace.

use seaweed_bench::{write_csv, Args, OutTable};
use seaweed_core::{LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{CorpNetTopology, Engine, NodeIdx, SimConfig, TraceConfig};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// Completeness checkpoints after injection, in seconds.
const CHECKPOINTS_S: [u64; 8] = [0, 15, 30, 60, 120, 300, 600, 1200];

struct SeedOutcome {
    seed: u64,
    /// `(delay_s, predicted, actual, rows)` per checkpoint.
    curve: Vec<(u64, f64, f64, u64)>,
    dissem_msgs: u64,
    dissem_fanout: u64,
    dissem_reissues: u64,
    give_ups: u64,
    submissions: u64,
    result_retries: u64,
    time_to_predictor_ms: f64,
    time_to_first_result_ms: f64,
    metrics_lines: usize,
    trace_jsonl: Option<String>,
}

fn run_seed(seed: u64, n: usize, routers: usize, export_trace: bool) -> SeedOutcome {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(n);
    for node in 0..n {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .expect("seed row");
        tables.push(t);
    }
    let topo = CorpNetTopology::with_params(n, routers, Duration::MILLISECOND, seed);
    let mut eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed,
            loss_rate: 0.005,
            trace: Some(TraceConfig { capacity: 1 << 20 }),
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let mut sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );
    for i in 0..n {
        eng.schedule_up(Time(1 + i as u64 * 300_000), NodeIdx(i as u32));
    }
    // Every fifth endsystem leaves before injection and returns on a
    // staggered schedule after it, so the predictor has unavailable
    // rows to forecast and the actual curve climbs as they return.
    for (returner, i) in (5..n).step_by(5).enumerate() {
        eng.schedule_down(secs(560), NodeIdx(i as u32));
        eng.schedule_up(secs(660 + returner as u64 * 120), NodeIdx(i as u32));
    }
    sw.run_until(&mut eng, secs(600));
    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(0),
            "SELECT SUM(v) FROM T WHERE flag = 1",
            Duration::from_hours(4),
            &schema,
        )
        .expect("inject");
    let injected = eng.now();
    sw.run_until(&mut eng, injected + Duration::from_secs(1800));

    // All checkpoints are computed retrospectively from the recorded
    // timeline — pure observation, no extra protocol activity.
    let q = sw.query(h);
    let tl = sw.timeline(h);
    let total = q.predictor.as_ref().map_or(0.0, |p| p.total_rows());
    let curve = CHECKPOINTS_S
        .iter()
        .map(|&s| {
            let d = Duration::from_secs(s);
            let predicted = q.predictor.as_ref().map_or(-1.0, |p| p.completeness_at(d));
            let actual = tl
                .actual_completeness_at(injected + d, total)
                .unwrap_or(-1.0);
            (s, predicted, actual, tl.rows_at(injected + d))
        })
        .collect();

    let mut metrics = eng.metrics();
    metrics.merge(sw.metrics());
    let metrics_lines = metrics.render().lines().count();
    let trace_jsonl = if export_trace {
        eng.take_tracer().map(|t| t.export_jsonl())
    } else {
        None
    };

    SeedOutcome {
        seed,
        curve,
        dissem_msgs: tl.dissem_msgs,
        dissem_fanout: tl.dissem_fanout,
        dissem_reissues: tl.dissem_reissues,
        give_ups: tl.give_ups,
        submissions: tl.submissions,
        result_retries: tl.result_retries,
        time_to_predictor_ms: tl
            .time_to_predictor()
            .map_or(-1.0, |d| d.as_secs_f64() * 1e3),
        time_to_first_result_ms: tl
            .time_to_first_result()
            .map_or(-1.0, |d| d.as_secs_f64() * 1e3),
        metrics_lines,
        trace_jsonl,
    }
}

fn main() {
    let args = Args::parse();
    let n = args.get("n", 36usize);
    let routers = args.get("routers", 24usize);
    let seed0 = args.get("seed", 42u64);
    let seeds = args.get("seeds", 4u64);
    let out = args.get_str("out", "results/obs01.csv");
    let trace_out = args.get_str("trace-out", "results/obs01_trace.jsonl");

    println!(
        "Obs 01: {n} endsystems, {routers} routers, seeds {seed0}..{}",
        seed0 + seeds
    );
    // lint:allow(D002): operator-facing progress timing for a host-side experiment driver, never feeds simulated time
    let t0 = std::time::Instant::now();
    let outcomes: Vec<SeedOutcome> = (seed0..seed0 + seeds)
        .map(|s| run_seed(s, n, routers, s == seed0 && !trace_out.is_empty()))
        .collect();
    println!("  simulated in {:.1}s", t0.elapsed().as_secs_f64());

    let rows: Vec<Vec<f64>> = outcomes
        .iter()
        .flat_map(|o| {
            o.curve.iter().map(move |&(s, predicted, actual, rows)| {
                vec![
                    o.seed as f64,
                    s as f64,
                    predicted,
                    actual,
                    rows as f64,
                    o.dissem_msgs as f64,
                    o.dissem_fanout as f64,
                    o.dissem_reissues as f64,
                    o.give_ups as f64,
                    o.submissions as f64,
                    o.result_retries as f64,
                    o.time_to_predictor_ms,
                    o.time_to_first_result_ms,
                ]
            })
        })
        .collect();
    write_csv(
        &out,
        &[
            "seed",
            "checkpoint_s",
            "predicted",
            "actual",
            "rows",
            "dissem_msgs",
            "dissem_fanout",
            "dissem_reissues",
            "give_ups",
            "submissions",
            "result_retries",
            "time_to_predictor_ms",
            "time_to_first_result_ms",
        ],
        &rows,
    );

    if !trace_out.is_empty() {
        let jsonl = outcomes[0]
            .trace_jsonl
            .as_deref()
            .expect("tracing enabled for first seed");
        std::fs::write(&trace_out, jsonl).expect("write trace");
        println!(
            "  wrote {} trace records to {trace_out}",
            jsonl.lines().count()
        );
    }

    let mut t = OutTable::new(&[
        "seed",
        "pred@60s",
        "act@60s",
        "pred@600s",
        "act@600s",
        "fanout",
        "subs",
        "t_pred_ms",
        "t_first_ms",
        "metrics",
    ]);
    for o in &outcomes {
        let at = |s: u64| {
            o.curve
                .iter()
                .find(|&&(cs, ..)| cs == s)
                .map(|&(_, p, a, _)| (p, a))
                .unwrap_or((-1.0, -1.0))
        };
        let (p60, a60) = at(60);
        let (p600, a600) = at(600);
        t.row(vec![
            o.seed.to_string(),
            format!("{p60:.2}"),
            format!("{a60:.2}"),
            format!("{p600:.2}"),
            format!("{a600:.2}"),
            o.dissem_fanout.to_string(),
            o.submissions.to_string(),
            format!("{:.1}", o.time_to_predictor_ms),
            format!("{:.1}", o.time_to_first_result_ms),
            format!("{} lines", o.metrics_lines),
        ]);
    }
    t.print();
}
