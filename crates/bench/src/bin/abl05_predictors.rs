//! Ablation: alternative availability predictors.
//!
//! §5: "others have developed alternative predictors (ref. 24) which could
//! potentially improve Seaweed's performance." Compares three return-time
//! predictors on the Farsite-like trace:
//!
//! * the paper's model (down-duration + up-hour, periodic classification);
//! * an hour-of-week availability profile (weekly structure, 7× state);
//! * a naive fixed-delay baseline (always "8 hours").

use seaweed_availability::{FarsiteConfig, HourOfWeekModel, ModelConfig, ReturnPrediction};
use seaweed_bench::predsim::PredictionSetup;
use seaweed_bench::{write_csv, Args, OutTable};
use seaweed_types::{Duration, Time};
use seaweed_workload::{AnemoneConfig, QUERY_HTTP_BYTES};

fn main() {
    let args = Args::parse();
    let n = args.get("n", 1_200usize);
    let seed = args.get("seed", 18u64);
    let weeks = 4u64;

    println!("Ablation: availability predictors ({n} endsystems, {weeks}-week trace)");
    let (trace, _) = FarsiteConfig::small(n, weeks).generate(seed);
    let anemone = AnemoneConfig {
        horizon: Duration::WEEK * weeks,
        ..AnemoneConfig::default()
    };
    let setup = PredictionSetup::build(trace, &anemone, seed, &[QUERY_HTTP_BYTES]);

    // Injection times chosen to stress different structure: weekday
    // night, weekday noon, Friday evening (weekend gap!), Sunday noon.
    let injections = [
        ("Tue 00:00", Time::ZERO + Duration::from_days(15)),
        (
            "Wed 12:00",
            Time::ZERO + Duration::from_days(16) + Duration::from_hours(12),
        ),
        (
            "Fri 20:00",
            Time::ZERO + Duration::from_days(18) + Duration::from_hours(20),
        ),
        (
            "Sun 12:00",
            Time::ZERO + Duration::from_days(20) + Duration::from_hours(12),
        ),
    ];
    let checkpoints = [1u64, 2, 4, 8, 12, 24, 48];

    let mut table = OutTable::new(&["predictor", "mean |error| %", "worst |error| %"]);
    let mut rows = Vec::new();

    let mut evaluate =
        |name: &str, idx: f64, run_one: &dyn Fn(Time) -> seaweed_bench::predsim::PredictionRun| {
            let mut errs = Vec::new();
            for &(_, inject) in &injections {
                let run = run_one(inject);
                for &h in &checkpoints {
                    errs.push(run.error_pct_at(Duration::from_hours(h)).abs());
                }
            }
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            let worst = errs.iter().copied().fold(0.0f64, f64::max);
            table.row(vec![
                name.into(),
                format!("{mean:.2}"),
                format!("{worst:.2}"),
            ]);
            rows.push(vec![idx, mean, worst]);
        };

    evaluate("paper model (48 B)", 0.0, &|inject| {
        setup.run_with_model(0, inject, Duration::from_hours(48), ModelConfig::default())
    });
    evaluate("hour-of-week profile (336 B)", 1.0, &|inject| {
        setup.run_with_return_predictor(
            0,
            inject,
            Duration::from_hours(48),
            |trace, node, _ds, now| {
                HourOfWeekModel::learn_from_trace(trace, node, now).predict_return(now)
            },
        )
    });
    evaluate("fixed 8 h baseline", 2.0, &|inject| {
        setup.run_with_return_predictor(0, inject, Duration::from_hours(48), |_t, _n, _ds, _now| {
            ReturnPrediction::point(Duration::from_hours(8))
        })
    });

    write_csv(
        "results/abl05_predictors.csv",
        &["predictor", "mean_abs_error_pct", "worst_abs_error_pct"],
        &rows,
    );
    table.print();
    println!("  (the hour-of-week profile should win around weekends, at 7x the metadata)");
}
