//! Ablation: alternative availability predictors.
//!
//! §5: "others have developed alternative predictors (ref. 24) which could
//! potentially improve Seaweed's performance." Compares three return-time
//! predictors on the Farsite-like trace:
//!
//! * the paper's model (down-duration + up-hour, periodic classification);
//! * an hour-of-week availability profile (weekly structure, 7× state);
//! * a naive fixed-delay baseline (always "8 hours").

use seaweed_availability::{FarsiteConfig, HourOfWeekModel, ModelConfig, ReturnPrediction};
use seaweed_bench::predsim::PredictionSetup;
use seaweed_bench::{jobs, run_sweep, write_csv, Args, OutTable};
use seaweed_types::{Duration, Time};
use seaweed_workload::{AnemoneConfig, QUERY_HTTP_BYTES};

fn main() {
    let args = Args::parse();
    let n = args.get("n", 1_200usize);
    let seed = args.get("seed", 18u64);
    let weeks = 4u64;

    println!("Ablation: availability predictors ({n} endsystems, {weeks}-week trace)");
    let (trace, _) = FarsiteConfig::small(n, weeks).generate(seed);
    let anemone = AnemoneConfig {
        horizon: Duration::WEEK * weeks,
        ..AnemoneConfig::default()
    };
    let setup = PredictionSetup::build(trace, &anemone, seed, &[QUERY_HTTP_BYTES]);

    // Injection times chosen to stress different structure: weekday
    // night, weekday noon, Friday evening (weekend gap!), Sunday noon.
    let injections = [
        ("Tue 00:00", Time::ZERO + Duration::from_days(15)),
        (
            "Wed 12:00",
            Time::ZERO + Duration::from_days(16) + Duration::from_hours(12),
        ),
        (
            "Fri 20:00",
            Time::ZERO + Duration::from_days(18) + Duration::from_hours(20),
        ),
        (
            "Sun 12:00",
            Time::ZERO + Duration::from_days(20) + Duration::from_hours(12),
        ),
    ];
    let checkpoints = [1u64, 2, 4, 8, 12, 24, 48];

    enum Predictor {
        Paper,
        HourOfWeek,
        FixedDelay,
    }
    let specs = vec![
        ("paper model (48 B)", Predictor::Paper),
        ("hour-of-week profile (336 B)", Predictor::HourOfWeek),
        ("fixed 8 h baseline", Predictor::FixedDelay),
    ];
    let workers = jobs(&args, specs.len());
    let sweep = run_sweep(specs, workers, |idx, &(name, ref kind)| {
        let run_one = |inject: Time| match kind {
            Predictor::Paper => {
                setup.run_with_model(0, inject, Duration::from_hours(48), ModelConfig::default())
            }
            Predictor::HourOfWeek => setup.run_with_return_predictor(
                0,
                inject,
                Duration::from_hours(48),
                |trace, node, _ds, now| {
                    HourOfWeekModel::learn_from_trace(trace, node, now).predict_return(now)
                },
            ),
            Predictor::FixedDelay => setup.run_with_return_predictor(
                0,
                inject,
                Duration::from_hours(48),
                |_t, _n, _ds, _now| ReturnPrediction::point(Duration::from_hours(8)),
            ),
        };
        let mut errs = Vec::new();
        for &(_, inject) in &injections {
            let run = run_one(inject);
            for &h in &checkpoints {
                errs.push(run.error_pct_at(Duration::from_hours(h)).abs());
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let worst = errs.iter().copied().fold(0.0f64, f64::max);
        (name, idx as f64, mean, worst)
    });

    let mut table = OutTable::new(&["predictor", "mean |error| %", "worst |error| %"]);
    let mut rows = Vec::new();
    for (name, idx, mean, worst) in sweep {
        table.row(vec![
            name.into(),
            format!("{mean:.2}"),
            format!("{worst:.2}"),
        ]);
        rows.push(vec![idx, mean, worst]);
    }

    write_csv(
        "results/abl05_predictors.csv",
        &["predictor", "mean_abs_error_pct", "worst_abs_error_pct"],
        &rows,
    );
    table.print();
    println!("  (the hour-of-week profile should win around weekends, at 7x the metadata)");
}
