//! Ablation: metadata replication factor k.
//!
//! §4.2.2: "the choice of k is a trade-off between overhead and
//! availability". Sweeps k and measures (i) Seaweed maintenance bandwidth
//! and (ii) predictor coverage — the fraction of unavailable endsystems a
//! query could still be predicted for.

use seaweed_availability::FarsiteConfig;
use seaweed_bench::fullsim::{run_full, FullSimConfig};
use seaweed_bench::{jobs, run_sweep, write_csv, Args, OutTable};
use seaweed_sim::TrafficClass;
use seaweed_types::{Duration, Time};

fn main() {
    let args = Args::parse();
    let n = args.get("n", 800usize);
    let seed = args.get("seed", 14u64);
    let weeks = 1u64;

    let ks = vec![1usize, 2, 4, 8];
    let workers = jobs(&args, ks.len());
    println!(
        "Ablation: metadata replication factor k \
         ({n} endsystems, {weeks} week, {workers} threads)"
    );
    let (trace, _) = FarsiteConfig::small(n, weeks).generate(seed);
    let results = run_sweep(ks, workers, |_, &k| {
        let mut cfg = FullSimConfig::new(seed);
        cfg.seaweed.k_metadata = k;
        cfg.injections = vec![(0, Time::ZERO + Duration::from_days(4))];
        (k, run_full(&cfg, &trace))
    });
    let mut rows = Vec::new();
    let mut t = OutTable::new(&["k", "maintenance B/s", "coverage %", "meta repairs"]);
    for (k, result) in &results {
        let k = *k;
        let covered = result.seaweed_stats.predictions_for_unavailable as f64;
        let uncovered = result.seaweed_stats.uncovered_unavailable as f64;
        let coverage = if covered + uncovered > 0.0 {
            100.0 * covered / (covered + uncovered)
        } else {
            100.0
        };
        let maint = result
            .report
            .mean_tx_per_online_bps(TrafficClass::Maintenance);
        rows.push(vec![
            k as f64,
            maint,
            coverage,
            result.seaweed_stats.meta_repairs as f64,
        ]);
        t.row(vec![
            format!("{k}"),
            format!("{maint:.1}"),
            format!("{coverage:.1}"),
            format!("{}", result.seaweed_stats.meta_repairs),
        ]);
    }
    write_csv(
        "results/abl01_replication_k.csv",
        &["k", "maintenance_bps", "coverage_pct", "meta_repairs"],
        &rows,
    );
    t.print();
    println!("  (expected: bandwidth grows ~linearly in k; coverage saturates by k=4..8)");
}
