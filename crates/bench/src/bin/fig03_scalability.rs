//! Figure 3: analytic maintenance-bandwidth scalability of the four
//! architectures versus (a) network size N, (b) update rate u,
//! (c) database size d, (d) churn rate c — Table 1 values elsewhere.

use seaweed_analytic::{sweep, ModelParams, SweepAxis};
use seaweed_bench::figures::run_scalability_panels;
use seaweed_bench::{Args, OutTable};

fn main() {
    let args = Args::parse();
    let points = args.get("points", 25usize);
    run_scalability_panels(&ModelParams::default(), "fig03", points);

    // Headline ratios the paper quotes in §4.2.5.
    let base = ModelParams::default();
    let pts = sweep(&base, SweepAxis::NetworkSize, base.n, base.n * 2.0, 2);
    let p = pts[0];
    println!("\nat Table 1 values (N = {:.0}):", base.n);
    let mut t = OutTable::new(&["architecture", "bytes/sec system-wide", "vs Seaweed"]);
    for (name, v) in [
        ("Seaweed", p.seaweed),
        ("Centralized", p.centralized),
        ("DHT-replicated", p.dht_replicated),
        ("PIER (5 min)", p.pier_5min),
        ("PIER (1 h)", p.pier_1h),
    ] {
        t.row(vec![
            name.into(),
            format!("{v:.3e}"),
            format!("{:.0}x", v / p.seaweed),
        ]);
    }
    t.print();
    println!("  (paper: centralized ~10x Seaweed; DHT and PIER >= 1000x)");
}
