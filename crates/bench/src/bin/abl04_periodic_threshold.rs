//! Ablation: availability-model classification threshold.
//!
//! §3.2.1 classifies an endsystem as periodic when the up-event hour
//! distribution's peak-to-mean ratio exceeds 2. Sweeps that threshold
//! (and the minimum-observation gate) and measures completeness
//! prediction error on the Farsite-like trace.

use seaweed_availability::{FarsiteConfig, ModelConfig};
use seaweed_bench::predsim::PredictionSetup;
use seaweed_bench::{jobs, run_sweep, write_csv, Args, OutTable};
use seaweed_types::{Duration, Time};
use seaweed_workload::{AnemoneConfig, QUERY_HTTP_BYTES};

fn main() {
    let args = Args::parse();
    let n = args.get("n", 1_000usize);
    let seed = args.get("seed", 17u64);
    let weeks = 4u64;

    println!("Ablation: periodic-classification threshold ({n} endsystems)");
    let (trace, _) = FarsiteConfig::small(n, weeks).generate(seed);
    let anemone = AnemoneConfig {
        horizon: Duration::WEEK * weeks,
        ..AnemoneConfig::default()
    };
    let setup = PredictionSetup::build(trace, &anemone, seed, &[QUERY_HTTP_BYTES]);

    let injections: Vec<Time> = (0..4)
        .map(|d| Time::ZERO + Duration::from_days(15 + d) + Duration::from_hours(22))
        .collect();
    let checkpoints = [1u64, 2, 4, 8, 12, 24];

    let settings = vec![
        (1.0, 0u32),
        (2.0, 0),
        (2.0, 8),
        (3.0, 8),
        (5.0, 8),
        (1e9, 0), // periodic classification disabled entirely
    ];
    let workers = jobs(&args, settings.len());
    let sweep = run_sweep(settings, workers, |_, &(threshold, min_obs)| {
        let cfg = ModelConfig {
            periodic_threshold: threshold,
            min_periodic_observations: min_obs,
            ..ModelConfig::default()
        };
        let mut errs = Vec::new();
        for &inject in &injections {
            let run = setup.run_with_model(0, inject, Duration::from_hours(48), cfg);
            for &h in &checkpoints {
                errs.push(run.error_pct_at(Duration::from_hours(h)).abs());
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let worst = errs.iter().copied().fold(0.0f64, f64::max);
        (threshold, min_obs, mean, worst)
    });
    let mut rows = Vec::new();
    let mut t = OutTable::new(&["threshold", "min obs", "mean |error| %", "worst |error| %"]);
    for (threshold, min_obs, mean, worst) in sweep {
        rows.push(vec![threshold.min(1e6), f64::from(min_obs), mean, worst]);
        let label = if threshold > 1e6 {
            "disabled".to_owned()
        } else {
            format!("{threshold:.1}")
        };
        t.row(vec![
            label,
            format!("{min_obs}"),
            format!("{mean:.2}"),
            format!("{worst:.2}"),
        ]);
    }
    write_csv(
        "results/abl04_periodic_threshold.csv",
        &[
            "threshold",
            "min_observations",
            "mean_abs_error_pct",
            "worst_abs_error_pct",
        ],
        &rows,
    );
    t.print();
    println!("  (paper uses threshold 2; diurnal machines need the periodic path)");
}
