//! Ablation: histogram bucket budget.
//!
//! The metadata size h and the row-estimate accuracy both grow with the
//! number of histogram buckets; this sweep quantifies the trade-off on
//! real Anemone fragments for all four paper queries.

use seaweed_bench::{jobs, run_sweep, write_csv, Args, OutTable};
use seaweed_store::exec::count_matching;
use seaweed_store::{DataSummary, Query};
use seaweed_types::Duration;
use seaweed_workload::{flow_schema, paper_queries, AnemoneConfig};

fn main() {
    let args = Args::parse();
    let n = args.get("n", 60usize);
    let seed = args.get("seed", 15u64);

    println!("Ablation: histogram buckets vs metadata size vs estimate error ({n} fragments)");
    let schema = flow_schema();
    let anemone = AnemoneConfig {
        horizon: Duration::from_days(7),
        ..AnemoneConfig::default()
    };
    let tables: Vec<_> = (0..n)
        .map(|i| anemone.generate_flow_table(seed, i, &[]))
        .collect();
    let bound: Vec<_> = paper_queries()
        .iter()
        .map(|pq| Query::parse(pq.sql).unwrap().bind(&schema, 0).unwrap())
        .collect();
    let exact: Vec<u64> = bound
        .iter()
        .map(|b| tables.iter().map(|t| count_matching(b, t)).sum())
        .collect();

    let bucket_counts = vec![2usize, 4, 8, 16, 32, 64, 128, 200];
    let workers = jobs(&args, bucket_counts.len());
    let sweep = run_sweep(bucket_counts, workers, |_, &buckets| {
        let summaries: Vec<_> = tables
            .iter()
            .map(|t| DataSummary::build_with_buckets(t, buckets))
            .collect();
        let h_mean: f64 = summaries
            .iter()
            .map(|s| f64::from(s.wire_size()))
            .sum::<f64>()
            / n as f64;
        let mut errs = Vec::new();
        for (qi, b) in bound.iter().enumerate() {
            let est: f64 = summaries.iter().map(|s| s.estimate_rows(b)).sum();
            let err = 100.0 * (est - exact[qi] as f64).abs() / (exact[qi] as f64).max(1.0);
            errs.push(err);
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
        let worst = errs.iter().copied().fold(0.0f64, f64::max);
        (buckets, h_mean, mean_err, worst)
    });
    let mut rows = Vec::new();
    let mut out = OutTable::new(&[
        "buckets",
        "h (bytes)",
        "mean |error| %",
        "worst query |error| %",
    ]);
    for (buckets, h_mean, mean_err, worst) in sweep {
        rows.push(vec![buckets as f64, h_mean, mean_err, worst]);
        out.row(vec![
            format!("{buckets}"),
            format!("{h_mean:.0}"),
            format!("{mean_err:.3}"),
            format!("{worst:.3}"),
        ]);
    }
    write_csv(
        "results/abl02_histogram_buckets.csv",
        &[
            "buckets",
            "h_bytes",
            "mean_abs_error_pct",
            "worst_abs_error_pct",
        ],
        &rows,
    );
    out.print();
    println!("  (the paper replicated 5 histograms totalling h = 6,473 B per endsystem)");
}
