//! Figure 5: completeness prediction accuracy for
//! `seaweed_workload::QUERY_HTTP_BYTES` — predicted vs actual
//! cumulative rows over 48 h, and prediction error across injection days
//! and times of day.

use seaweed_bench::figures::run_prediction_figure;
use seaweed_bench::Args;
use seaweed_workload::QUERY_HTTP_BYTES;

fn main() {
    let args = Args::parse();
    run_prediction_figure(5, QUERY_HTTP_BYTES, &args);
}
