//! Scale 01: simulator throughput as the endsystem population grows.
//!
//! Sweeps N from `--base` (default 1,000) doubling up to `--max-n`
//! (default 16,000) endsystems on the 298-router CorpNet topology: every
//! endsystem joins the overlay, runs the metadata push loop, and one
//! SUM query is injected and aggregated over the whole population.
//!
//! Two artifacts:
//!
//! * `results/scale01.csv` — deterministic columns only (events,
//!   messages, bytes by traffic class, protocol counters). With a fixed
//!   `--seed` the file is byte-stable across reruns and machines, so it
//!   doubles as a CI determinism smoke (`scripts/check.sh`).
//! * `BENCH_scale01.json` — the same points plus measured wall-clock
//!   seconds and events/second, i.e. the machine-dependent numbers that
//!   back the EXPERIMENTS.md scaling entry.

use seaweed_bench::{write_csv, Args, OutTable};
use seaweed_core::{LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{CorpNetTopology, Engine, NodeIdx, SimConfig};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

struct Point {
    n: usize,
    wall_s: f64,
    events: u64,
    messages: u64,
    tx_bytes: [u64; 3],
    meta_pushes: u64,
    dissem_msgs: u64,
    predictor_reports: u64,
    result_submissions: u64,
    rows: u64,
}

fn run_point(n: usize, seed: u64) -> Point {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(n);
    for node in 0..n {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .expect("seed row");
        tables.push(t);
    }
    let topo = CorpNetTopology::new(n, seed);
    let mut eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let mut sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );
    // All endsystems come up within the first simulated minute, whatever
    // the population, so the workload per endsystem is N-independent and
    // the sweep isolates simulator scaling.
    let step = (60_000_000 / n as u64).max(1);
    for i in 0..n {
        eng.schedule_up(Time(1 + i as u64 * step), NodeIdx(i as u32));
    }

    // lint:allow(D002): host-side benchmark timing for BENCH_scale01.json, never feeds simulated time
    let t0 = std::time::Instant::now();
    let mut events = 0u64;
    let mut drive = |sw: &mut Seaweed<LiveTables>, eng: &mut SeaweedEngine, horizon: Time| {
        while let Some((_, ev)) = eng.next_event_before(horizon) {
            events += 1;
            sw.dispatch(eng, ev);
        }
    };
    // Joins plus one full metadata-push cycle (default mean period
    // 17.5 min), then a population-wide aggregation query for the
    // second half-hour.
    drive(&mut sw, &mut eng, secs(900));
    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(0),
            "SELECT SUM(v) FROM T WHERE flag = 1",
            Duration::from_hours(1),
            &schema,
        )
        .expect("inject");
    drive(&mut sw, &mut eng, secs(1800));
    let wall_s = t0.elapsed().as_secs_f64();

    let rows = sw.query(h).rows();
    let stats = sw.stats;
    let messages = eng.messages_sent;
    let report = eng.finish();
    Point {
        n,
        wall_s,
        events,
        messages,
        tx_bytes: report.total_tx,
        meta_pushes: stats.meta_pushes,
        dissem_msgs: stats.disseminate_msgs,
        predictor_reports: stats.predictor_reports,
        result_submissions: stats.result_submissions,
        rows,
    }
}

fn write_json(path: &str, seed: u64, points: &[Point]) {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    writeln!(out, "  \"bench\": \"scale01_endsystems\",").expect("string write");
    writeln!(out, "  \"seed\": {seed},").expect("string write");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"n\": {}, \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0}, \
             \"messages\": {}, \"tx_overlay_bytes\": {}, \"tx_maintenance_bytes\": {}, \
             \"tx_query_bytes\": {}}}{comma}",
            p.n,
            p.wall_s,
            p.events,
            p.events as f64 / p.wall_s.max(1e-9),
            p.messages,
            p.tx_bytes[0],
            p.tx_bytes[1],
            p.tx_bytes[2],
        )
        .expect("string write");
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("  wrote {path}");
}

fn main() {
    let args = Args::parse();
    let base = args.get("base", 1_000usize);
    let max_n = args.get("max-n", 16_000usize);
    let seed = args.get("seed", 42u64);
    let out = args.get_str("out", "results/scale01.csv");
    let json = args.get_str("json", "BENCH_scale01.json");

    let mut sizes = Vec::new();
    let mut n = base;
    while n <= max_n {
        sizes.push(n);
        n *= 2;
    }
    println!("Scale 01: N in {sizes:?}, seed {seed}");

    let mut points = Vec::new();
    for &n in &sizes {
        let p = run_point(n, seed);
        println!(
            "  N={:>6}: {:>9} events, {:>8} messages, {:>6.1}s wall ({:.0} events/s)",
            p.n,
            p.events,
            p.messages,
            p.wall_s,
            p.events as f64 / p.wall_s.max(1e-9),
        );
        points.push(p);
    }

    // The CSV carries only simulation-deterministic columns: rerunning
    // with the same seed must reproduce it byte-for-byte on any machine.
    let rows: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            vec![
                p.n as f64,
                p.events as f64,
                p.messages as f64,
                p.tx_bytes[0] as f64,
                p.tx_bytes[1] as f64,
                p.tx_bytes[2] as f64,
                p.meta_pushes as f64,
                p.dissem_msgs as f64,
                p.predictor_reports as f64,
                p.result_submissions as f64,
                p.rows as f64,
                p.rows as f64 / p.n as f64,
            ]
        })
        .collect();
    write_csv(
        &out,
        &[
            "n",
            "events",
            "messages",
            "tx_overlay_bytes",
            "tx_maintenance_bytes",
            "tx_query_bytes",
            "meta_pushes",
            "disseminate_msgs",
            "predictor_reports",
            "result_submissions",
            "rows",
            "completeness",
        ],
        &rows,
    );
    write_json(&json, seed, &points);

    let mut t = OutTable::new(&["n", "events", "messages", "maint_MB", "wall_s", "events/s"]);
    for p in &points {
        t.row(vec![
            p.n.to_string(),
            p.events.to_string(),
            p.messages.to_string(),
            format!("{:.1}", p.tx_bytes[1] as f64 / 1e6),
            format!("{:.1}", p.wall_s),
            format!("{:.0}", p.events as f64 / p.wall_s.max(1e-9)),
        ]);
    }
    t.print();
}
