//! §4.3.3 latency and per-query cost metrics: time from query injection
//! to the completeness predictor reaching the user, versus network size,
//! plus per-endsystem dissemination and predictor-aggregation bytes.
//!
//! Paper: 3.1 s at 2,000 endsystems → 12.0 s at 51,663; dissemination
//! 1,043 B per query per endsystem, predictor aggregation 776 B.

use seaweed_availability::FarsiteConfig;
use seaweed_bench::fullsim::{run_full, FullSimConfig};
use seaweed_bench::{write_csv, Args, OutTable};
use seaweed_types::{Duration, Time};

fn main() {
    let args = Args::parse();
    let full = args.has("full");
    let seed = args.get("seed", 12u64);
    let sizes: Vec<usize> = if full {
        vec![2_000, 8_000, 20_000, 51_663]
    } else {
        vec![250, 500, 1_000, 2_000]
    };

    println!("Predictor latency and per-query cost vs network size");
    let mut rows = Vec::new();
    let mut t = OutTable::new(&[
        "N",
        "latency",
        "dissem B/endsystem",
        "predictor B/endsystem",
    ]);
    for &n in &sizes {
        let days = 3u64;
        let (trace, _) = {
            let mut fc = FarsiteConfig::small(n, 1);
            fc.horizon = Duration::from_days(days);
            fc.generate(seed)
        };
        let mut cfg = FullSimConfig::new(seed);
        cfg.injections = vec![(0, Time::ZERO + Duration::from_days(1))];
        let result = run_full(&cfg, &trace);
        let q = &result.queries[0];
        let latency = q.predictor_latency.expect("predictor must arrive");
        let dissem = result.seaweed_stats.dissem_bytes as f64 / n as f64;
        let pred = result.seaweed_stats.predictor_bytes as f64 / n as f64;
        rows.push(vec![n as f64, latency.as_secs_f64(), dissem, pred]);
        t.row(vec![
            format!("{n}"),
            format!("{latency}"),
            format!("{dissem:.0}"),
            format!("{pred:.0}"),
        ]);
    }
    write_csv(
        "results/lat01_predictor_latency.csv",
        &[
            "n",
            "latency_secs",
            "dissem_bytes_per_endsystem",
            "predictor_bytes_per_endsystem",
        ],
        &rows,
    );
    t.print();
    println!(
        "  (paper: 3.1 s at 2,000 endsystems, 12.0 s at 51,663; 1,043 B and 776 B per endsystem)"
    );
}
