//! Ablation 07: hedged dissemination under correlated-branch-outage
//! chaos — tail delay versus hedging bandwidth.
//!
//! Scenario per seed: a correlated branch outage (the smallest branch
//! not containing the origin, ≤ 10% of the population) takes its
//! endsystems down across the query injection, a degraded router pair
//! adds loss and latency, and the base plan keeps random loss,
//! duplication and reordering. Subranges whose primary replica sits in
//! the dead or degraded region only complete after 5 s reissue chains —
//! that is the tail hedging attacks: a backup replica-set member gets
//! the task at the hedge threshold instead.
//!
//! Sweeps the hedge threshold (fraction of `dissem_timeout`, plus
//! hedging off) × churn (bystander crash/rejoin cycles during the
//! query) × replica selection (`IdOrder` vs `AvailAware`) and reports,
//! per configuration, the p50/p90/p99 of delay-to-0.9-completeness
//! across seeds next to the dissemination bandwidth and the hedge
//! ledger. The headline comparison (default 0.5 threshold vs off) is
//! printed per churn × selection cell. Exits non-zero on any oracle
//! violation; with a fixed `--seed` the CSV is byte-stable.

use seaweed_bench::{jobs, run_sweep, write_csv, Args, OutTable};
use seaweed_core::{ChaosOracle, HedgeConfig, LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig, SelectionKind};
use seaweed_sim::{
    CorpNetTopology, CrashSpec, Engine, FaultPlan, LinkFaultSpec, NodeIdx, OutageSpec, SimConfig,
};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// Horizon used for censored runs (0.9-completeness never reached).
const HORIZON_S: u64 = 1500;

/// The correlated-branch-outage plan: the smallest non-empty branch that
/// does not contain the origin goes down (no amnesia) across the query
/// injection, and one router pair is degraded. `churn` adds two
/// bystander crash/rejoin cycles inside the query window.
fn outage_plan(topo: &CorpNetTopology, n: usize, churn: bool) -> FaultPlan {
    let branch = topo
        .branch_routers()
        .filter(|&r| {
            let sub = topo.subtree_endsystems(r);
            !sub.is_empty() && !sub.contains(&0) && sub.len() * 10 <= n
        })
        .min_by_key(|&r| topo.subtree_endsystems(r).len())
        .or_else(|| {
            topo.branch_routers()
                .filter(|&r| !topo.subtree_endsystems(r).contains(&0))
                .min_by_key(|&r| topo.subtree_endsystems(r).len())
        })
        .expect("a branch router without the origin");
    let outage = OutageSpec::branch_outage(topo, branch, secs(595), secs(700), false);

    let za = topo.router_of(NodeIdx(1)) as u32;
    let mut zb = topo.router_of(NodeIdx(2)) as u32;
    if zb == za {
        zb = topo.router_of(NodeIdx(3)) as u32;
    }

    let crashes = if churn {
        let excluded = &outage.members;
        let bystanders: Vec<u32> = (1..n as u32)
            .filter(|m| !excluded.contains(m))
            .take(2)
            .collect();
        vec![
            CrashSpec {
                node: NodeIdx(bystanders[0]),
                at: secs(601),
                rejoin_after: Duration::from_secs(40),
            },
            CrashSpec {
                node: NodeIdx(bystanders[1]),
                at: secs(604),
                rejoin_after: Duration::from_secs(30),
            },
        ]
    } else {
        Vec::new()
    };

    FaultPlan {
        partitions: Vec::new(),
        link_faults: vec![LinkFaultSpec {
            zone_a: za,
            zone_b: zb,
            from: secs(595),
            until: secs(700),
            extra_loss: 0.15,
            latency_mult: 3.0,
        }],
        crashes,
        outages: vec![outage],
        dup_rate: 0.02,
        reorder_window: Duration::from_millis(50),
    }
}

#[derive(Clone, Copy)]
struct Config {
    /// Hedge threshold as a fraction of `dissem_timeout`; `None` = off.
    hedge: Option<f64>,
    churn: bool,
    selection: SelectionKind,
}

struct RunOutcome {
    /// Delay to 0.9-completeness, censored at the horizon.
    t90: Duration,
    dissem_bytes: u64,
    hedges_sent: u64,
    hedge_wins: u64,
    hedge_losses: u64,
    hedge_wasted_bytes: u64,
    give_ups: u64,
    reissues: u64,
    violations: Vec<String>,
}

fn run_one(cfg: Config, seed: u64, n: usize, routers: usize) -> RunOutcome {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(n);
    for node in 0..n {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .expect("seed row");
        tables.push(t);
    }
    let topo = CorpNetTopology::with_params(n, routers, Duration::MILLISECOND, seed);
    let plan = outage_plan(&topo, n, cfg.churn);
    let mut eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed,
            loss_rate: 0.01,
            faults: Some(plan),
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            selection: cfg.selection,
            ..Default::default()
        },
    );
    let mut sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed,
            hedge: cfg.hedge.map(|fraction| HedgeConfig {
                fallback_fraction: fraction,
                ..HedgeConfig::default()
            }),
            ..Default::default()
        },
    );
    for i in 0..n {
        eng.schedule_up(Time(1 + i as u64 * 300_000), NodeIdx(i as u32));
    }
    sw.run_until(&mut eng, secs(600));
    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(0),
            "SELECT SUM(v) FROM T WHERE flag = 1",
            Duration::from_hours(4),
            &schema,
        )
        .expect("inject");

    let oracle = ChaosOracle::new(n as u64);
    let mut violations = Vec::new();
    for t in [650, 720, 1000, HORIZON_S] {
        sw.run_until(&mut eng, secs(t));
        violations.extend(oracle.check(&sw, &eng));
    }

    let t90 = sw
        .timeline(h)
        .time_to_completeness(0.9, n as f64)
        .unwrap_or_else(|| secs(HORIZON_S).saturating_since(secs(600)));
    RunOutcome {
        t90,
        dissem_bytes: sw.stats.dissem_bytes,
        hedges_sent: sw.stats.hedges_sent,
        hedge_wins: sw.stats.hedge_wins,
        hedge_losses: sw.stats.hedge_losses,
        hedge_wasted_bytes: sw.stats.hedge_wasted_bytes,
        give_ups: sw.stats.dissem_give_ups,
        reissues: sw.stats.dissem_reissues,
        violations,
    }
}

/// Nearest-rank percentile of already-run delays (integer sort, no
/// float comparisons).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

struct Aggregate {
    cfg: Config,
    p50: u64,
    p90: u64,
    p99: u64,
    mean_dissem_bytes: u64,
    hedges_sent: u64,
    hedge_wins: u64,
    hedge_losses: u64,
    hedge_wasted_bytes: u64,
    give_ups: u64,
    reissues: u64,
    oracle_ok: bool,
}

fn label(cfg: Config) -> String {
    let hedge = cfg
        .hedge
        .map_or_else(|| "off".to_owned(), |f| format!("{f:.2}"));
    format!(
        "hedge={hedge} churn={} sel={}",
        u8::from(cfg.churn),
        match cfg.selection {
            SelectionKind::IdOrder => "id",
            SelectionKind::AvailAware => "avail",
        }
    )
}

fn main() {
    let args = Args::parse();
    let n = args.get("n", 36usize);
    let routers = args.get("routers", 24usize);
    let seed0 = args.get("seed", 42u64);
    let seeds = args.get("seeds", 24u64);
    let out = args.get_str("out", "results/abl07.csv");

    let mut configs = Vec::new();
    for churn in [false, true] {
        for selection in [SelectionKind::IdOrder, SelectionKind::AvailAware] {
            for hedge in [None, Some(0.25), Some(0.5), Some(0.75)] {
                configs.push(Config {
                    hedge,
                    churn,
                    selection,
                });
            }
        }
    }
    println!(
        "Ablation 07: hedged dissemination, {n} endsystems, {routers} routers, \
         {} configs x seeds {seed0}..{}",
        configs.len(),
        seed0 + seeds
    );

    let runs: Vec<(Config, u64)> = configs
        .iter()
        .flat_map(|&c| (seed0..seed0 + seeds).map(move |s| (c, s)))
        .collect();
    // lint:allow(D002): operator-facing progress timing for a host-side experiment driver, never feeds simulated time
    let t0 = std::time::Instant::now();
    let outcomes = run_sweep(runs.clone(), jobs(&args, runs.len()), |_, &(c, s)| {
        run_one(c, s, n, routers)
    });
    println!(
        "  {} runs simulated in {:.1}s",
        runs.len(),
        t0.elapsed().as_secs_f64()
    );

    let mut failed = false;
    let aggregates: Vec<Aggregate> = configs
        .iter()
        .enumerate()
        .map(|(ci, &cfg)| {
            let slice = &outcomes[ci * seeds as usize..(ci + 1) * seeds as usize];
            let mut delays: Vec<u64> = slice.iter().map(|o| o.t90.as_micros()).collect();
            delays.sort_unstable();
            let mut oracle_ok = true;
            for (o, (_, seed)) in slice.iter().zip(&runs[ci * seeds as usize..]) {
                for v in &o.violations {
                    eprintln!("  {} seed {seed}: ORACLE VIOLATION: {v}", label(cfg));
                    oracle_ok = false;
                    failed = true;
                }
            }
            Aggregate {
                cfg,
                p50: percentile(&delays, 50),
                p90: percentile(&delays, 90),
                p99: percentile(&delays, 99),
                mean_dissem_bytes: slice.iter().map(|o| o.dissem_bytes).sum::<u64>() / seeds.max(1),
                hedges_sent: slice.iter().map(|o| o.hedges_sent).sum(),
                hedge_wins: slice.iter().map(|o| o.hedge_wins).sum(),
                hedge_losses: slice.iter().map(|o| o.hedge_losses).sum(),
                hedge_wasted_bytes: slice.iter().map(|o| o.hedge_wasted_bytes).sum(),
                give_ups: slice.iter().map(|o| o.give_ups).sum(),
                reissues: slice.iter().map(|o| o.reissues).sum(),
                oracle_ok,
            }
        })
        .collect();

    let rows: Vec<Vec<f64>> = aggregates
        .iter()
        .map(|a| {
            vec![
                a.cfg.hedge.unwrap_or(-1.0),
                f64::from(u8::from(a.cfg.churn)),
                f64::from(u8::from(a.cfg.selection == SelectionKind::AvailAware)),
                seeds as f64,
                a.p50 as f64,
                a.p90 as f64,
                a.p99 as f64,
                a.mean_dissem_bytes as f64,
                a.hedges_sent as f64,
                a.hedge_wins as f64,
                a.hedge_losses as f64,
                a.hedge_wasted_bytes as f64,
                a.give_ups as f64,
                f64::from(u8::from(a.oracle_ok)),
            ]
        })
        .collect();
    write_csv(
        &out,
        &[
            "hedge_fraction",
            "churn",
            "avail_aware",
            "seeds",
            "p50_t90_us",
            "p90_t90_us",
            "p99_t90_us",
            "mean_dissem_bytes",
            "hedges_sent",
            "hedge_wins",
            "hedge_losses",
            "hedge_wasted_bytes",
            "give_ups",
            "oracle_ok",
        ],
        &rows,
    );

    let mut t = OutTable::new(&[
        "config", "p50 t90", "p90 t90", "p99 t90", "dissem B", "hedges", "wins", "wasted B",
        "reiss", "giveup", "oracle",
    ]);
    let fmt_s = |us: u64| format!("{:.2}s", us as f64 / 1e6);
    for a in &aggregates {
        t.row(vec![
            label(a.cfg),
            fmt_s(a.p50),
            fmt_s(a.p90),
            fmt_s(a.p99),
            a.mean_dissem_bytes.to_string(),
            a.hedges_sent.to_string(),
            a.hedge_wins.to_string(),
            a.hedge_wasted_bytes.to_string(),
            a.reissues.to_string(),
            a.give_ups.to_string(),
            if a.oracle_ok { "ok" } else { "VIOLATED" }.to_string(),
        ]);
    }
    t.print();

    // Headline: default threshold (0.5 x dissem_timeout) vs hedging off,
    // per churn x selection cell.
    println!("  default threshold (0.5) vs off:");
    for churn in [false, true] {
        for selection in [SelectionKind::IdOrder, SelectionKind::AvailAware] {
            let find = |hedge: Option<f64>| {
                aggregates.iter().find(|a| {
                    a.cfg.churn == churn && a.cfg.selection == selection && a.cfg.hedge == hedge
                })
            };
            let (Some(off), Some(def)) = (find(None), find(Some(0.5))) else {
                continue;
            };
            let p99_cut = 100.0 - 100.0 * def.p99 as f64 / off.p99 as f64;
            let p50_delta = 100.0 * def.p50 as f64 / off.p50 as f64 - 100.0;
            let bw_extra =
                100.0 * def.mean_dissem_bytes as f64 / off.mean_dissem_bytes as f64 - 100.0;
            println!(
                "    churn={} sel={:>5}: p99 {} -> {} ({p99_cut:+.1}% cut), \
                 p50 {p50_delta:+.2}%, dissem bytes {bw_extra:+.2}%",
                u8::from(churn),
                match selection {
                    SelectionKind::IdOrder => "id",
                    SelectionKind::AvailAware => "avail",
                },
                fmt_s(off.p99),
                fmt_s(def.p99),
            );
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("  all oracles clean across {} runs", runs.len());
}
