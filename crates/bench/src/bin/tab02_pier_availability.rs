//! Table 2: expected availability of a source's tuples in PIER, `t` after
//! its last refresh, for Farsite and Gnutella churn — plus the same
//! quantity measured directly on our synthetic traces.

use seaweed_analytic::params::{CHURN_FARSITE, CHURN_GNUTELLA};
use seaweed_analytic::pier_availability;
use seaweed_availability::{AvailabilityTrace, FarsiteConfig, GnutellaConfig};
use seaweed_bench::{write_csv, Args, OutTable};
use seaweed_types::{Duration, Time};

fn main() {
    let args = Args::parse();
    let n = args.get("n", 1500usize);
    let seed = args.get("seed", 1u64);

    let checkpoints = [
        ("5 min", 300.0),
        ("1 hour", 3_600.0),
        ("12 hours", 43_200.0),
    ];

    println!("Table 2: expected availability in PIER (analytic e^-ct)\n");
    let mut t = OutTable::new(&["time since refresh", "Farsite", "Gnutella"]);
    let mut rows = Vec::new();
    for (label, secs) in checkpoints {
        let f = pier_availability(CHURN_FARSITE, secs);
        let g = pier_availability(CHURN_GNUTELLA, secs);
        t.row(vec![
            label.into(),
            format!("{:.1}%", f * 100.0),
            format!("{:.1}%", g * 100.0),
        ]);
        rows.push(vec![secs, f, g]);
    }
    t.print();
    write_csv(
        "results/tab02_pier_availability.csv",
        &["t_secs", "farsite", "gnutella"],
        &rows,
    );

    // Measured on synthetic traces: probability that a source up at a
    // random instant is still up t later (the event that keeps its PIER
    // tuples reachable without waiting for the next refresh).
    println!("\nmeasured on synthetic traces ({n} endsystems):\n");
    let (farsite, _) = FarsiteConfig::small(n, 4).generate(seed);
    let gnutella = GnutellaConfig::small(n, 60).generate(seed);
    let mut m = OutTable::new(&["time since refresh", "Farsite-like", "Gnutella-like"]);
    for (label, secs) in checkpoints {
        let f = survival(&farsite, Duration::from_secs(secs as u64), 4000, seed);
        let g = survival(&gnutella, Duration::from_secs(secs as u64), 4000, seed ^ 1);
        m.row(vec![
            label.into(),
            format!("{:.1}%", f * 100.0),
            format!("{:.1}%", g * 100.0),
        ]);
    }
    m.print();
    println!("\n(the paper's cells: Farsite 99.8 / 98.0 / 78.9; Gnutella 97.3 / 71.6 / 1.8)");
}

/// P(up at s + t | up at s) for uniformly random (node, s) samples —
/// continuous availability is what preserves a PIER source's tuples.
fn survival(trace: &AvailabilityTrace, t: Duration, samples: usize, seed: u64) -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = trace.horizon().as_micros().saturating_sub(t.as_micros());
    let mut up_at_s = 0u64;
    let mut still_up = 0u64;
    while up_at_s < samples as u64 {
        let node = rng.gen_range(0..trace.num_endsystems());
        let s = Time::from_micros(rng.gen_range(0..horizon));
        if !trace.is_up(node, s) {
            continue;
        }
        up_at_s += 1;
        // "Still available": never left between s and s + t (a departure
        // moves the key's root even if the node returns).
        let continuously = trace
            .intervals(node)
            .iter()
            .any(|&(up, down)| up <= s && s + t < down);
        still_up += u64::from(continuously);
    }
    still_up as f64 / up_at_s as f64
}
