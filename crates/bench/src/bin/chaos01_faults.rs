//! Chaos 01: the full Seaweed stack under a deterministic fault plan —
//! a structural partition, a correlated branch outage with
//! crash-amnesia, bystander crashes, link degradation, duplication and
//! reordering — with the runtime invariant oracles checked at fault-
//! straddling checkpoints.
//!
//! Emits one CSV row per seed (`results/chaos01.csv` by default) with
//! the converged completeness, the per-cause drop ledger and the oracle
//! verdict. Exits non-zero if any oracle invariant is violated, so the
//! binary doubles as a CI chaos smoke; with a fixed `--seed` the CSV is
//! byte-stable across runs.

use seaweed_bench::{write_csv, Args, OutTable};
use seaweed_core::{ChaosOracle, LiveTables, Seaweed, SeaweedConfig, SeaweedEngine};
use seaweed_overlay::{Overlay, OverlayConfig};
use seaweed_sim::{
    CorpNetTopology, CrashSpec, DropStats, Engine, FaultPlan, LinkFaultSpec, NodeIdx, OutageSpec,
    PartitionSpec, SimConfig,
};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// Builds the fault plan from the topology's structure: cut the regional
/// router with the largest subtree, take the biggest branch down with
/// amnesia, degrade one router pair, and crash two bystanders.
fn chaos_plan(topo: &CorpNetTopology, n: usize) -> FaultPlan {
    let regional = (topo.num_core()..topo.num_core() + topo.num_regional())
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .expect("regional routers");
    let partition = PartitionSpec::from_router_cut(topo, regional, secs(602), secs(780));
    let branch = topo
        .branch_routers()
        .max_by_key(|&r| topo.subtree_endsystems(r).len())
        .expect("branch routers");
    let outage = OutageSpec::branch_outage(topo, branch, secs(640), secs(700), true);

    let excluded: Vec<u32> = partition
        .members
        .iter()
        .chain(outage.members.iter())
        .copied()
        .collect();
    let bystanders: Vec<u32> = (1..n as u32)
        .filter(|m| !excluded.contains(m))
        .take(2)
        .collect();
    let crashes = vec![
        CrashSpec {
            node: NodeIdx(bystanders[0]),
            at: secs(630),
            rejoin_after: Duration::from_secs(60),
        },
        CrashSpec {
            node: NodeIdx(bystanders[1]),
            at: secs(690),
            rejoin_after: Duration::from_secs(45),
        },
    ];

    let za = topo.router_of(NodeIdx(1)) as u32;
    let mut zb = topo.router_of(NodeIdx(2)) as u32;
    if zb == za {
        zb = topo.router_of(NodeIdx(3)) as u32;
    }
    FaultPlan {
        partitions: vec![partition],
        link_faults: vec![LinkFaultSpec {
            zone_a: za,
            zone_b: zb,
            from: secs(600),
            until: secs(720),
            extra_loss: 0.15,
            latency_mult: 3.0,
        }],
        crashes,
        outages: vec![outage],
        dup_rate: 0.02,
        reorder_window: Duration::from_millis(50),
    }
}

struct SeedOutcome {
    seed: u64,
    rows: u64,
    retries: u64,
    amnesia: u64,
    states_lost: u64,
    drops: DropStats,
    violations: Vec<String>,
}

fn run_seed(seed: u64, n: usize, routers: usize) -> SeedOutcome {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(n);
    for node in 0..n {
        let mut t = Table::new(schema.clone());
        t.insert(vec![Value::Int(1), Value::Int(node as i64 + 1)])
            .expect("seed row");
        tables.push(t);
    }
    let topo = CorpNetTopology::with_params(n, routers, Duration::MILLISECOND, seed);
    let plan = chaos_plan(&topo, n);
    let mut eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed,
            loss_rate: 0.01,
            faults: Some(plan),
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let mut sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed,
            ..Default::default()
        },
    );
    for i in 0..n {
        eng.schedule_up(Time(1 + i as u64 * 300_000), NodeIdx(i as u32));
    }
    sw.run_until(&mut eng, secs(600));
    let h = sw
        .inject_query(
            &mut eng,
            NodeIdx(0),
            "SELECT SUM(v) FROM T WHERE flag = 1",
            Duration::from_hours(4),
            &schema,
        )
        .expect("inject");

    // Checkpoints straddle every fault window: mid-partition/outage,
    // post-crash-rejoin, post-heal, and converged.
    let oracle = ChaosOracle::new(n as u64);
    let mut violations = Vec::new();
    for t in [650, 720, 800, 1000, 1500] {
        sw.run_until(&mut eng, secs(t));
        violations.extend(oracle.check(&sw, &eng));
    }

    let rows = sw.query(h).rows();
    let retries = sw.stats.result_retries;
    let amnesia = sw.stats.amnesia_crashes;
    let states_lost = sw.stats.vertex_states_lost;
    let drops = eng.finish().drops;
    SeedOutcome {
        seed,
        rows,
        retries,
        amnesia,
        states_lost,
        drops,
        violations,
    }
}

fn main() {
    let args = Args::parse();
    let n = args.get("n", 36usize);
    let routers = args.get("routers", 24usize);
    let seed0 = args.get("seed", 42u64);
    let seeds = args.get("seeds", 8u64);
    let out = args.get_str("out", "results/chaos01.csv");

    println!(
        "Chaos 01: {n} endsystems, {routers} routers, seeds {seed0}..{}",
        seed0 + seeds
    );
    // lint:allow(D002): operator-facing progress timing for a host-side experiment driver, never feeds simulated time
    let t0 = std::time::Instant::now();
    let outcomes: Vec<SeedOutcome> = (seed0..seed0 + seeds)
        .map(|s| run_seed(s, n, routers))
        .collect();
    println!("  simulated in {:.1}s", t0.elapsed().as_secs_f64());

    let rows: Vec<Vec<f64>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.seed as f64,
                o.rows as f64,
                n as f64,
                o.rows as f64 / n as f64,
                o.drops.partition as f64,
                o.drops.link_fault as f64,
                o.drops.random_loss as f64,
                o.drops.dest_down as f64,
                o.drops.duplicated as f64,
                o.retries as f64,
                o.amnesia as f64,
                o.states_lost as f64,
                f64::from(u8::from(o.violations.is_empty())),
            ]
        })
        .collect();
    write_csv(
        &out,
        &[
            "seed",
            "rows",
            "population",
            "completeness",
            "dropped_partition",
            "dropped_link_fault",
            "dropped_loss",
            "dropped_dest_down",
            "duplicated",
            "result_retries",
            "amnesia_crashes",
            "vertex_states_lost",
            "oracle_ok",
        ],
        &rows,
    );

    let mut t = OutTable::new(&[
        "seed",
        "completeness",
        "part",
        "link",
        "loss",
        "down",
        "dup",
        "retries",
        "oracle",
    ]);
    for o in &outcomes {
        t.row(vec![
            o.seed.to_string(),
            format!("{:.2}", o.rows as f64 / n as f64),
            o.drops.partition.to_string(),
            o.drops.link_fault.to_string(),
            o.drops.random_loss.to_string(),
            o.drops.dest_down.to_string(),
            o.drops.duplicated.to_string(),
            o.retries.to_string(),
            if o.violations.is_empty() {
                "ok"
            } else {
                "VIOLATED"
            }
            .to_string(),
        ]);
    }
    t.print();

    // Per-traffic-class drop totals across the sweep.
    let mut by_class = [0u64; 3];
    for o in &outcomes {
        for (acc, &c) in by_class.iter_mut().zip(o.drops.by_class.iter()) {
            *acc += c;
        }
    }
    println!(
        "  drops by class: overlay {} maintenance {} query {}",
        by_class[0], by_class[1], by_class[2]
    );

    let mut failed = false;
    for o in &outcomes {
        for v in &o.violations {
            eprintln!("  seed {}: ORACLE VIOLATION: {v}", o.seed);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("  all oracles clean across {seeds} seeds");
}
