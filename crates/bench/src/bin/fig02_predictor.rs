//! Figure 2: an example completeness predictor — the cumulative expected
//! row count over (log-scaled) time that Seaweed shows the user.

use seaweed_availability::FarsiteConfig;
use seaweed_bench::predsim::PredictionSetup;
use seaweed_bench::{write_csv, Args};
use seaweed_types::{Duration, Time};
use seaweed_workload::{AnemoneConfig, QUERY_HTTP_BYTES};

fn main() {
    let args = Args::parse();
    let n = args.get("n", 1_000usize);
    let seed = args.get("seed", 2u64);
    let weeks = 3u64;

    println!("Figure 2: example completeness predictor ({n} endsystems)");
    let (trace, _) = FarsiteConfig::small(n, weeks).generate(seed);
    let anemone = AnemoneConfig {
        horizon: Duration::WEEK * weeks,
        ..AnemoneConfig::default()
    };
    let setup = PredictionSetup::build(trace, &anemone, seed, &[QUERY_HTTP_BYTES]);

    // Inject late Tuesday evening of week 2 so the overnight/morning
    // structure is visible, as in the paper's illustration.
    let inject = Time::ZERO + Duration::from_days(8) + Duration::from_hours(22);
    let run = setup.run(0, inject, Duration::from_days(4));

    let p = &run.predictor;
    let rows: Vec<Vec<f64>> = p
        .curve()
        .iter()
        .map(|&(d, rows)| vec![d.as_secs_f64(), rows, rows / p.total_rows().max(1e-9)])
        .collect();
    write_csv(
        "results/fig02_predictor.csv",
        &["delay_secs", "expected_rows", "completeness"],
        &rows,
    );

    println!("  query: {QUERY_HTTP_BYTES}");
    println!("  injected at {inject} (Tuesday 22:00)");
    println!("  expected total rows: {:.0}", p.total_rows());
    let mut last = -1.0f64;
    for (label, d) in [
        ("immediately", Duration::ZERO),
        ("after 1 min", Duration::from_mins(1)),
        ("after 1 hour", Duration::from_hours(1)),
        ("after 4 hours", Duration::from_hours(4)),
        ("after 12 hours", Duration::from_hours(12)),
        ("after 1 day", Duration::from_days(1)),
        ("after 3 days", Duration::from_days(3)),
    ] {
        let c = p.completeness_at(d);
        assert!(c >= last, "predictor must be cumulative");
        last = c;
        println!("  {label:<15}{:>6.1}% complete", c * 100.0);
    }
    if let Some(d) = p.delay_for_completeness(0.99) {
        println!("  -> a user wanting 99% completeness should wait about {d}");
    }
}
