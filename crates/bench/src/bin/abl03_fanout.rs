//! Ablation: dissemination fanout (Pastry digit width b).
//!
//! The dissemination tree splits ranges 2^b ways; b also sets the routing
//! table shape. Sweeps b and measures query dissemination cost, predictor
//! latency and routing hop counts.

use seaweed_availability::FarsiteConfig;
use seaweed_bench::fullsim::{run_full, FullSimConfig};
use seaweed_bench::{jobs, run_sweep, write_csv, Args, OutTable};
use seaweed_types::{Duration, Time};

fn main() {
    let args = Args::parse();
    let n = args.get("n", 800usize);
    let seed = args.get("seed", 16u64);

    println!("Ablation: overlay digit width b (dissemination fanout 2^b), {n} endsystems");
    let (trace, _) = {
        let mut fc = FarsiteConfig::small(n, 1);
        fc.horizon = Duration::from_days(3);
        fc.generate(seed)
    };
    let widths = vec![1u8, 2, 4, 8];
    let workers = jobs(&args, widths.len());
    let results = run_sweep(widths, workers, |_, &b| {
        let mut cfg = FullSimConfig::new(seed);
        cfg.overlay.b = b;
        cfg.injections = vec![(0, Time::ZERO + Duration::from_days(1))];
        (b, run_full(&cfg, &trace))
    });
    let mut rows = Vec::new();
    let mut t = OutTable::new(&[
        "b",
        "fanout",
        "dissem msgs",
        "dissem B/endsystem",
        "predictor latency",
        "mean route hops",
    ]);
    for (b, result) in &results {
        let b = *b;
        let latency = result.queries[0]
            .predictor_latency
            .expect("predictor arrives");
        let hops = result.overlay_stats.total_hops as f64
            / result.overlay_stats.delivered_messages.max(1) as f64;
        let dissem_per = result.seaweed_stats.dissem_bytes as f64 / n as f64;
        rows.push(vec![
            f64::from(b),
            f64::from(1u32 << b),
            result.seaweed_stats.disseminate_msgs as f64,
            dissem_per,
            latency.as_secs_f64(),
            hops,
        ]);
        t.row(vec![
            format!("{b}"),
            format!("{}", 1u32 << b),
            format!("{}", result.seaweed_stats.disseminate_msgs),
            format!("{dissem_per:.0}"),
            format!("{latency}"),
            format!("{hops:.2}"),
        ]);
    }
    write_csv(
        "results/abl03_fanout.csv",
        &[
            "b",
            "fanout",
            "dissem_msgs",
            "dissem_bytes_per_endsystem",
            "latency_secs",
            "mean_hops",
        ],
        &rows,
    );
    t.print();
    println!("  (wider digits: fewer hops and lower latency, more messages per split level)");
}
