//! Ablation: delta-encoded metadata pushes.
//!
//! §3.2.2: "We are looking at ... sending delta-encoded histograms which
//! could reduce network overhead compared to pushing the entire
//! histogram." Grows each endsystem's Flow table day by day and compares
//! the cumulative bytes of pushing full summaries vs deltas.

use seaweed_bench::{jobs, run_sweep, write_csv, Args, OutTable};
use seaweed_store::DataSummary;
use seaweed_types::{Duration, Time};
use seaweed_workload::AnemoneConfig;

fn main() {
    let args = Args::parse();
    let n = args.get("n", 40usize);
    let days = args.get("days", 14u64);
    let seed = args.get("seed", 19u64);

    println!("Ablation: delta-encoded summaries ({n} endsystems, {days} days of growth)");
    // One generator over the full horizon; a day-d summary sees only the
    // rows with ts < d days (the table grows monotonically, exactly the
    // update pattern of a deployed endsystem).
    let anemone = AnemoneConfig {
        horizon: Duration::from_days(days),
        ..AnemoneConfig::default()
    };

    // Each endsystem's day-by-day sequence depends only on its own
    // previous summary, so nodes sweep in parallel and days stay
    // sequential inside each node.
    let workers = jobs(&args, n);
    let per_node: Vec<Vec<(u64, u64)>> = run_sweep((0..n).collect(), workers, |_, &node| {
        let mut prev: Option<DataSummary> = None;
        let mut daily = Vec::with_capacity(days as usize);
        for day in 1..=days {
            // The fragment as of `day` days: restrict generation to the
            // first `day` days via the uptime gate.
            let upto = vec![(Time::ZERO, Time::ZERO + Duration::from_days(day))];
            let table = anemone.generate_flow_table(seed, node, &upto);
            let summary = DataSummary::build(&table);
            let full = u64::from(summary.wire_size());
            let delta = u64::from(match &prev {
                Some(p) => summary.delta_wire_size(p),
                None => summary.wire_size(),
            });
            prev = Some(summary);
            daily.push((full, delta));
        }
        daily
    });

    let mut rows = Vec::new();
    let mut t = OutTable::new(&["day", "full push B (mean)", "delta push B (mean)", "saving"]);
    let mut cum_full = 0u64;
    let mut cum_delta = 0u64;
    for day in 1..=days {
        let di = (day - 1) as usize;
        let full: u64 = per_node.iter().map(|d| d[di].0).sum();
        let delta: u64 = per_node.iter().map(|d| d[di].1).sum();
        cum_full += full;
        cum_delta += delta;
        let saving = 100.0 * (1.0 - delta as f64 / full as f64);
        rows.push(vec![
            day as f64,
            full as f64 / n as f64,
            delta as f64 / n as f64,
            saving,
        ]);
        t.row(vec![
            format!("{day}"),
            format!("{:.0}", full as f64 / n as f64),
            format!("{:.0}", delta as f64 / n as f64),
            format!("{saving:.1}%"),
        ]);
    }
    write_csv(
        "results/abl06_delta_encoding.csv",
        &["day", "full_bytes_mean", "delta_bytes_mean", "saving_pct"],
        &rows,
    );
    t.print();
    println!(
        "  cumulative (daily pushes): full {:.1} kB vs delta {:.1} kB per endsystem ({:.1}% saved)",
        cum_full as f64 / n as f64 / 1e3,
        cum_delta as f64 / n as f64 / 1e3,
        100.0 * (1.0 - cum_delta as f64 / cum_full as f64),
    );

    // Second phase: the paper's actual push granularity (~17.5 min).
    // Many windows add no rows at night, so their pushes delta to almost
    // nothing; daytime windows still shift most equi-depth boundaries.
    let sample_nodes = n.min(15);
    let fine = run_sweep(
        (0..sample_nodes).collect(),
        jobs(&args, sample_nodes),
        |_, &node| {
            let (mut full_b, mut delta_b, mut unchanged, mut pushes) = (0u64, 0u64, 0u64, 0u64);
            let mut prev: Option<DataSummary> = None;
            let mut t_us = Duration::from_mins(1050 / 60).as_micros(); // 17.5 min
            let step = Duration::from_secs(1050).as_micros();
            while t_us <= Duration::from_days(1).as_micros() {
                let upto = vec![(Time::ZERO, Time::from_micros(t_us))];
                let table = anemone.generate_flow_table(seed, node, &upto);
                let summary = DataSummary::build(&table);
                full_b += u64::from(summary.wire_size());
                let d = match &prev {
                    Some(p) => {
                        let d = summary.delta_wire_size(p);
                        if *p == summary {
                            unchanged += 1;
                        }
                        d
                    }
                    None => summary.wire_size(),
                };
                delta_b += u64::from(d);
                prev = Some(summary);
                pushes += 1;
                t_us += step;
            }
            (full_b, delta_b, unchanged, pushes)
        },
    );
    let full_b: u64 = fine.iter().map(|r| r.0).sum();
    let delta_b: u64 = fine.iter().map(|r| r.1).sum();
    let unchanged: u64 = fine.iter().map(|r| r.2).sum();
    let pushes: u64 = fine.iter().map(|r| r.3).sum();
    println!(
        "  at the paper's 17.5-min push period (day 1, {sample_nodes} endsystems): \
         full {:.1} kB vs delta {:.1} kB ({:.1}% saved; {:.0}% of pushes unchanged)",
        full_b as f64 / sample_nodes as f64 / 1e3,
        delta_b as f64 / sample_nodes as f64 / 1e3,
        100.0 * (1.0 - delta_b as f64 / full_b as f64),
        100.0 * unchanged as f64 / pushes as f64,
    );
    println!(
        "  finding: equi-depth boundaries shift with every append, so deltas only pay off\n  \
         when a window saw no data (overnight); boundary-stable histograms would delta better"
    );
}
