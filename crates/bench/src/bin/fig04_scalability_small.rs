//! Figure 4: the same four scalability panels as Figure 3, but with a
//! small database (100 MB) and a low update rate (10 B/s) — the regime
//! where the centralized design wins and PIER is competitive only at
//! small database sizes.

use seaweed_analytic::params::PIER_REFRESH_1H;
use seaweed_analytic::{maintenance_bps, Architecture, ModelParams};
use seaweed_bench::figures::run_scalability_panels;
use seaweed_bench::{Args, OutTable};

fn main() {
    let args = Args::parse();
    let points = args.get("points", 25usize);
    let base = ModelParams::small_db_low_rate();
    println!("Figure 4: scalability with d = 100 MB, u = 10 B/s");
    run_scalability_panels(&base, "fig04", points);

    let mut t = OutTable::new(&["architecture", "bytes/sec system-wide"]);
    let mut p1h = base;
    p1h.r = PIER_REFRESH_1H;
    for (name, v) in [
        (
            "Centralized",
            maintenance_bps(Architecture::Centralized, &base),
        ),
        ("Seaweed", maintenance_bps(Architecture::Seaweed, &base)),
        (
            "DHT-replicated",
            maintenance_bps(Architecture::DhtReplicated, &base),
        ),
        ("PIER (5 min)", maintenance_bps(Architecture::Pier, &base)),
        ("PIER (1 h)", maintenance_bps(Architecture::Pier, &p1h)),
    ] {
        t.row(vec![name.into(), format!("{v:.3e}")]);
    }
    println!();
    t.print();
    println!("  (paper: at these rates the centralized approach has the lowest overhead)");
}
