//! Figure 10: Seaweed overhead under high (Gnutella) churn.
//!
//! Paper: a 60-hour Gnutella activity trace, 7,602 endsystems, departure
//! rate 9.46e-5 per online endsystem per second (23× Farsite); mean tx
//! overhead 472 B/s per online endsystem, 99th percentile 1,515 B/s —
//! i.e. the overhead grows only 7× while churn grows 23×.

use seaweed_availability::GnutellaConfig;
use seaweed_bench::fullsim::{run_full, FullSimConfig};
use seaweed_bench::{write_csv, Args, OutTable};
use seaweed_sim::TrafficClass;
use seaweed_types::{Duration, Time};

fn main() {
    let args = Args::parse();
    let full = args.has("full");
    let n = args.get("n", if full { 7_602 } else { 1_200 });
    let hours = args.get("hours", 60u64);
    let seed = args.get("seed", 10u64);

    println!("Figure 10: {n} endsystems under Gnutella-like churn, {hours} h");
    let trace = GnutellaConfig::small(n, hours).generate(seed);
    let stats = trace.stats();
    println!(
        "  trace: availability {:.1}%, departures {:.2e}/online/s (paper: 9.46e-5)",
        stats.mean_availability * 100.0,
        stats.departure_rate_per_online_sec,
    );

    let mut cfg = FullSimConfig::new(seed);
    cfg.injections = vec![(0, Time::ZERO + Duration::from_hours(hours / 2))];
    // lint:allow(D002): operator-facing progress timing for a host-side experiment driver, never feeds simulated time
    let t0 = std::time::Instant::now();
    let result = run_full(&cfg, &trace);
    println!(
        "  simulated in {:.1}s ({} messages)",
        t0.elapsed().as_secs_f64(),
        result.sim_events
    );

    // (a) hourly overhead series.
    let rows: Vec<Vec<f64>> = result
        .report
        .tx_hours
        .iter()
        .enumerate()
        .map(|(h, agg)| {
            vec![
                h as f64,
                agg.per_online_bps(TrafficClass::Overlay),
                agg.per_online_bps(TrafficClass::Maintenance),
                agg.per_online_bps(TrafficClass::Query),
                agg.total_per_online_bps(),
            ]
        })
        .collect();
    write_csv(
        "results/fig10a_churn_timeseries.csv",
        &[
            "hour",
            "pastry_bps",
            "maintenance_bps",
            "query_bps",
            "total_bps",
        ],
        &rows,
    );

    // (b) CDF.
    let cdf_rows: Vec<Vec<f64>> = (0..=100)
        .map(|p| {
            vec![
                f64::from(result.report.tx_percentile(f64::from(p))),
                f64::from(result.report.rx_percentile(f64::from(p))),
                f64::from(p) / 100.0,
            ]
        })
        .collect();
    write_csv(
        "results/fig10b_churn_cdf.csv",
        &["tx_bps", "rx_bps", "cdf"],
        &cdf_rows,
    );

    let mean = result.report.mean_tx_total_per_online_bps();
    let mut t = OutTable::new(&["metric", "measured", "paper"]);
    t.row(vec![
        "mean tx B/s per online".into(),
        format!("{mean:.0}"),
        "472".into(),
    ]);
    t.row(vec![
        "99th pct tx B/s".into(),
        format!("{:.0}", result.report.tx_percentile(99.0)),
        "1515".into(),
    ]);
    t.row(vec![
        "zero-hours fraction".into(),
        format!("{:.2}", result.report.tx_zero_fraction()),
        "~0.57 (1 - availability)".into(),
    ]);
    t.print();
    println!("  protocol: {:?}", result.seaweed_stats);
    println!("  overlay:  {:?}", result.overlay_stats);
}
