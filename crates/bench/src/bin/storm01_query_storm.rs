//! Storm 01: concurrent multi-query engine under query storms.
//!
//! Sweeps K ∈ {1, 10, 100, 1,000, 10,000} one-shot aggregation queries
//! over a fixed N = 16,000-endsystem CorpNet deployment. Queries are
//! submitted in one burst through storm-mode admission control (64
//! in-flight budget); completed queries are retired so parked
//! submissions promote in ticket order, recycling registry slots behind
//! generation bumps. Every endsystem runs the fair scan scheduler:
//! contended local executions are sliced into preemption quanta and
//! co-finishing queries share one table pass.
//!
//! Reported per K: throughput (queries/simulated-second and wall
//! events/second), p50/p99 delay from admission to 0.9 completeness,
//! fairness spread (max/min delay-to-full-completeness across all K
//! queries), and the storm counters. Every query must reach
//! completeness 1.0 and the chaos oracle must stay clean throughout.
//!
//! The K = 1 point additionally replays the identical run with storm
//! mode disabled and asserts the two event logs are **byte-identical**
//! (same FNV-1a fingerprint, length, rows): the storm machinery may
//! only change behaviour when queries actually contend.
//!
//! Artifacts:
//!
//! * `results/storm01.csv` — simulation-deterministic columns only;
//!   byte-stable for a fixed `--seed` (CI smoke in `scripts/check.sh`).
//! * `BENCH_storm01.json` — adds wall-clock numbers for EXPERIMENTS.md.

use std::collections::HashMap;

use seaweed_bench::{write_csv, Args, OutTable};
use seaweed_core::{
    ChaosOracle, LiveTables, Seaweed, SeaweedConfig, SeaweedEngine, SeaweedMsg, StormConfig,
    Submission,
};
use seaweed_overlay::{Overlay, OverlayConfig, OverlayMsg};
use seaweed_sim::{CorpNetTopology, Engine, Event, NodeIdx, SimConfig};
use seaweed_store::{ColumnDef, DataType, Schema, Table, Value};
use seaweed_types::{Duration, Time};

/// Rows per endsystem fragment; with `QUANTUM_ROWS` below, a contended
/// scan takes two preemption quanta.
const ROWS_PER_NODE: usize = 4;
const QUANTUM_ROWS: u64 = 2;
/// Submission burst time: joins plus one metadata-push cycle first.
const T0_SECS: u64 = 900;

fn secs(s: u64) -> Time {
    Time(s * 1_000_000)
}

/// Distinct query text per storm member (distinct query ids), identical
/// ground truth: every row has `flag = 1`, so every predicate matches
/// the full population.
fn storm_sql(i: usize) -> String {
    format!("SELECT SUM(v) FROM T WHERE flag < {}", 2 + i as i64)
}

/// FNV-1a fingerprint over a compact per-event descriptor (ordering,
/// endpoints and timestamps pin the schedule bit-for-bit). Only engaged
/// for the K=1 byte-identity check; the big sweep points skip the
/// per-event formatting cost.
struct EventLog {
    hash: u64,
    len: u64,
}

impl EventLog {
    fn new() -> Self {
        EventLog {
            hash: 0xcbf2_9ce4_8422_2325,
            len: 0,
        }
    }

    fn add(&mut self, t: Time, ev: &Event<OverlayMsg<SeaweedMsg>>) {
        let desc = match *ev {
            Event::Message { from, to, .. } => format!("m:{}:{}:{}", t.as_micros(), from.0, to.0),
            Event::Timer { node, tag } => format!("t:{}:{}:{tag}", t.as_micros(), node.0),
            Event::NodeUp { node } => format!("u:{}:{}", t.as_micros(), node.0),
            Event::NodeDown { node } => format!("d:{}:{}", t.as_micros(), node.0),
            Event::NodeCrash { node } => format!("c:{}:{}", t.as_micros(), node.0),
            Event::PartitionStart { partition } => format!("ps:{}:{partition}", t.as_micros()),
            Event::PartitionEnd { partition } => format!("pe:{}:{partition}", t.as_micros()),
        };
        for b in desc.as_bytes() {
            self.hash ^= u64::from(*b);
            self.hash = self.hash.wrapping_mul(0x100_0000_01b3);
        }
        self.len += 1;
    }
}

/// Per-query record harvested at completion, before retirement recycles
/// the slot (and with it the timeline).
#[derive(Clone, Copy)]
struct QueryRec {
    /// Admission (injection) time.
    injected: Time,
    /// Admission → 0.9 actual completeness.
    d90: Duration,
    /// Admission → full completeness.
    d100: Duration,
}

struct Point {
    k: usize,
    wall_s: f64,
    events: u64,
    messages: u64,
    tx_bytes: [u64; 3],
    storm_admitted: u64,
    storm_queued: u64,
    stale_handle_drops: u64,
    scan_quanta: u64,
    shared_scan_batches: u64,
    shared_scan_queries: u64,
    p50_d90: Duration,
    p99_d90: Duration,
    min_d100: Duration,
    max_d100: Duration,
    /// max/min delay-to-full-completeness across the K queries.
    fairness_spread: f64,
    /// Simulated seconds from the submission burst to the last
    /// completion.
    sim_span_s: f64,
    log: Option<(u64, u64)>,
    rows_each: u64,
}

#[allow(clippy::too_many_lines)]
fn run_point(
    n: usize,
    k: usize,
    seed: u64,
    storm: Option<StormConfig>,
    fingerprint: bool,
) -> Point {
    let schema = Schema::new(
        "T",
        vec![
            ColumnDef::new("flag", DataType::Int, true),
            ColumnDef::new("v", DataType::Int, true),
        ],
    );
    let mut tables = Vec::with_capacity(n);
    for node in 0..n {
        let mut t = Table::new(schema.clone());
        for r in 0..ROWS_PER_NODE {
            t.insert(vec![Value::Int(1), Value::Int((node + r) as i64 + 1)])
                .expect("seed row");
        }
        tables.push(t);
    }
    let total_rows = (n * ROWS_PER_NODE) as u64;
    let topo = CorpNetTopology::new(n, seed);
    let mut eng: SeaweedEngine = Engine::new(
        Box::new(topo),
        SimConfig {
            seed,
            ..SimConfig::default()
        },
    );
    let overlay = Overlay::new(
        Overlay::random_ids(n, seed),
        OverlayConfig {
            seed,
            ..Default::default()
        },
    );
    let mut sw = Seaweed::new(
        overlay,
        LiveTables::new(tables),
        SeaweedConfig {
            seed,
            storm,
            ..Default::default()
        },
    );
    let step = (60_000_000 / n as u64).max(1);
    for i in 0..n {
        eng.schedule_up(Time(1 + i as u64 * step), NodeIdx(i as u32));
    }

    // lint:allow(D002): host-side benchmark timing for BENCH_storm01.json, never feeds simulated time
    let t0 = std::time::Instant::now();
    let mut events = 0u64;
    let mut log = fingerprint.then(EventLog::new);
    let mut drive = |sw: &mut Seaweed<LiveTables>, eng: &mut SeaweedEngine, horizon: Time| {
        while let Some((t, ev)) = eng.next_event_before(horizon) {
            events += 1;
            if let Some(log) = log.as_mut() {
                log.add(t, &ev);
            }
            sw.dispatch(eng, ev);
        }
    };
    drive(&mut sw, &mut eng, secs(T0_SECS));

    // The storm burst: all K submitted back-to-back. Over budget, the
    // tail parks in the admission queue.
    let ttl = Duration::from_hours(40);
    let mut ticket_to_query: HashMap<u64, usize> = HashMap::new();
    let mut live: Vec<(usize, u32)> = Vec::new();
    for i in 0..k {
        let origin = NodeIdx((i % n) as u32);
        match sw
            .submit_query(&mut eng, origin, &storm_sql(i), ttl, &schema)
            .expect("storm submission")
        {
            Submission::Admitted(h) => live.push((i, h)),
            Submission::Queued(t) => {
                ticket_to_query.insert(t, i);
            }
        }
    }

    // Drive in slices; harvest + retire completed queries each slice so
    // parked submissions promote. The oracle runs periodically and at
    // the end (it walks all per-query state, too heavy for every
    // slice at this scale).
    let oracle = ChaosOracle::new(total_rows);
    let mut recs: Vec<Option<QueryRec>> = vec![None; k];
    let mut completed = 0usize;
    let mut horizon = T0_SECS;
    let mut slices = 0u64;
    while completed < k {
        horizon += 10;
        drive(&mut sw, &mut eng, secs(horizon));
        slices += 1;
        let mut still = Vec::with_capacity(live.len());
        for (i, h) in live.drain(..) {
            if sw.query(h).rows() >= total_rows {
                let tl = sw.timeline(h);
                recs[i] = Some(QueryRec {
                    injected: tl.injected,
                    d90: tl
                        .time_to_completeness(0.9, total_rows as f64)
                        .expect("complete query has d90"),
                    d100: tl
                        .time_to_completeness(1.0, total_rows as f64)
                        .expect("complete query has d100"),
                });
                sw.retire_query(&mut eng, h);
                completed += 1;
            } else {
                still.push((i, h));
            }
        }
        live = still;
        for (t, h) in sw.drain_admissions() {
            let i = ticket_to_query.remove(&t).expect("ticket maps to a query");
            live.push((i, h));
        }
        if slices.is_multiple_of(32) {
            let v = oracle.check(&sw, &eng);
            assert!(
                v.is_empty(),
                "oracle violations at {horizon}s:\n  {}",
                v.join("\n  ")
            );
        }
        assert!(
            horizon < T0_SECS + 500_000,
            "storm stalled: {completed}/{k} complete after {horizon}s"
        );
    }
    let v = oracle.check(&sw, &eng);
    assert!(
        v.is_empty(),
        "final oracle violations:\n  {}",
        v.join("\n  ")
    );
    let wall_s = t0.elapsed().as_secs_f64();

    let recs: Vec<QueryRec> = recs
        .into_iter()
        .map(|r| r.expect("every query completed"))
        .collect();
    let mut d90s: Vec<Duration> = recs.iter().map(|r| r.d90).collect();
    d90s.sort_unstable();
    let p50_d90 = d90s[d90s.len() / 2];
    let p99_d90 = d90s[((d90s.len() * 99) / 100).min(d90s.len() - 1)];
    let min_d100 = recs.iter().map(|r| r.d100).min().expect("k >= 1");
    let max_d100 = recs.iter().map(|r| r.d100).max().expect("k >= 1");
    let last_done = recs
        .iter()
        .map(|r| r.injected + r.d100)
        .max()
        .expect("k >= 1");
    let sim_span_s = last_done.saturating_since(secs(T0_SECS)).as_micros() as f64 / 1e6;
    let fairness_spread = max_d100.as_micros() as f64 / (min_d100.as_micros() as f64).max(1.0);

    let stats = sw.stats;
    let messages = eng.messages_sent;
    let report = eng.finish();
    Point {
        k,
        wall_s,
        events,
        messages,
        tx_bytes: report.total_tx,
        storm_admitted: stats.storm_admitted,
        storm_queued: stats.storm_queued,
        stale_handle_drops: stats.stale_handle_drops,
        scan_quanta: stats.scan_quanta,
        shared_scan_batches: stats.shared_scan_batches,
        shared_scan_queries: stats.shared_scan_queries,
        p50_d90,
        p99_d90,
        min_d100,
        max_d100,
        fairness_spread,
        sim_span_s,
        log: log.map(|l| (l.hash, l.len)),
        rows_each: total_rows,
    }
}

fn write_json(path: &str, seed: u64, n: usize, byte_identical: bool, points: &[Point]) {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("{\n");
    writeln!(out, "  \"bench\": \"storm01_query_storm\",").expect("string write");
    writeln!(out, "  \"seed\": {seed},").expect("string write");
    writeln!(out, "  \"n\": {n},").expect("string write");
    writeln!(out, "  \"k1_byte_identical\": {byte_identical},").expect("string write");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 == points.len() { "" } else { "," };
        writeln!(
            out,
            "    {{\"k\": {}, \"wall_s\": {:.3}, \"events\": {}, \"events_per_s\": {:.0}, \
             \"queries_per_sim_s\": {:.3}, \"p50_d90_s\": {:.3}, \"p99_d90_s\": {:.3}, \
             \"fairness_spread\": {:.3}, \"shared_scan_batches\": {}}}{comma}",
            p.k,
            p.wall_s,
            p.events,
            p.events as f64 / p.wall_s.max(1e-9),
            p.k as f64 / p.sim_span_s.max(1e-9),
            p.p50_d90.as_micros() as f64 / 1e6,
            p.p99_d90.as_micros() as f64 / 1e6,
            p.fairness_spread,
            p.shared_scan_batches,
        )
        .expect("string write");
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("  wrote {path}");
}

fn main() {
    let args = Args::parse();
    let n = args.get("n", 16_000usize);
    let max_k = args.get("max-k", 10_000usize);
    let seed = args.get("seed", 42u64);
    let out = args.get_str("out", "results/storm01.csv");
    let json = args.get_str("json", "BENCH_storm01.json");

    let ks: Vec<usize> = [1usize, 10, 100, 1_000, 10_000]
        .into_iter()
        .filter(|&k| k <= max_k)
        .collect();
    let storm = StormConfig {
        max_in_flight: 64,
        quantum_rows: QUANTUM_ROWS,
        quantum: Duration::from_millis(20),
        max_batch: 8,
    };
    println!("Storm 01: N={n}, K in {ks:?}, seed {seed}");

    // K=1 byte-identity gate: the storm run and the baseline
    // (storm-off) run must produce identical event logs.
    let base = run_point(n, 1, seed, None, true);
    let mut points = Vec::new();
    let mut byte_identical = false;
    for &k in &ks {
        let p = run_point(n, k, seed, Some(storm.clone()), k == 1);
        if k == 1 {
            let (bh, bl) = base.log.expect("baseline fingerprinted");
            let (sh, sl) = p.log.expect("k=1 fingerprinted");
            assert_eq!(
                (bh, bl, base.rows_each),
                (sh, sl, p.rows_each),
                "K=1 storm run diverged from the storm-off baseline"
            );
            byte_identical = true;
            println!("  K=1 byte-identity: OK (fingerprint {bh:016x}, {bl} events)");
        }
        println!(
            "  K={:>6}: {:>10} events, p50 d90 {:>7.2}s, p99 d90 {:>7.2}s, spread {:>5.2}x, \
             {:>6.1}s wall",
            p.k,
            p.events,
            p.p50_d90.as_micros() as f64 / 1e6,
            p.p99_d90.as_micros() as f64 / 1e6,
            p.fairness_spread,
            p.wall_s,
        );
        points.push(p);
    }

    // The CSV carries only simulation-deterministic columns: rerunning
    // with the same seed must reproduce it byte-for-byte on any machine.
    let rows: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            vec![
                p.k as f64,
                p.events as f64,
                p.messages as f64,
                p.tx_bytes[0] as f64,
                p.tx_bytes[1] as f64,
                p.tx_bytes[2] as f64,
                p.storm_admitted as f64,
                p.storm_queued as f64,
                p.stale_handle_drops as f64,
                p.scan_quanta as f64,
                p.shared_scan_batches as f64,
                p.shared_scan_queries as f64,
                p.p50_d90.as_micros() as f64,
                p.p99_d90.as_micros() as f64,
                p.min_d100.as_micros() as f64,
                p.max_d100.as_micros() as f64,
                p.rows_each as f64,
            ]
        })
        .collect();
    write_csv(
        &out,
        &[
            "k",
            "events",
            "messages",
            "tx_overlay_bytes",
            "tx_maintenance_bytes",
            "tx_query_bytes",
            "storm_admitted",
            "storm_queued",
            "stale_handle_drops",
            "scan_quanta",
            "shared_scan_batches",
            "shared_scan_queries",
            "p50_d90_us",
            "p99_d90_us",
            "min_d100_us",
            "max_d100_us",
            "rows_per_query",
        ],
        &rows,
    );
    write_json(&json, seed, n, byte_identical, &points);

    let mut t = OutTable::new(&[
        "k",
        "events",
        "q/sim_s",
        "p50_d90_s",
        "p99_d90_s",
        "spread",
        "wall_s",
    ]);
    for p in &points {
        t.row(vec![
            p.k.to_string(),
            p.events.to_string(),
            format!("{:.2}", p.k as f64 / p.sim_span_s.max(1e-9)),
            format!("{:.2}", p.p50_d90.as_micros() as f64 / 1e6),
            format!("{:.2}", p.p99_d90.as_micros() as f64 / 1e6),
            format!("{:.2}", p.fairness_spread),
            format!("{:.1}", p.wall_s),
        ]);
    }
    t.print();
}
