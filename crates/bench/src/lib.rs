#![forbid(unsafe_code)]
//! Experiment harness: regenerates every table and figure in the paper's
//! evaluation (§4), plus ablations. One binary per experiment lives in
//! `src/bin/`; Criterion micro-benchmarks live in `benches/`.
//!
//! Experiments write CSV series into `results/` and print the headline
//! numbers (the ones quoted in the paper's prose) to stdout. Default
//! scales are laptop-sized; every binary takes `--full` to run at the
//! paper's scale, and `--n/--seed/--weeks` style overrides. See
//! EXPERIMENTS.md for the mapping and recorded outcomes.

pub mod cli;
pub mod figures;
pub mod fullsim;
pub mod output;
pub mod parallel;
pub mod predsim;

pub use cli::Args;
pub use output::{write_csv, Table as OutTable};
pub use parallel::{jobs, run_sweep};
