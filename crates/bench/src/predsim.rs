//! The availability-only simulator behind Figures 5–8.
//!
//! The paper: "these experiments used a simplified simulator that
//! correctly captures the effect of availability on completeness but does
//! not do packet-level simulation" (§4.3.2). Exactly that: per-endsystem
//! workload fragments are generated once (gated on the availability
//! trace), reduced to exact row counts and summary estimates per query,
//! and dropped; a query injection then
//!
//! 1. builds the completeness predictor the way the protocol would —
//!    availability models learned from each endsystem's own history up to
//!    the injection instant, summary-based row estimates, return-time
//!    prediction for the currently-down; and
//! 2. replays the trace forward to measure *actual* cumulative rows as
//!    endsystems become available.

use seaweed_availability::{AvailabilityModel, AvailabilityTrace, ModelConfig};
use seaweed_core::Predictor;
use seaweed_store::exec::count_matching;
use seaweed_store::{BoundQuery, DataSummary, Query};
use seaweed_types::{Duration, Time};
use seaweed_workload::{flow_schema, AnemoneConfig};

/// Pre-computed per-endsystem answers for a fixed query set over a trace.
pub struct PredictionSetup {
    pub trace: AvailabilityTrace,
    pub queries: Vec<(String, BoundQuery)>,
    /// `[query][node]` exact relevant rows.
    pub exact: Vec<Vec<u64>>,
    /// `[query][node]` summary-estimated relevant rows.
    pub estimate: Vec<Vec<f64>>,
}

impl PredictionSetup {
    /// Generates `n` endsystems of Anemone data gated on a trace and
    /// reduces them against `queries`. Fragments are processed one at a
    /// time and dropped (the paper's own pre-computation strategy), so
    /// this scales to the full 51,663-endsystem population.
    #[must_use]
    pub fn build(
        trace: AvailabilityTrace,
        anemone: &AnemoneConfig,
        seed: u64,
        queries: &[&str],
    ) -> Self {
        let n = trace.num_endsystems();
        let schema = flow_schema();
        let bound: Vec<(String, BoundQuery)> = queries
            .iter()
            .map(|sql| {
                let q = Query::parse(sql).expect("query parses");
                let b = q.bind(&schema, 0).expect("query binds");
                ((*sql).to_owned(), b)
            })
            .collect();
        let mut exact = vec![vec![0u64; n]; bound.len()];
        let mut estimate = vec![vec![0f64; n]; bound.len()];
        for node in 0..n {
            let table = anemone.generate_flow_table(seed, node, trace.intervals(node));
            let summary = DataSummary::build(&table);
            for (qi, (_, b)) in bound.iter().enumerate() {
                exact[qi][node] = count_matching(b, &table);
                estimate[qi][node] = summary.estimate_rows(b);
            }
        }
        PredictionSetup {
            trace,
            queries: bound,
            exact,
            estimate,
        }
    }

    /// Injects query `qi` at `inject` and tracks for `track`, returning
    /// the predictor built at injection plus the actual completeness
    /// curve.
    #[must_use]
    pub fn run(&self, qi: usize, inject: Time, track: Duration) -> PredictionRun {
        self.run_with_model(qi, inject, track, ModelConfig::default())
    }

    /// As [`PredictionSetup::run`] with an explicit availability-model
    /// configuration (used by the classification-threshold ablation).
    #[must_use]
    pub fn run_with_model(
        &self,
        qi: usize,
        inject: Time,
        track: Duration,
        model_cfg: ModelConfig,
    ) -> PredictionRun {
        self.run_with_return_predictor(qi, inject, track, |trace, node, down_since, now| {
            // Learn the model from this endsystem's own history up to the
            // injection instant, exactly as the endsystem itself would.
            let model =
                AvailabilityModel::learn_from_intervals(model_cfg, trace.intervals(node), now);
            model.predict_return(now, down_since)
        })
    }

    /// Fully pluggable variant: `predict(trace, node, down_since, now)`
    /// supplies the return-time distribution for each down endsystem —
    /// used by the predictor-comparison ablation.
    pub fn run_with_return_predictor<F>(
        &self,
        qi: usize,
        inject: Time,
        track: Duration,
        predict: F,
    ) -> PredictionRun
    where
        F: Fn(&AvailabilityTrace, usize, Time, Time) -> seaweed_availability::ReturnPrediction,
    {
        let n = self.trace.num_endsystems();
        let mut predictor = Predictor::new();
        // (time available, exact rows) for each endsystem reachable
        // within the window.
        let mut arrivals: Vec<(Duration, u64)> = Vec::with_capacity(n);
        let horizon = inject + track;

        for node in 0..n {
            let est = self.estimate[qi][node];
            if self.trace.is_up(node, inject) {
                predictor.add_available(est);
            } else {
                let down_since = last_down_before(&self.trace, node, inject);
                let ret = predict(&self.trace, node, down_since, inject);
                predictor.add_unavailable(est, &ret);
            }
            // Ground truth: when does this endsystem actually contribute?
            if let Some(up_at) = self.trace.next_up_at(node, inject) {
                if up_at <= horizon {
                    arrivals.push((up_at.saturating_since(inject), self.exact[qi][node]));
                }
            }
        }
        arrivals.sort_by_key(|&(d, _)| d);
        PredictionRun {
            predictor,
            arrivals,
            track,
        }
    }

    /// Sum of exact rows over the whole population (the query's global
    /// relevant-row count).
    #[must_use]
    pub fn population_rows(&self, qi: usize) -> u64 {
        self.exact[qi].iter().sum()
    }
}

/// When `node` last went down at or before `t` (the instant its replica
/// set would have noticed). Zero if it has never been up.
fn last_down_before(trace: &AvailabilityTrace, node: usize, t: Time) -> Time {
    let mut last = Time::ZERO;
    for &(up, down) in trace.intervals(node) {
        if up > t {
            break;
        }
        if down <= t {
            last = down;
        }
    }
    last
}

/// Result of one injection: predictor vs measured arrivals.
pub struct PredictionRun {
    pub predictor: Predictor,
    /// `(delay after injection, exact rows)`, sorted by delay, for every
    /// endsystem that became available within the tracking window.
    pub arrivals: Vec<(Duration, u64)>,
    pub track: Duration,
}

impl PredictionRun {
    /// Actual cumulative rows available `d` after injection.
    #[must_use]
    pub fn actual_rows_at(&self, d: Duration) -> u64 {
        self.arrivals
            .iter()
            .take_while(|&&(a, _)| a <= d)
            .map(|&(_, r)| r)
            .sum()
    }

    /// Total rows contributed within the tracking window.
    #[must_use]
    pub fn actual_total(&self) -> u64 {
        self.arrivals.iter().map(|&(_, r)| r).sum()
    }

    /// The paper's prediction-error metric at a checkpoint: predicted
    /// minus actual cumulative rows, as a percentage of the final actual
    /// total.
    #[must_use]
    pub fn error_pct_at(&self, d: Duration) -> f64 {
        let total = self.actual_total() as f64;
        if total <= 0.0 {
            return 0.0;
        }
        let predicted = self.predictor.expected_rows_within(d);
        let actual = self.actual_rows_at(d) as f64;
        100.0 * (predicted - actual) / total
    }

    /// Error of the predicted total row count vs the actual total.
    #[must_use]
    pub fn total_error_pct(&self) -> f64 {
        let total = self.actual_total() as f64;
        if total <= 0.0 {
            return 0.0;
        }
        100.0 * (self.predictor.total_rows() - total) / total
    }

    /// `(delay, predicted rows, actual rows)` sampled at the predictor's
    /// curve points plus arrival events — the Figures 5–8(a) series.
    #[must_use]
    pub fn curve(&self, points: usize) -> Vec<(Duration, f64, u64)> {
        let mut out = Vec::with_capacity(points);
        // Log-spaced sample times from 30 s to the window end.
        let lo = 30.0f64;
        let hi = self.track.as_secs_f64();
        for i in 0..points {
            let t = lo * (hi / lo).powf(i as f64 / (points - 1) as f64);
            let d = Duration::from_secs_f64(t);
            out.push((
                d,
                self.predictor.expected_rows_within(d),
                self.actual_rows_at(d),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaweed_availability::FarsiteConfig;

    fn setup() -> PredictionSetup {
        let (trace, _) = FarsiteConfig::small(120, 2).generate(3);
        let anemone = AnemoneConfig {
            horizon: Duration::WEEK * 2,
            ..AnemoneConfig::default()
        };
        PredictionSetup::build(
            trace,
            &anemone,
            3,
            &["SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80"],
        )
    }

    #[test]
    fn prediction_error_is_small_on_farsite_trace() {
        let s = setup();
        // Inject Tuesday 00:00 of week 2, track 48 h (the paper's main
        // configuration).
        let inject = Time::ZERO + Duration::from_days(8);
        let run = s.run(0, inject, Duration::from_hours(48));
        assert!(run.actual_total() > 0);
        // The paper reports <5% at every checkpoint; at our small scale
        // allow a slightly wider band.
        for hours in [0u64, 1, 2, 4, 8, 24] {
            let e = run.error_pct_at(Duration::from_hours(hours));
            assert!(e.abs() < 8.0, "error at +{hours}h = {e:.2}%");
        }
        // Total-row-count error (histogram estimation only): paper says
        // <0.5%; allow 3% at this scale.
        assert!(
            run.total_error_pct().abs() < 3.0,
            "total error {:.2}%",
            run.total_error_pct()
        );
    }

    #[test]
    fn actual_curve_is_monotone_and_bounded() {
        let s = setup();
        let inject = Time::ZERO + Duration::from_days(9);
        let run = s.run(0, inject, Duration::from_hours(48));
        let curve = run.curve(24);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1, "predicted curve must be monotone");
            assert!(w[1].2 >= w[0].2, "actual curve must be monotone");
        }
        assert!(run.actual_total() <= s.population_rows(0));
        assert_eq!(run.actual_rows_at(run.track), run.actual_total());
    }

    #[test]
    fn immediate_rows_match_currently_up_endsystems() {
        let s = setup();
        let inject = Time::ZERO + Duration::from_days(8) + Duration::from_hours(14);
        let run = s.run(0, inject, Duration::from_hours(48));
        // At injection, actual == rows of endsystems already up; the
        // predictor's immediate bucket estimates the same set.
        let immediate_actual = run.actual_rows_at(Duration::ZERO) as f64;
        let immediate_pred = run.predictor.immediate_rows();
        let denom = run.actual_total() as f64;
        assert!(
            ((immediate_pred - immediate_actual) / denom).abs() < 0.05,
            "immediate: pred {immediate_pred:.0} vs actual {immediate_actual:.0}"
        );
    }
}
