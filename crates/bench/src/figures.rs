//! Shared figure-generation helpers used by several experiment binaries.

use seaweed_analytic::{sweep, ModelParams, SweepAxis};
use seaweed_availability::FarsiteConfig;
use seaweed_types::{Duration, Time};
use seaweed_workload::AnemoneConfig;

use crate::cli::Args;
use crate::output::write_csv;
use crate::predsim::PredictionSetup;

/// Writes the four Figure 3 / Figure 4 panels as CSVs under `results/`
/// with the given filename prefix.
pub fn run_scalability_panels(base: &ModelParams, prefix: &str, points: usize) {
    let panels = [
        (SweepAxis::NetworkSize, "a_network_size"),
        (SweepAxis::UpdateRate, "b_update_rate"),
        (SweepAxis::DatabaseSize, "c_database_size"),
        (SweepAxis::ChurnRate, "d_churn_rate"),
    ];
    for (axis, name) in panels {
        let (lo, hi) = axis.default_range();
        let pts = sweep(base, axis, lo, hi, points);
        let rows: Vec<Vec<f64>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.x,
                    p.centralized,
                    p.seaweed,
                    p.dht_replicated,
                    p.pier_5min,
                    p.pier_1h,
                ]
            })
            .collect();
        write_csv(
            &format!("results/{prefix}_{name}.csv"),
            &[
                "x",
                "centralized",
                "seaweed",
                "dht_replicated",
                "pier_5min",
                "pier_1h",
            ],
            &rows,
        );
    }
}

/// Error checkpoints used in the Figures 5–8 right-hand panels.
pub const ERROR_CHECKPOINTS: [(&str, u64); 5] = [
    ("immediate", 0),
    ("after 1 hr", 1),
    ("after 2 hrs", 2),
    ("after 4 hrs", 4),
    ("after 8 hrs", 8),
];

/// Runs one of the completeness-prediction experiments (Figures 5–8):
/// predicted-vs-actual curve for a Tuesday-midnight injection, error
/// panels across four consecutive weekdays and across times of day.
/// Returns the worst absolute checkpoint error seen (per cent).
pub fn run_prediction_figure(figure: u32, sql: &str, args: &Args) -> f64 {
    let full = args.has("full");
    let n = args.get("n", if full { 51_663 } else { 2_000 });
    let seed = args.get("seed", figure as u64);
    let weeks = 4u64;
    let track = Duration::from_hours(48);

    println!("Figure {figure}: {sql}");
    println!("  population {n}, trace {weeks} weeks, seed {seed}");
    // lint:allow(D002): operator-facing progress timing for a host-side experiment driver, never feeds simulated time
    let t_gen = std::time::Instant::now();
    let (trace, _) = FarsiteConfig::small(n, weeks).generate(seed);
    let anemone = AnemoneConfig {
        horizon: Duration::WEEK * weeks,
        ..AnemoneConfig::default()
    };
    let setup = PredictionSetup::build(trace, &anemone, seed, &[sql]);
    println!(
        "  data + summaries generated in {:.1}s",
        t_gen.elapsed().as_secs_f64()
    );

    // (a) Predicted vs actual completeness; injection Tuesday 00:00 of
    // week 3 (the paper injected Tuesday 20 July 1999 00:00 after a
    // two-week warmup).
    let tue_week3 = Time::ZERO + Duration::from_days(15);
    let run = setup.run(0, tue_week3, track);
    let rows: Vec<Vec<f64>> = run
        .curve(48)
        .iter()
        .map(|&(d, pred, act)| vec![d.as_secs_f64() / 3600.0, pred, act as f64])
        .collect();
    write_csv(
        &format!("results/fig{figure:02}a_predicted_vs_actual.csv"),
        &["hours_since_query", "predicted_rows", "actual_rows"],
        &rows,
    );
    println!(
        "  (a) Tuesday 00:00 injection: total {:.2e} rows; predicted total {:.2e} ({:+.2}% off)",
        run.actual_total() as f64,
        run.predictor.total_rows(),
        run.total_error_pct()
    );

    let mut worst: f64 = 0.0;

    // (b) Errors across four consecutive weekdays (Tue..Fri, 00:00).
    let mut day_rows = Vec::new();
    println!("  (b) prediction error by injection day (%):");
    for day in 0..4u64 {
        let inject = tue_week3 + Duration::from_days(day);
        let r = setup.run(0, inject, track);
        let mut row = vec![day as f64];
        let mut line = format!("      day +{day}:");
        for (_, h) in ERROR_CHECKPOINTS {
            let e = r.error_pct_at(Duration::from_hours(h));
            worst = worst.max(e.abs());
            row.push(e);
            line += &format!(" {e:+.2}");
        }
        let te = r.total_error_pct();
        worst = worst.max(te.abs());
        row.push(te);
        day_rows.push(row);
        println!("{line}  total {te:+.2}");
    }
    write_csv(
        &format!("results/fig{figure:02}b_error_by_day.csv"),
        &["day_offset", "immediate", "h1", "h2", "h4", "h8", "total"],
        &day_rows,
    );

    // (c) Errors across times of day (every 2 h through Tuesday).
    let mut tod_rows = Vec::new();
    for slot in 0..12u64 {
        let inject = tue_week3 + Duration::from_hours(2 * slot);
        let r = setup.run(0, inject, track);
        let mut row = vec![(2 * slot) as f64];
        for (_, h) in ERROR_CHECKPOINTS {
            let e = r.error_pct_at(Duration::from_hours(h));
            worst = worst.max(e.abs());
            row.push(e);
        }
        row.push(r.total_error_pct());
        tod_rows.push(row);
    }
    write_csv(
        &format!("results/fig{figure:02}c_error_by_time_of_day.csv"),
        &["inject_hour", "immediate", "h1", "h2", "h4", "h8", "total"],
        &tod_rows,
    );

    println!("  worst |error| over all injections/checkpoints: {worst:.2}% (paper: < 5%)");
    worst
}
