//! Criterion micro-benchmarks for the hot paths of every layer:
//! hashing, id arithmetic, the vertex parent function, histogram
//! construction and estimation, aggregate/predictor merging, SQL parsing,
//! overlay routing and raw engine throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use seaweed_availability::ReturnPrediction;
use seaweed_core::predictor::Predictor;
use seaweed_core::vertex::chain_to_root;
use seaweed_overlay::{Overlay, OverlayConfig, OverlayEvent, OverlayMsg};
use seaweed_sim::{
    Engine, Event, NodeIdx, SchedulerKind, SimConfig, TrafficClass, UniformTopology,
};
use seaweed_store::histogram::NumericHistogram;
use seaweed_store::{AggFunc, Aggregate, CmpOp, Query};
use seaweed_types::{sha1, Duration, Id, Time};

fn bench_sha1(c: &mut Criterion) {
    let mut g = c.benchmark_group("sha1");
    for size in [64usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| sha1::sha1(black_box(&data)));
        });
    }
    g.finish();
}

fn bench_id_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let ids: Vec<Id> = (0..1024).map(|_| Id::random(&mut rng)).collect();
    c.bench_function("id/prefix_len_b4", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 1023;
            black_box(ids[i].prefix_len(ids[i + 1], 4))
        });
    });
    c.bench_function("id/ring_dist", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 1023;
            black_box(ids[i].ring_dist(ids[i + 1]))
        });
    });
}

fn bench_vertex_chain(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let query = Id::random(&mut rng);
    let starts: Vec<Id> = (0..256).map(|_| Id::random(&mut rng)).collect();
    c.bench_function("vertex/chain_to_root_b4", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % starts.len();
            black_box(chain_to_root(query, starts[i], 4))
        });
    });
}

fn bench_histograms(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let values: Vec<f64> = (0..100_000)
        .map(|_| (rng.gen::<f64>() * 1e6).floor())
        .collect();
    c.bench_function("histogram/build_100k_64buckets", |b| {
        b.iter(|| NumericHistogram::build(black_box(&values), 64));
    });
    let hist = NumericHistogram::build(&values, 64);
    c.bench_function("histogram/estimate_range", |b| {
        b.iter(|| black_box(hist.estimate(CmpOp::Lt, 500_000.0)));
    });
}

fn bench_merges(c: &mut Criterion) {
    let mut agg_a = Aggregate::empty(AggFunc::Avg);
    let mut agg_b = Aggregate::empty(AggFunc::Avg);
    for i in 0..100 {
        agg_a.fold(f64::from(i));
        agg_b.fold(f64::from(i) * 2.0);
    }
    c.bench_function("aggregate/merge", |b| {
        b.iter(|| {
            let mut m = black_box(agg_a);
            m.merge(black_box(&agg_b));
            black_box(m)
        });
    });

    let mut pred_a = Predictor::new();
    let mut pred_b = Predictor::new();
    for i in 1..50u64 {
        pred_a.add_available(i as f64);
        pred_b.add_unavailable(
            i as f64,
            &ReturnPrediction::point(Duration::from_mins(i * 11)),
        );
    }
    c.bench_function("predictor/merge", |b| {
        b.iter(|| {
            let mut m = black_box(pred_a.clone());
            m.merge(black_box(&pred_b));
            black_box(m)
        });
    });
    c.bench_function("predictor/completeness_at", |b| {
        b.iter(|| black_box(pred_b.completeness_at(Duration::from_hours(3))));
    });
}

fn bench_sql(c: &mut Criterion) {
    const SQL: &str =
        "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80 AND ts <= NOW() AND ts >= NOW() - 86400";
    c.bench_function("sql/parse_paper_query", |b| {
        b.iter(|| Query::parse(black_box(SQL)).expect("parses"));
    });
}

/// Builds a joined 500-node overlay once, then measures routing one
/// message end-to-end (all hops, event loop included).
fn bench_routing(c: &mut Criterion) {
    let n = 500usize;
    let mut eng: Engine<OverlayMsg<u64>> = Engine::new(
        Box::new(UniformTopology::new(n, Duration::from_millis(1))),
        SimConfig::default(),
    );
    let mut ov = Overlay::new(Overlay::random_ids(n, 4), OverlayConfig::default());
    for i in 0..n {
        eng.schedule_up(Time::from_micros(1 + i as u64 * 100_000), NodeIdx(i as u32));
    }
    // Drain to quiescence.
    let mut horizon = Time::ZERO + Duration::from_hours(1);
    while let Some((_, ev)) = eng.next_event_before(horizon) {
        match ev {
            Event::Message { from, to, payload } => {
                let _ = ov.on_message(&mut eng, from, to, payload.into_owned());
            }
            Event::Timer { node, tag } => {
                let _ = ov.on_timer(&mut eng, node, tag);
            }
            Event::NodeUp { node } => {
                let _: Vec<OverlayEvent<u64>> = ov.node_up(&mut eng, node);
            }
            Event::NodeDown { node } => ov.node_down(&mut eng, node),
            // No fault plan configured: crash/partition events can't occur.
            Event::NodeCrash { .. } | Event::PartitionStart { .. } | Event::PartitionEnd { .. } => {
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(5);
    c.bench_function("overlay/route_500_nodes", |b| {
        b.iter(|| {
            let key = Id::random(&mut rng);
            let from = NodeIdx(rng.gen_range(0..n as u32));
            let mut delivered = ov.route(&mut eng, from, key, 1, 64, TrafficClass::Query);
            horizon += Duration::from_mins(10);
            while delivered.is_empty() {
                match eng.next_event_before(horizon) {
                    Some((_, Event::Message { from, to, payload })) => {
                        delivered = ov.on_message(&mut eng, from, to, payload.into_owned());
                    }
                    Some(_) => {}
                    None => break,
                }
            }
            black_box(delivered.len())
        });
    });
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("timer_churn_10k", |b| {
        b.iter(|| {
            let mut eng: Engine<()> = Engine::new(
                Box::new(UniformTopology::new(4, Duration::MILLISECOND)),
                SimConfig::default(),
            );
            eng.schedule_up(Time::ZERO, NodeIdx(0));
            let _ = eng.next_event_before(Time(10));
            for i in 0..10_000u64 {
                eng.set_timer(NodeIdx(0), Duration::from_micros(i * 7 + 1), i);
            }
            let mut n = 0u64;
            while eng
                .next_event_before(Time::ZERO + Duration::from_secs(10))
                .is_some()
            {
                n += 1;
            }
            black_box(n)
        });
    });
    g.finish();
}

/// Timer-heavy scheduler comparison: the hierarchical wheel vs the
/// reference binary heap on the protocol's dominant event pattern —
/// short-lived heartbeat timers, half of them cancelled before firing,
/// re-armed from inside the event loop.
fn bench_des_event_throughput(c: &mut Criterion) {
    const TIMERS: u64 = 100_000;

    fn run(scheduler: SchedulerKind) -> u64 {
        let mut eng: Engine<u64> = Engine::new(
            Box::new(UniformTopology::new(8, Duration::MILLISECOND)),
            SimConfig {
                scheduler,
                ..SimConfig::default()
            },
        );
        for i in 0..8u64 {
            eng.schedule_up(Time(i), NodeIdx(i as u32));
        }
        while eng.next_event_before(Time(100)).is_some() {}
        let mut handles = Vec::with_capacity(TIMERS as usize);
        for i in 0..TIMERS {
            let node = NodeIdx((i % 8) as u32);
            handles.push(eng.set_timer(node, Duration::from_micros(i % 50_000 + 10), i));
        }
        // Half the timers are cancelled before they fire, like heartbeats
        // rescinded by a node restart.
        for h in handles.iter().step_by(2) {
            eng.cancel_timer(*h);
        }
        let mut fired = 0u64;
        let mut rearmed = 0u64;
        while let Some((_, ev)) = eng.next_event_before(Time::ZERO + Duration::from_secs(60)) {
            fired += 1;
            if let Event::Timer { node, tag } = ev {
                if rearmed < TIMERS {
                    rearmed += 1;
                    let h = eng.set_timer(node, Duration::from_micros(tag % 3_000 + 5), tag);
                    if tag % 3 == 0 {
                        eng.cancel_timer(h);
                    }
                }
            }
        }
        fired
    }

    let mut g = c.benchmark_group("des_event_throughput");
    g.throughput(Throughput::Elements(TIMERS));
    g.bench_function("wheel", |b| b.iter(|| black_box(run(SchedulerKind::Wheel))));
    g.bench_function("heap", |b| b.iter(|| black_box(run(SchedulerKind::Heap))));
    g.finish();
}

/// Fan-out cost of one payload to many destinations: the old
/// clone-per-destination send loop vs the shared-payload [`Engine::multicast`].
/// Both variants drain the delivered messages (reading the payload through
/// the envelope, no copy-out) so the full event-loop cost is included.
fn bench_payload_fanout(c: &mut Criterion) {
    const DESTS: usize = 64;
    const PAYLOAD_BYTES: usize = 4096;

    fn fresh_engine() -> Engine<Vec<u8>> {
        let mut eng: Engine<Vec<u8>> = Engine::new(
            Box::new(UniformTopology::new(DESTS + 1, Duration::MILLISECOND)),
            SimConfig::default(),
        );
        for i in 0..=DESTS {
            eng.schedule_up(Time(i as u64), NodeIdx(i as u32));
        }
        while eng.next_event_before(Time(1_000)).is_some() {}
        eng
    }

    fn drain(eng: &mut Engine<Vec<u8>>) -> usize {
        let mut bytes = 0usize;
        while let Some((_, ev)) = eng.next_event_before(Time::ZERO + Duration::from_secs(10)) {
            if let Event::Message { payload, .. } = ev {
                bytes += payload.len();
            }
        }
        bytes
    }

    let payload = vec![0xa5u8; PAYLOAD_BYTES];
    let dests: Vec<NodeIdx> = (1..=DESTS as u32).map(NodeIdx).collect();
    let mut g = c.benchmark_group("payload_fanout");
    g.throughput(Throughput::Elements(DESTS as u64));
    g.bench_function("clone_per_dest", |b| {
        let mut eng = fresh_engine();
        b.iter(|| {
            for &to in &dests {
                eng.send(
                    NodeIdx(0),
                    to,
                    black_box(payload.clone()),
                    PAYLOAD_BYTES as u32,
                    TrafficClass::Maintenance,
                );
            }
            black_box(drain(&mut eng))
        });
    });
    g.bench_function("multicast_shared", |b| {
        let mut eng = fresh_engine();
        b.iter(|| {
            eng.multicast(
                NodeIdx(0),
                &dests,
                black_box(payload.clone()),
                PAYLOAD_BYTES as u32,
                TrafficClass::Maintenance,
            );
            black_box(drain(&mut eng))
        });
    });
    g.finish();
}

/// Aggregation-vertex cost of absorbing 16 child predictor reports one at a
/// time, re-encoding the merged result after each arrival: the old
/// recompute-from-scratch path (clone the local partial, merge every
/// received report, encode fresh) vs the incremental path (merge only the
/// new arrival into the running partial, encode through the memoizing
/// entry point).
fn bench_predictor_merge(c: &mut Criterion) {
    const CHILDREN: usize = 16;
    let mut local = Predictor::new();
    for i in 1..200u64 {
        local.add_available(i as f64);
    }
    let reports: Vec<Predictor> = (0..CHILDREN as u64)
        .map(|k| {
            let mut p = Predictor::new();
            for i in 1..50u64 {
                p.add_available((k * 50 + i) as f64);
                p.add_unavailable(
                    i as f64,
                    &ReturnPrediction::point(Duration::from_mins(i * 11 + k)),
                );
            }
            p
        })
        .collect();

    let mut g = c.benchmark_group("predictor_merge");
    g.throughput(Throughput::Elements(CHILDREN as u64));
    g.bench_function("recompute_per_report", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for k in 1..=CHILDREN {
                let mut m = local.clone();
                for r in &reports[..k] {
                    m.merge(black_box(r));
                }
                bytes += m.encode().len();
            }
            black_box(bytes)
        });
    });
    g.bench_function("incremental", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            let mut m = local.clone();
            for r in &reports {
                m.merge(black_box(r));
                bytes += m.encoded_bytes().len();
            }
            black_box(bytes)
        });
    });
    g.finish();
}

/// All-pairs router RTTs on the paper-scale CorpNet graph (298 routers):
/// the binary-heap Dijkstra-from-every-source baseline vs the bucket-queue
/// run restricted to core/regional sources (branch rows derived from their
/// uplink). Both produce byte-identical matrices.
fn bench_topology_build(c: &mut Criterion) {
    use seaweed_sim::topology::{
        all_pairs_shortest, all_pairs_shortest_reference, build_router_graph,
    };
    let mut rng = StdRng::seed_from_u64(42);
    let (adj, uplink, _, _) = build_router_graph(298, &mut rng);
    let mut g = c.benchmark_group("topology_build");
    g.bench_function("all_pairs_heap_298", |b| {
        b.iter(|| black_box(all_pairs_shortest_reference(black_box(&adj))));
    });
    g.bench_function("all_pairs_bucket_298", |b| {
        b.iter(|| black_box(all_pairs_shortest(black_box(&adj), black_box(&uplink))));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha1,
    bench_id_ops,
    bench_vertex_chain,
    bench_histograms,
    bench_merges,
    bench_sql,
    bench_routing,
    bench_engine,
    bench_des_event_throughput,
    bench_payload_fanout,
    bench_predictor_merge,
    bench_topology_build,
);
criterion_main!(benches);
