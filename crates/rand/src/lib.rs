//! Vendored stand-in for the parts of the `rand` crate this workspace
//! uses, so builds never reach for a registry. The container this repo
//! grows in has no network access, which left the seed tree unbuildable;
//! every consumer only needs a deterministic, seedable PRNG with
//! `gen`/`gen_range`, so that is exactly what is provided.
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64. It is **not**
//! the upstream ChaCha12 generator, so absolute random streams differ
//! from genuine `rand 0.8`; everything in this workspace only relies on
//! determinism for a fixed seed, which holds.

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seeding constructors (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from 32 bytes of seed material.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Creates a generator from a `u64` seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64(state);
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&sm.next().to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Values samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision (matches upstream).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Maps the value onto the u128 number line (two's complement shift
    /// for signed types, so ordering is preserved).
    fn to_u128(self) -> u128;
    /// Inverse of [`SampleUniform::to_u128`].
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_sample_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 { self as u128 }
            #[allow(clippy::cast_possible_truncation)]
            fn from_u128(v: u128) -> Self { v as $t }
        }
    )*};
}
impl_sample_uniform_unsigned!(u8, u16, u32, u64, usize, u128);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u128(self) -> u128 { (self as $u ^ (1 << (<$u>::BITS - 1))) as u128 }
            #[allow(clippy::cast_possible_truncation)]
            fn from_u128(v: u128) -> Self { ((v as $u) ^ (1 << (<$u>::BITS - 1))) as $t }
        }
    )*};
}
impl_sample_uniform_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// Ranges acceptable to `gen_range` (subset of `rand::distributions::
/// uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u128 {
    debug_assert!(width > 0);
    // Multiply-shift would bias high for tiny widths of u128; a simple
    // modulo is fine here — the bias is ~width/2^128 and nothing in the
    // workspace is statistically sensitive at that scale.
    let raw = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
    raw % width
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u128(), self.end.to_u128());
        assert!(lo < hi, "cannot sample empty range");
        T::from_u128(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u128(), self.end().to_u128());
        assert!(lo <= hi, "cannot sample empty range");
        let width = hi - lo;
        if width == u128::MAX {
            return T::from_u128(u128::sample(rng));
        }
        T::from_u128(lo + uniform_below(rng, width + 1))
    }
}

/// High-level sampling methods (subset of `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable PRNG: xoshiro256++ (Blackman/Vigna).
    /// Fast, passes BigCrush, and — the property everything here rests
    /// on — produces an identical stream for an identical seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
        // Full-width inclusive range must not overflow.
        let _ = r.gen_range(0u128..=u128::MAX);
        let _ = r.gen_range(1u128..=u128::MAX);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
