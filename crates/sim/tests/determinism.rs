//! Determinism and ordering guarantees of the discrete-event engine.
//!
//! Every experiment in this repository is reproducible from a seed; that
//! rests on the engine delivering identical event sequences across runs
//! and never reordering same-time events.

use proptest::prelude::*;
use seaweed_sim::{
    CrashSpec, Engine, Event, FaultPlan, LinkFaultSpec, NodeIdx, OutageSpec, PartitionSpec,
    SchedulerKind, SimConfig, TraceConfig, TrafficClass, UniformTopology,
};
use seaweed_types::{Duration, Time};

type E = Engine<u64>;

fn engine(n: usize, seed: u64, loss: f64) -> E {
    Engine::new(
        Box::new(UniformTopology::new(n, Duration::from_millis(3))),
        SimConfig {
            seed,
            loss_rate: loss,
            ..SimConfig::default()
        },
    )
}

/// A scripted action to apply before draining.
#[derive(Clone, Debug)]
enum Action {
    Up(u8, u64),
    Down(u8, u64),
    Timer(u8, u64, u64),
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..8, 0u64..1_000_000).prop_map(|(n, t)| Action::Up(n, t)),
            (0u8..8, 0u64..1_000_000).prop_map(|(n, t)| Action::Down(n, t)),
            (0u8..8, 0u64..1_000_000, 0u64..1000).prop_map(|(n, d, g)| Action::Timer(n, d, g)),
        ],
        1..60,
    )
}

fn run_script(script: &[Action], seed: u64) -> Vec<String> {
    let mut eng = engine(8, seed, 0.0);
    // Bring node 0 up first so timers can be armed from a live node.
    eng.schedule_up(Time::ZERO, NodeIdx(0));
    let _ = eng.next_event_before(Time(1));
    for a in script {
        match *a {
            Action::Up(n, t) => eng.schedule_up(Time(1 + t), NodeIdx(u32::from(n))),
            Action::Down(n, t) => eng.schedule_down(Time(1 + t), NodeIdx(u32::from(n))),
            Action::Timer(n, d, tag) => {
                let _ = eng.set_timer(NodeIdx(u32::from(n)), Duration::from_micros(d), tag);
            }
        }
    }
    let mut log = Vec::new();
    while let Some((t, ev)) = eng.next_event_before(Time::ZERO + Duration::from_secs(10)) {
        log.push(format!("{t:?} {ev:?}"));
        // Echo messages between live nodes to exercise send paths.
        if let Event::NodeUp { node } = ev {
            if eng.is_up(NodeIdx(0)) && node != NodeIdx(0) {
                eng.send(NodeIdx(0), node, u64::from(node.0), 64, TrafficClass::Query);
            }
        }
    }
    log
}

/// Runs a script under the given scheduler with loss, churn, timer
/// cancellation and deliberate equal-timestamp ties, returning the full
/// event log and the bandwidth report's exact rendering.
fn run_with(script: &[Action], seed: u64, scheduler: SchedulerKind) -> (Vec<String>, String) {
    let mut eng: E = Engine::new(
        Box::new(UniformTopology::new(8, Duration::from_millis(3))),
        SimConfig {
            seed,
            loss_rate: 0.05,
            collect_cdf: true,
            scheduler,
            ..SimConfig::default()
        },
    );
    eng.schedule_up(Time::ZERO, NodeIdx(0));
    let _ = eng.next_event_before(Time(1));
    let mut handles = Vec::new();
    for (i, a) in script.iter().enumerate() {
        match *a {
            Action::Up(n, t) => eng.schedule_up(Time(1 + t), NodeIdx(u32::from(n))),
            Action::Down(n, t) => eng.schedule_down(Time(1 + t), NodeIdx(u32::from(n))),
            Action::Timer(n, d, tag) => {
                let node = NodeIdx(u32::from(n));
                let h = eng.set_timer(node, Duration::from_micros(d), tag);
                handles.push(h);
                // Duplicate every third timer at the same instant so
                // equal-timestamp tie-breaking is exercised.
                if i % 3 == 0 {
                    let _ = eng.set_timer(node, Duration::from_micros(d), tag | (1 << 20));
                }
            }
        }
    }
    // Cancel every fifth armed timer; cancellation must behave the same
    // under both schedulers.
    for h in handles.iter().step_by(5) {
        eng.cancel_timer(*h);
    }
    let mut log = Vec::new();
    let mut sends = 0u32;
    while let Some((t, ev)) = eng.next_event_before(Time::ZERO + Duration::from_secs(10)) {
        log.push(format!("{t:?} {ev:?}"));
        match ev {
            // Bounce a bounded number of replies to exercise message
            // scheduling from within the loop.
            Event::Message { from, to, .. } if sends < 200 && eng.is_up(from) => {
                sends += 1;
                eng.send(to, from, 0, 48, TrafficClass::Maintenance);
            }
            Event::NodeUp { node } if node != NodeIdx(0) && eng.is_up(NodeIdx(0)) => {
                eng.send(NodeIdx(0), node, u64::from(node.0), 64, TrafficClass::Query);
            }
            _ => {}
        }
    }
    let report = eng.finish();
    (log, format!("{report:?}"))
}

/// A fault plan exercising every injection mechanism at once, scaled to
/// the 8-node test world.
fn chaos_plan() -> FaultPlan {
    FaultPlan {
        partitions: vec![PartitionSpec {
            members: vec![0, 1, 2],
            from: Time(2_000_000),
            until: Time(5_000_000),
        }],
        link_faults: vec![LinkFaultSpec {
            zone_a: 0,
            zone_b: 0,
            from: Time(1_000_000),
            until: Time(8_000_000),
            extra_loss: 0.2,
            latency_mult: 3.0,
        }],
        crashes: vec![CrashSpec {
            node: NodeIdx(4),
            at: Time(3_000_000),
            rejoin_after: Duration::from_secs(2),
        }],
        outages: vec![OutageSpec {
            members: vec![5, 6],
            down_at: Time(6_000_000),
            up_at: Time(7_000_000),
            amnesia: true,
        }],
        dup_rate: 0.1,
        reorder_window: Duration::from_millis(20),
    }
}

/// Like `run_with`, but under the full chaos plan. Returns the event log,
/// the report rendering and the message-conservation ledger terms.
fn run_faulty(
    script: &[Action],
    seed: u64,
    scheduler: SchedulerKind,
) -> (Vec<String>, String, u64) {
    let mut eng: E = Engine::new(
        Box::new(UniformTopology::new(8, Duration::from_millis(3))),
        SimConfig {
            seed,
            loss_rate: 0.05,
            scheduler,
            faults: Some(chaos_plan()),
            ..SimConfig::default()
        },
    );
    eng.schedule_up(Time::ZERO, NodeIdx(0));
    let _ = eng.next_event_before(Time(1));
    for a in script {
        match *a {
            Action::Up(n, t) => eng.schedule_up(Time(1 + t), NodeIdx(u32::from(n))),
            Action::Down(n, t) => eng.schedule_down(Time(1 + t), NodeIdx(u32::from(n))),
            Action::Timer(n, d, tag) => {
                let _ = eng.set_timer(NodeIdx(u32::from(n)), Duration::from_micros(d), tag);
            }
        }
    }
    let mut log = Vec::new();
    let mut delivered = 0u64;
    let mut sends = 0u32;
    while let Some((t, ev)) = eng.next_event_before(Time::ZERO + Duration::from_secs(20)) {
        log.push(format!("{t:?} {ev:?}"));
        match ev {
            Event::Message { from, to, .. } => {
                delivered += 1;
                if sends < 300 && eng.is_up(to) && eng.is_up(from) {
                    sends += 1;
                    eng.send(to, from, 0, 48, TrafficClass::Maintenance);
                }
            }
            Event::NodeUp { node } if node != NodeIdx(0) && eng.is_up(NodeIdx(0)) => {
                eng.send(NodeIdx(0), node, u64::from(node.0), 64, TrafficClass::Query);
            }
            _ => {}
        }
    }
    // Conservation: every copy that entered the network left it somehow.
    let drops = eng.drop_stats();
    assert_eq!(
        eng.messages_sent + drops.duplicated,
        delivered + drops.total(),
        "message conservation"
    );
    assert_eq!(
        drops.by_class.iter().sum::<u64>(),
        drops.total(),
        "per-class drop totals cover every cause"
    );
    let report = eng.finish();
    (log, format!("{report:?}"), delivered)
}

/// Like `run_faulty` under the Wheel scheduler, optionally with event
/// tracing enabled. Returns the event log, the report rendering and the
/// exported JSONL trace (when tracing).
fn run_traced(script: &[Action], seed: u64, trace: bool) -> (Vec<String>, String, Option<String>) {
    let mut eng: E = Engine::new(
        Box::new(UniformTopology::new(8, Duration::from_millis(3))),
        SimConfig {
            seed,
            loss_rate: 0.05,
            faults: Some(chaos_plan()),
            trace: trace.then(TraceConfig::default),
            ..SimConfig::default()
        },
    );
    eng.schedule_up(Time::ZERO, NodeIdx(0));
    let _ = eng.next_event_before(Time(1));
    for a in script {
        match *a {
            Action::Up(n, t) => eng.schedule_up(Time(1 + t), NodeIdx(u32::from(n))),
            Action::Down(n, t) => eng.schedule_down(Time(1 + t), NodeIdx(u32::from(n))),
            Action::Timer(n, d, tag) => {
                let _ = eng.set_timer(NodeIdx(u32::from(n)), Duration::from_micros(d), tag);
            }
        }
    }
    let mut log = Vec::new();
    let mut sends = 0u32;
    while let Some((t, ev)) = eng.next_event_before(Time::ZERO + Duration::from_secs(20)) {
        log.push(format!("{t:?} {ev:?}"));
        match ev {
            Event::Message { from, to, .. } if sends < 300 && eng.is_up(to) && eng.is_up(from) => {
                sends += 1;
                eng.send(to, from, 0, 48, TrafficClass::Maintenance);
            }
            Event::NodeUp { node } if node != NodeIdx(0) && eng.is_up(NodeIdx(0)) => {
                eng.send(NodeIdx(0), node, u64::from(node.0), 64, TrafficClass::Query);
            }
            _ => {}
        }
    }
    let jsonl = eng.take_tracer().map(|t| t.export_jsonl());
    let report = eng.finish();
    (log, format!("{report:?}"), jsonl)
}

/// Like `run_faulty`, but every fan-out goes through either the shared-
/// payload [`Engine::multicast`] or the equivalent per-destination
/// clone-and-send loop, selected by `multicast`. The payload is a real
/// allocation (`Vec<u64>`) so sharing is observable if it ever leaked
/// into behaviour. Returns the event log and the report rendering.
fn run_fanout(
    script: &[Action],
    seed: u64,
    scheduler: SchedulerKind,
    multicast: bool,
) -> (Vec<String>, String) {
    let mut eng: Engine<Vec<u64>> = Engine::new(
        Box::new(UniformTopology::new(8, Duration::from_millis(3))),
        SimConfig {
            seed,
            loss_rate: 0.05,
            scheduler,
            faults: Some(chaos_plan()),
            ..SimConfig::default()
        },
    );
    let fan = |eng: &mut Engine<Vec<u64>>, from: NodeIdx, payload: Vec<u64>| {
        let dests: Vec<NodeIdx> = (0..8u32).map(NodeIdx).filter(|&d| d != from).collect();
        if multicast {
            eng.multicast(from, &dests, payload, 256, TrafficClass::Maintenance);
        } else {
            for &to in &dests {
                // lint:allow(D007): this IS the clone-per-destination baseline the equivalence proptest compares multicast against
                eng.send(from, to, payload.clone(), 256, TrafficClass::Maintenance);
            }
        }
    };
    eng.schedule_up(Time::ZERO, NodeIdx(0));
    let _ = eng.next_event_before(Time(1));
    for a in script {
        match *a {
            Action::Up(n, t) => eng.schedule_up(Time(1 + t), NodeIdx(u32::from(n))),
            Action::Down(n, t) => eng.schedule_down(Time(1 + t), NodeIdx(u32::from(n))),
            Action::Timer(n, d, tag) => {
                let _ = eng.set_timer(NodeIdx(u32::from(n)), Duration::from_micros(d), tag);
            }
        }
    }
    let mut log = Vec::new();
    let mut fanouts = 0u32;
    while let Some((t, ev)) = eng.next_event_before(Time::ZERO + Duration::from_secs(20)) {
        log.push(format!("{t:?} {ev:?}"));
        match ev {
            // Every delivery echoes a bounded fan-out so shared payloads
            // are re-sent from inside the loop, racing the fault windows.
            Event::Message { to, payload, .. } if fanouts < 40 && eng.is_up(to) => {
                fanouts += 1;
                let mut next = payload.into_owned();
                next.push(u64::from(fanouts));
                fan(&mut eng, to, next);
            }
            Event::NodeUp { node } => {
                fan(&mut eng, node, vec![u64::from(node.0); 16]);
            }
            _ => {}
        }
    }
    let report = eng.finish();
    (log, format!("{report:?}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shared-payload multicast is behaviourally invisible: for any churn
    /// script under the full chaos plan (loss, duplication, reordering,
    /// partitions, crash-amnesia), fanning a payload out via one
    /// `multicast` call produces byte-identical event logs and bandwidth
    /// reports to the per-destination clone-and-send loop it replaced —
    /// under both scheduler implementations.
    #[test]
    fn multicast_matches_clone_loop(script in actions(), seed in 0u64..200) {
        for scheduler in [SchedulerKind::Wheel, SchedulerKind::Heap] {
            let (log_m, rep_m) = run_fanout(&script, seed, scheduler, true);
            let (log_c, rep_c) = run_fanout(&script, seed, scheduler, false);
            prop_assert_eq!(log_m, log_c);
            prop_assert_eq!(rep_m, rep_c);
        }
    }

    /// The timer wheel and the reference heap deliver byte-identical
    /// event sequences and bandwidth reports for any script of churn,
    /// messages, timers, cancellations and equal-time ties.
    #[test]
    fn wheel_and_heap_are_byte_identical(script in actions(), seed in 0u64..200) {
        let (log_w, rep_w) = run_with(&script, seed, SchedulerKind::Wheel);
        let (log_h, rep_h) = run_with(&script, seed, SchedulerKind::Heap);
        prop_assert_eq!(log_w, log_h);
        prop_assert_eq!(rep_w, rep_h);
    }

    /// Identical scripts and seeds produce byte-identical event logs.
    #[test]
    fn reruns_are_identical(script in actions(), seed in 0u64..1000) {
        prop_assert_eq!(run_script(&script, seed), run_script(&script, seed));
    }

    /// With partitions, link faults, crash-amnesia, correlated outages,
    /// duplication and reordering all active, both schedulers still
    /// deliver byte-identical logs and reports, reruns reproduce exactly,
    /// and the drop ledger balances.
    #[test]
    fn fault_injection_is_deterministic_and_balanced(
        script in actions(),
        seed in 0u64..200,
    ) {
        let (log_w, rep_w, del_w) = run_faulty(&script, seed, SchedulerKind::Wheel);
        let (log_h, rep_h, del_h) = run_faulty(&script, seed, SchedulerKind::Heap);
        prop_assert_eq!(&log_w, &log_h);
        prop_assert_eq!(rep_w, rep_h);
        prop_assert_eq!(del_w, del_h);
        let (log_again, ..) = run_faulty(&script, seed, SchedulerKind::Wheel);
        prop_assert_eq!(log_w, log_again);
    }

    /// Tracing is pure observation: with the full chaos plan active, the
    /// event-log fingerprint and bandwidth report are byte-identical with
    /// tracing on vs off, and the exported JSONL trace is byte-stable
    /// across reruns of the same seed.
    #[test]
    fn tracing_never_perturbs_event_order(script in actions(), seed in 0u64..200) {
        let (log_on, rep_on, jsonl_a) = run_traced(&script, seed, true);
        let (log_off, rep_off, jsonl_none) = run_traced(&script, seed, false);
        prop_assert!(jsonl_none.is_none());
        prop_assert_eq!(&log_on, &log_off);
        prop_assert_eq!(rep_on, rep_off);
        let (_, _, jsonl_b) = run_traced(&script, seed, true);
        prop_assert_eq!(jsonl_a, jsonl_b);
    }

    /// Events never go backwards in time.
    #[test]
    fn time_is_monotone(script in actions()) {
        let mut eng = engine(8, 0, 0.0);
        for a in &script {
            match *a {
                Action::Up(n, t) => eng.schedule_up(Time(t), NodeIdx(u32::from(n))),
                Action::Down(n, t) => eng.schedule_down(Time(t), NodeIdx(u32::from(n))),
                Action::Timer(..) => {}
            }
        }
        let mut last = Time::ZERO;
        while let Some((t, _)) = eng.next_event_before(Time::ZERO + Duration::from_secs(100)) {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Liveness bookkeeping: after draining, num_up equals the net effect
    /// of the up/down schedule.
    #[test]
    fn liveness_matches_schedule(script in actions()) {
        let mut eng = engine(8, 0, 0.0);
        let mut expect = [false; 8];
        // Apply in time order, deduplicating the engine's own semantics:
        // duplicate ups/downs are ignored.
        let mut timeline: Vec<(u64, u8, bool)> = script
            .iter()
            .filter_map(|a| match *a {
                Action::Up(n, t) => Some((t, n, true)),
                Action::Down(n, t) => Some((t, n, false)),
                Action::Timer(..) => None,
            })
            .collect();
        timeline.sort();
        for &(t, n, up) in &timeline {
            if up {
                eng.schedule_up(Time(t), NodeIdx(u32::from(n)));
            } else {
                eng.schedule_down(Time(t), NodeIdx(u32::from(n)));
            }
        }
        for &(_, n, up) in &timeline {
            expect[n as usize] = up;
        }
        // Note: expect computed by last-write wins per node is wrong when
        // duplicate transitions are ignored... but ignoring duplicates
        // preserves the final parity of *effective* transitions, which is
        // exactly last-state once sorted. Verify against the engine.
        while eng.next_event_before(Time::ZERO + Duration::from_secs(100)).is_some() {}
        let up_count = (0..8).filter(|&i| eng.is_up(NodeIdx(i as u32))).count();
        let _ = expect;
        prop_assert_eq!(up_count, eng.num_up());
        prop_assert_eq!(eng.up_nodes().count(), eng.num_up());
    }

    /// With loss enabled, the loss pattern is seed-deterministic and the
    /// counters balance: sent == delivered + loss-dropped + down-dropped
    /// + still-in-flight(0 after drain).
    #[test]
    fn loss_accounting_balances(seed in 0u64..500) {
        let n = 6;
        let mut eng = engine(n, seed, 0.3);
        for i in 0..n {
            eng.schedule_up(Time(i as u64), NodeIdx(i as u32));
        }
        while eng.next_event_before(Time(1_000)).is_some() {}
        let mut delivered = 0u64;
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i != j {
                    eng.send(NodeIdx(i), NodeIdx(j), 1, 32, TrafficClass::Query);
                }
            }
        }
        while let Some((_, ev)) = eng.next_event_before(Time::ZERO + Duration::from_secs(5)) {
            if matches!(ev, Event::Message { .. }) {
                delivered += 1;
            }
        }
        prop_assert_eq!(
            eng.messages_sent,
            delivered + eng.dropped_loss + eng.dropped_dest_down
        );
        prop_assert!(eng.dropped_loss > 0, "30% loss should drop something");
    }
}
