//! Timer-wheel edge cases: handles that outlive their timer, timers on
//! down nodes, and fire times sitting exactly on cascade-level
//! boundaries (64 µs, 4096 µs, 262144 µs for a 6-bit wheel). Everything
//! is exercised on both schedulers — the wheel's lazy tombstones and
//! cascades must be indistinguishable from the reference heap.

use seaweed_sim::{Engine, Event, NodeIdx, SchedulerKind, SimConfig, UniformTopology};
use seaweed_types::{Duration, Time};

type Eng = Engine<()>;

fn engine(n: usize, scheduler: SchedulerKind) -> Eng {
    Engine::new(
        Box::new(UniformTopology::new(n, Duration::from_millis(1))),
        SimConfig {
            scheduler,
            ..SimConfig::default()
        },
    )
}

fn up(e: &mut Eng, node: u32) {
    e.schedule_up(Time::ZERO, NodeIdx(node));
    let (_, ev) = e.next_event_before(Time(1)).expect("up event");
    assert!(matches!(ev, Event::NodeUp { .. }));
}

fn drain(e: &mut Eng, horizon: Time) -> Vec<(Time, NodeIdx, u64)> {
    let mut out = Vec::new();
    while let Some((t, ev)) = e.next_event_before(horizon) {
        if let Event::Timer { node, tag } = ev {
            out.push((t, node, tag));
        }
    }
    out
}

const BOTH: [SchedulerKind; 2] = [SchedulerKind::Wheel, SchedulerKind::Heap];

#[test]
fn cancel_after_fire_is_a_noop() {
    for kind in BOTH {
        let mut e = engine(1, kind);
        up(&mut e, 0);
        let h = e.set_timer(NodeIdx(0), Duration::from_micros(100), 1);
        let later = e.set_timer(NodeIdx(0), Duration::from_micros(200), 2);
        let fired = drain(&mut e, Time(150));
        assert_eq!(fired.len(), 1, "{kind:?}");
        assert!(
            !e.cancel_timer(h),
            "cancel after fire must no-op ({kind:?})"
        );
        // The stale cancel must not have disturbed the pending timer.
        let fired = drain(&mut e, Time(300));
        assert_eq!(fired, vec![(Time(200), NodeIdx(0), 2)], "{kind:?}");
        assert!(!e.cancel_timer(later));
        assert_eq!(e.timers_cancelled, 0, "{kind:?}");
    }
}

#[test]
fn double_cancel_is_idempotent() {
    for kind in BOTH {
        let mut e = engine(1, kind);
        up(&mut e, 0);
        let h = e.set_timer(NodeIdx(0), Duration::from_secs(1), 7);
        let kept = e.set_timer(NodeIdx(0), Duration::from_secs(2), 8);
        assert!(e.cancel_timer(h), "{kind:?}");
        assert!(!e.cancel_timer(h), "second cancel must no-op ({kind:?})");
        assert_eq!(e.timers_cancelled, 1, "{kind:?}");
        let fired = drain(&mut e, Time::ZERO + Duration::from_secs(3));
        assert_eq!(fired.len(), 1, "{kind:?}");
        assert_eq!(fired[0].2, 8, "{kind:?}");
        let _ = kept;
    }
}

#[test]
fn detached_timer_on_never_up_node_fires() {
    for kind in BOTH {
        let mut e = engine(2, kind);
        // Node 1 never comes up. A detached deadline armed for it (e.g. a
        // TTL) must still fire; an auto timer must be swallowed at fire
        // time.
        e.set_detached_timer(NodeIdx(1), Duration::from_micros(500), 11);
        e.set_timer(NodeIdx(1), Duration::from_micros(400), 12);
        let fired = drain(&mut e, Time(1_000));
        assert_eq!(fired, vec![(Time(500), NodeIdx(1), 11)], "{kind:?}");
    }
}

/// Delays straddling every cascade-level boundary of the 6-bit wheel
/// (one level spans 64 µs, two span 4096 µs, three span 262144 µs) fire
/// at their exact requested times, in identical order on both
/// schedulers.
#[test]
fn timers_exactly_on_cascade_boundaries() {
    let delays: [u64; 10] = [
        1, 63, 64, 65, 4_095, 4_096, 4_097, 262_143, 262_144, 262_145,
    ];
    let mut per_kind: Vec<Vec<(Time, NodeIdx, u64)>> = Vec::new();
    for kind in BOTH {
        let mut e = engine(1, kind);
        up(&mut e, 0);
        // Arm in shuffled order so insertion order can't mask a
        // mis-binned slot.
        for (i, &d) in delays.iter().enumerate().rev() {
            e.set_timer(NodeIdx(0), Duration::from_micros(d), i as u64);
        }
        let fired = drain(&mut e, Time(1_000_000));
        assert_eq!(fired.len(), delays.len(), "{kind:?}");
        for (i, &d) in delays.iter().enumerate() {
            assert_eq!(fired[i].0, Time(d), "delay {d} fire time ({kind:?})");
            assert_eq!(fired[i].2, i as u64, "delay {d} order ({kind:?})");
        }
        per_kind.push(fired);
    }
    assert_eq!(per_kind[0], per_kind[1], "wheel and heap diverged");
}

/// A high-level timer cancelled before its slot cascades down must leave
/// no trace: no event, no disturbance of its neighbors, and the handle
/// stays dead afterwards.
#[test]
fn cancel_before_cascade_leaves_nothing_behind() {
    for kind in BOTH {
        let mut e = engine(1, kind);
        up(&mut e, 0);
        // Both land in a level >= 1 slot (the second is the sibling).
        let doomed = e.set_timer(NodeIdx(0), Duration::from_micros(262_144), 1);
        e.set_timer(NodeIdx(0), Duration::from_micros(262_144 + 32), 2);
        // Advance the clock, but not far enough to cascade that slot.
        assert!(e.next_event_before(Time(100_000)).is_none());
        assert!(e.cancel_timer(doomed), "{kind:?}");
        let fired = drain(&mut e, Time(500_000));
        assert_eq!(fired, vec![(Time(262_176), NodeIdx(0), 2)], "{kind:?}");
        assert!(!e.cancel_timer(doomed), "{kind:?}");
        assert_eq!(e.timers_cancelled, 1, "{kind:?}");
    }
}
