//! The discrete-event engine.
//!
//! The engine owns the clock, the event queue, node liveness, the topology
//! and the bandwidth recorder. The *application* (Pastry + Seaweed stacked
//! per node) owns all protocol state and drives the loop:
//!
//! ```ignore
//! while let Some((now, ev)) = engine.next_event_before(horizon) {
//!     match ev {
//!         Event::Message { from, to, payload } => app.on_message(&mut engine, ...),
//!         Event::Timer { node, tag } => app.on_timer(&mut engine, ...),
//!         Event::NodeUp { node } => app.on_up(&mut engine, node),
//!         Event::NodeDown { node } => app.on_down(&mut engine, node),
//!     }
//! }
//! ```
//!
//! Determinism: events at equal times are delivered in the order they were
//! scheduled (a monotone sequence number breaks ties), and all randomness
//! (message loss) comes from a seeded RNG.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_types::{Duration, Time};

use crate::bandwidth::{BandwidthRecorder, BandwidthReport, TrafficClass};
use crate::topology::Topology;

/// Dense index of an endsystem in the simulation (not its Pastry id).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// An event delivered to the application.
#[derive(Debug)]
pub enum Event<M> {
    /// A network message arrived at `to`.
    Message {
        from: NodeIdx,
        to: NodeIdx,
        payload: M,
    },
    /// A timer set by `node` fired. `tag` is whatever the node passed to
    /// [`Engine::set_timer`]; stale-timer suppression is the application's
    /// job (check incarnation counters in the tag).
    Timer { node: NodeIdx, tag: u64 },
    /// `node` just became available (liveness already updated).
    NodeUp { node: NodeIdx },
    /// `node` just became unavailable (liveness already updated; its
    /// queued messages and timers will be dropped on delivery).
    NodeDown { node: NodeIdx },
}

enum Pending<M> {
    Message {
        from: NodeIdx,
        to: NodeIdx,
        payload: M,
        size: u32,
        class: TrafficClass,
    },
    Timer {
        node: NodeIdx,
        tag: u64,
    },
    NodeUp {
        node: NodeIdx,
    },
    NodeDown {
        node: NodeIdx,
    },
}

struct Queued<M> {
    at: Time,
    seq: u64,
    pending: Pending<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for all engine-internal randomness (message loss).
    pub seed: u64,
    /// Uniform probability that any network message is lost in flight.
    /// MSPastry is evaluated in the paper with rates up to 5%.
    pub loss_rate: f64,
    /// Collect per-(node,hour) bandwidth samples for CDFs (Figure 9(b)).
    pub collect_cdf: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            loss_rate: 0.0,
            collect_cdf: false,
        }
    }
}

/// The discrete-event engine. `M` is the application's message payload.
pub struct Engine<M> {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Reverse<Queued<M>>>,
    topo: Box<dyn Topology>,
    up: Vec<bool>,
    recorder: BandwidthRecorder,
    rng: StdRng,
    loss_rate: f64,
    /// Count of messages dropped because the destination was down.
    pub dropped_dest_down: u64,
    /// Count of messages lost to simulated network loss.
    pub dropped_loss: u64,
    /// Total messages sent.
    pub messages_sent: u64,
}

impl<M> Engine<M> {
    /// Creates an engine over `topo`; all nodes start **down** — schedule
    /// [`Engine::schedule_up`] events (e.g. from an availability trace) to
    /// bring them up.
    #[must_use]
    pub fn new(topo: Box<dyn Topology>, config: SimConfig) -> Self {
        let n = topo.num_endsystems();
        Engine {
            now: Time::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            topo,
            up: vec![false; n],
            recorder: BandwidthRecorder::new(n, config.collect_cdf),
            rng: StdRng::seed_from_u64(config.seed ^ 0xe791_e5ee_d000_0001),
            loss_rate: config.loss_rate,
            dropped_dest_down: 0,
            dropped_loss: 0,
            messages_sent: 0,
        }
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of endsystems in the simulation.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.up.len()
    }

    /// Is `node` currently available?
    #[must_use]
    pub fn is_up(&self, node: NodeIdx) -> bool {
        self.up[node.idx()]
    }

    /// Number of currently available endsystems.
    #[must_use]
    pub fn num_up(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }

    /// Iterator over currently available endsystems.
    pub fn up_nodes(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.up
            .iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| NodeIdx(i as u32))
    }

    fn push(&mut self, at: Time, pending: Pending<M>) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq, pending }));
    }

    /// Sends a network message. Transmission bandwidth is charged to
    /// `from` immediately; reception to `to` at delivery (if it is still
    /// up and the message survives loss). `size` is the wire size in
    /// bytes; `class` selects the accounting bucket.
    pub fn send(&mut self, from: NodeIdx, to: NodeIdx, payload: M, size: u32, class: TrafficClass) {
        debug_assert!(self.up[from.idx()], "down node {from:?} tried to send");
        self.messages_sent += 1;
        self.recorder.record_tx(self.now, from.idx(), class, size);
        if self.loss_rate > 0.0 && self.rng.gen::<f64>() < self.loss_rate {
            self.dropped_loss += 1;
            return;
        }
        let latency = self.topo.one_way(from, to);
        let at = self.now + latency;
        self.push(
            at,
            Pending::Message {
                from,
                to,
                payload,
                size,
                class,
            },
        );
    }

    /// Arms a timer for `node`, firing `delay` from now with `tag`.
    /// Timers of down nodes are silently discarded at fire time.
    pub fn set_timer(&mut self, node: NodeIdx, delay: Duration, tag: u64) {
        self.push(self.now + delay, Pending::Timer { node, tag });
    }

    /// Schedules `node` to become available at `at` (absolute time).
    pub fn schedule_up(&mut self, at: Time, node: NodeIdx) {
        self.push(at, Pending::NodeUp { node });
    }

    /// Schedules `node` to become unavailable at `at` (absolute time).
    pub fn schedule_down(&mut self, at: Time, node: NodeIdx) {
        self.push(at, Pending::NodeDown { node });
    }

    /// Pops and applies the next event at or before `horizon`, returning
    /// it for application-level dispatch. Returns `None` when the queue is
    /// exhausted or the next event lies beyond the horizon (the clock then
    /// advances to the horizon).
    pub fn next_event_before(&mut self, horizon: Time) -> Option<(Time, Event<M>)> {
        loop {
            match self.queue.peek() {
                None => {
                    self.now = self.now.max(horizon);
                    return None;
                }
                Some(Reverse(q)) if q.at > horizon => {
                    self.now = horizon;
                    return None;
                }
                _ => {}
            }
            let Reverse(q) = self.queue.pop().expect("peeked");
            self.now = q.at;
            match q.pending {
                Pending::Message {
                    from,
                    to,
                    payload,
                    size,
                    class,
                } => {
                    if !self.up[to.idx()] {
                        self.dropped_dest_down += 1;
                        continue;
                    }
                    self.recorder.record_rx(self.now, to.idx(), class, size);
                    return Some((self.now, Event::Message { from, to, payload }));
                }
                Pending::Timer { node, tag } => {
                    if !self.up[node.idx()] {
                        continue;
                    }
                    return Some((self.now, Event::Timer { node, tag }));
                }
                Pending::NodeUp { node } => {
                    if self.up[node.idx()] {
                        continue; // duplicate up event; ignore
                    }
                    self.up[node.idx()] = true;
                    self.recorder.node_up(self.now, node.idx());
                    return Some((self.now, Event::NodeUp { node }));
                }
                Pending::NodeDown { node } => {
                    if !self.up[node.idx()] {
                        continue;
                    }
                    self.up[node.idx()] = false;
                    self.recorder.node_down(self.now, node.idx());
                    return Some((self.now, Event::NodeDown { node }));
                }
            }
        }
    }

    /// Charges `bytes` of transmitted overlay-maintenance traffic to
    /// `node` without scheduling a message — used for liveness probes
    /// whose only protocol effect (detecting a dead peer) the caller
    /// applies directly.
    pub fn record_probe(&mut self, node: NodeIdx, bytes: u32) {
        self.recorder
            .record_tx(self.now, node.idx(), TrafficClass::Overlay, bytes);
    }

    /// Registers standing (periodic, event-free) traffic for `node`; see
    /// [`BandwidthRecorder::set_standing`]. Used for strictly periodic
    /// protocol traffic (leafset heartbeats) whose event-by-event
    /// simulation would swamp the queue without changing any decision.
    pub fn set_standing(&mut self, node: NodeIdx, class: TrafficClass, tx_rate: f32, rx_rate: f32) {
        self.recorder
            .set_standing(node.idx(), class, tx_rate, rx_rate);
    }

    /// Finishes the run, consuming the engine and yielding the bandwidth
    /// report (accounting closed at the final clock value).
    #[must_use]
    pub fn finish(self) -> BandwidthReport {
        self.recorder.finish(self.now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::UniformTopology;

    fn engine(n: usize, latency_ms: u64) -> Engine<&'static str> {
        Engine::new(
            Box::new(UniformTopology::new(n, Duration::from_millis(latency_ms))),
            SimConfig::default(),
        )
    }

    fn drain(e: &mut Engine<&'static str>, horizon: Time) -> Vec<(Time, String)> {
        let mut out = Vec::new();
        while let Some((t, ev)) = e.next_event_before(horizon) {
            out.push((t, format!("{ev:?}")));
        }
        out
    }

    #[test]
    fn message_latency_and_ordering() {
        let mut e = engine(3, 10);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        e.schedule_up(Time::ZERO, NodeIdx(1));
        // Bring nodes up first.
        assert!(matches!(
            e.next_event_before(Time(1)),
            Some((_, Event::NodeUp { .. }))
        ));
        assert!(matches!(
            e.next_event_before(Time(1)),
            Some((_, Event::NodeUp { .. }))
        ));
        e.send(NodeIdx(0), NodeIdx(1), "hello", 100, TrafficClass::Query);
        let (t, ev) = e
            .next_event_before(Time::ZERO + Duration::from_secs(1))
            .unwrap();
        assert_eq!(t, Time::ZERO + Duration::from_millis(10));
        match ev {
            Event::Message { from, to, payload } => {
                assert_eq!(from, NodeIdx(0));
                assert_eq!(to, NodeIdx(1));
                assert_eq!(payload, "hello");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fifo_between_same_timestamp_events() {
        let mut e = engine(2, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        e.schedule_up(Time::ZERO, NodeIdx(1));
        let evs = drain(&mut e, Time(10));
        assert!(evs[0].1.contains("NodeUp { node: NodeIdx(0) }"));
        assert!(evs[1].1.contains("NodeUp { node: NodeIdx(1) }"));
    }

    #[test]
    fn message_to_down_node_is_dropped() {
        let mut e = engine(2, 10);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        e.schedule_up(Time::ZERO, NodeIdx(1));
        e.schedule_down(Time(5_000), NodeIdx(1)); // down before delivery
        let _ = e.next_event_before(Time(1)); // up 0
        let _ = e.next_event_before(Time(1)); // up 1
        e.send(NodeIdx(0), NodeIdx(1), "m", 50, TrafficClass::Query);
        let evs = drain(&mut e, Time::ZERO + Duration::from_secs(1));
        // Only the NodeDown should surface; the message is swallowed.
        assert_eq!(evs.len(), 1, "{evs:?}");
        assert!(evs[0].1.contains("NodeDown"));
        assert_eq!(e.dropped_dest_down, 1);
    }

    #[test]
    fn timer_dropped_when_node_down() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        let _ = e.next_event_before(Time(1));
        e.set_timer(NodeIdx(0), Duration::from_secs(10), 42);
        e.schedule_down(Time::ZERO + Duration::from_secs(5), NodeIdx(0));
        let evs = drain(&mut e, Time::ZERO + Duration::from_secs(60));
        assert_eq!(evs.len(), 1);
        assert!(evs[0].1.contains("NodeDown"));
    }

    #[test]
    fn timer_fires_with_tag() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        let _ = e.next_event_before(Time(1));
        e.set_timer(NodeIdx(0), Duration::from_secs(3), 7);
        let (t, ev) = e
            .next_event_before(Time::ZERO + Duration::from_secs(10))
            .unwrap();
        assert_eq!(t, Time::ZERO + Duration::from_secs(3));
        assert!(matches!(
            ev,
            Event::Timer {
                node: NodeIdx(0),
                tag: 7
            }
        ));
    }

    #[test]
    fn horizon_stops_and_advances_clock() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO + Duration::from_secs(100), NodeIdx(0));
        assert!(e
            .next_event_before(Time::ZERO + Duration::from_secs(50))
            .is_none());
        assert_eq!(e.now(), Time::ZERO + Duration::from_secs(50));
        assert!(e
            .next_event_before(Time::ZERO + Duration::from_secs(200))
            .is_some());
        assert_eq!(e.now(), Time::ZERO + Duration::from_secs(100));
    }

    #[test]
    fn loss_rate_drops_messages() {
        let mut e: Engine<u32> = Engine::new(
            Box::new(UniformTopology::new(2, Duration::MILLISECOND)),
            SimConfig {
                seed: 1,
                loss_rate: 1.0,
                collect_cdf: false,
            },
        );
        e.schedule_up(Time::ZERO, NodeIdx(0));
        e.schedule_up(Time::ZERO, NodeIdx(1));
        let _ = e.next_event_before(Time(1));
        let _ = e.next_event_before(Time(1));
        e.send(NodeIdx(0), NodeIdx(1), 1, 10, TrafficClass::Query);
        assert!(e
            .next_event_before(Time::ZERO + Duration::from_secs(1))
            .is_none());
        assert_eq!(e.dropped_loss, 1);
    }

    #[test]
    fn bandwidth_is_accounted() {
        let mut e = engine(2, 1);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        e.schedule_up(Time::ZERO, NodeIdx(1));
        let _ = e.next_event_before(Time(1));
        let _ = e.next_event_before(Time(1));
        e.send(NodeIdx(0), NodeIdx(1), "x", 500, TrafficClass::Maintenance);
        let _ = drain(&mut e, Time::ZERO + Duration::from_hours(2));
        let report = e.finish();
        assert_eq!(report.total_tx[TrafficClass::Maintenance as usize], 500);
        let rx: u64 = report
            .rx_hours
            .iter()
            .map(|h| h.bytes[TrafficClass::Maintenance as usize])
            .sum();
        assert_eq!(rx, 500);
    }

    #[test]
    fn up_nodes_iterates_live_set() {
        let mut e = engine(4, 0);
        e.schedule_up(Time::ZERO, NodeIdx(1));
        e.schedule_up(Time::ZERO, NodeIdx(3));
        let _ = e.next_event_before(Time(1));
        let _ = e.next_event_before(Time(1));
        let ups: Vec<_> = e.up_nodes().collect();
        assert_eq!(ups, vec![NodeIdx(1), NodeIdx(3)]);
        assert_eq!(e.num_up(), 2);
        assert!(e.is_up(NodeIdx(3)));
        assert!(!e.is_up(NodeIdx(0)));
    }
}
