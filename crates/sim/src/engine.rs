//! The discrete-event engine.
//!
//! The engine owns the clock, the event queue, node liveness, the topology
//! and the bandwidth recorder. The *application* (Pastry + Seaweed stacked
//! per node) owns all protocol state and drives the loop:
//!
//! ```ignore
//! while let Some((now, ev)) = engine.next_event_before(horizon) {
//!     match ev {
//!         Event::Message { from, to, payload } => app.on_message(&mut engine, ...),
//!         Event::Timer { node, tag } => app.on_timer(&mut engine, ...),
//!         Event::NodeUp { node } => app.on_up(&mut engine, node),
//!         Event::NodeDown { node } => app.on_down(&mut engine, node),
//!     }
//! }
//! ```
//!
//! Determinism: events at equal times are delivered in the order they were
//! scheduled (a monotone sequence number breaks ties), and all randomness
//! (message loss) comes from a seeded RNG.
//!
//! Two event-queue implementations exist behind [`SchedulerKind`]: a
//! hierarchical timer wheel (the default — O(1) schedule/cancel, no
//! comparison sorting) and the original binary heap (kept as a baseline
//! for equivalence testing and benchmarking). Both deliver the exact same
//! `(time, seq)` total order, so a fixed seed produces byte-identical runs
//! under either.
//!
//! Timers are first-class cancellable: [`Engine::set_timer`] returns a
//! [`TimerHandle`], [`Engine::cancel_timer`] disarms it, and every timer a
//! node armed with `set_timer` is cancelled automatically when the node
//! goes down — protocol code no longer needs incarnation counters to
//! suppress timers leaking across availability sessions. Bookkeeping
//! timers that must survive churn (e.g. a query's TTL at its origin) use
//! [`Engine::set_detached_timer`].

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_types::{Duration, Time};

use crate::bandwidth::{BandwidthRecorder, BandwidthReport, DropStats, TrafficClass, NUM_CLASSES};
use crate::faults::{FaultInjector, FaultPlan, LinkEffect};
use crate::metrics::MetricsRegistry;
use crate::topology::Topology;
use crate::trace::{DropCause, TraceConfig, TraceEvent, Tracer};

/// Hasher for internal `u64` sequence numbers (timer metadata,
/// cancellation tombstones). These maps sit on the per-event hot path
/// and their keys are trusted monotone counters, so SipHash's collision
/// resistance buys nothing — a single multiply + rotate does.
#[derive(Default, Clone)]
struct SeqHasher(u64);

impl std::hash::Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(31);
    }
}

type SeqBuild = std::hash::BuildHasherDefault<SeqHasher>;
type SeqMap<V> = HashMap<u64, V, SeqBuild>;
type SeqSet = HashSet<u64, SeqBuild>;

/// Dense index of an endsystem in the simulation (not its Pastry id).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A message payload travelling through the engine: either owned by the
/// single in-flight copy, or shared (`Rc`-backed) between several — the
/// fan-out and fault-duplication paths hand every queued copy the same
/// allocation instead of deep-cloning per destination. The DES is
/// single-threaded (lint rule D004), so `Rc` suffices.
///
/// The envelope is transparent: it `Deref`s to the payload for reads and
/// its `Debug` output is exactly the inner payload's, so event-log
/// fingerprints are byte-identical to the historical by-value
/// representation. Consumers that need ownership call
/// [`Payload::into_owned`], which only clones when other in-flight
/// copies still share the allocation.
pub enum Payload<M> {
    /// The only copy; moving it out is free.
    Owned(M),
    /// One of several copies sharing an allocation.
    Shared(Rc<M>),
}

thread_local! {
    /// Deep clones taken by the [`Payload::into_owned`] fallback when the
    /// allocation was still shared. The DES is single-threaded (lint rule
    /// D004) and `into_owned` has no engine handle, so a thread-local is
    /// the one place this can be counted; it accumulates monotonically
    /// across every engine on the thread.
    static PAYLOAD_FALLBACK_CLONES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Running count (this thread) of deep clones the [`Payload::into_owned`]
/// fallback has taken — each one is a fan-out copy consumed by value while
/// sibling copies were still queued. Single-destination sends always carry
/// [`Payload::Owned`], so this counts only genuine shared-consumption, the
/// regression class lint rule D007 exists to catch.
#[must_use]
pub fn payload_fallback_clones() -> u64 {
    PAYLOAD_FALLBACK_CLONES.with(std::cell::Cell::get)
}

impl<M> Payload<M> {
    /// Extracts the payload, cloning only if the allocation is still
    /// shared with other queued copies (the last copy out is free).
    #[must_use]
    pub fn into_owned(self) -> M
    where
        M: Clone,
    {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(rc) => Rc::try_unwrap(rc).unwrap_or_else(|rc| {
                PAYLOAD_FALLBACK_CLONES.with(|c| c.set(c.get() + 1));
                (*rc).clone()
            }),
        }
    }

    /// Converts into the shared representation without touching the
    /// payload itself (an owned payload is boxed into a fresh `Rc`).
    #[must_use]
    pub fn into_rc(self) -> Rc<M> {
        match self {
            Payload::Owned(m) => Rc::new(m),
            Payload::Shared(rc) => rc,
        }
    }
}

impl<M> std::ops::Deref for Payload<M> {
    type Target = M;

    fn deref(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(rc) => rc,
        }
    }
}

/// Transparent: prints exactly as the inner payload would, so Debug-based
/// event-log fingerprints cannot tell owned from shared.
impl<M: std::fmt::Debug> std::fmt::Debug for Payload<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// An event delivered to the application.
#[derive(Debug)]
pub enum Event<M> {
    /// A network message arrived at `to`. The payload envelope is
    /// transparent for reads ([`Payload`] derefs to `M`); call
    /// [`Payload::into_owned`] to take ownership.
    Message {
        from: NodeIdx,
        to: NodeIdx,
        payload: Payload<M>,
    },
    /// A timer fired. `tag` is whatever was passed to
    /// [`Engine::set_timer`] / [`Engine::set_detached_timer`]. A regular
    /// timer only fires while its node is up and is cancelled when the
    /// node goes down, so a fired timer is never stale.
    Timer { node: NodeIdx, tag: u64 },
    /// `node` just became available (liveness already updated).
    NodeUp { node: NodeIdx },
    /// `node` just became unavailable (liveness already updated; its
    /// queued messages are dropped on delivery and its regular timers
    /// have been cancelled).
    NodeDown { node: NodeIdx },
    /// `node` just crashed with amnesia: it is down (same engine
    /// semantics as [`Event::NodeDown`]) and the application must wipe
    /// its soft state — when it comes back up it remembers nothing it
    /// had not persisted. Injected by a [`FaultPlan`].
    NodeCrash { node: NodeIdx },
    /// Fault-plan partition `partition` just came into force: its member
    /// set and the rest of the network are mutually unreachable (sends
    /// across the cut are dropped) until the matching
    /// [`Event::PartitionEnd`].
    PartitionStart { partition: u32 },
    /// Fault-plan partition `partition` just healed.
    PartitionEnd { partition: u32 },
}

enum Pending<M> {
    Message {
        from: NodeIdx,
        to: NodeIdx,
        payload: Payload<M>,
        size: u32,
        class: TrafficClass,
    },
    Timer {
        node: NodeIdx,
        tag: u64,
    },
    NodeUp {
        node: NodeIdx,
    },
    NodeDown {
        node: NodeIdx,
    },
    NodeCrash {
        node: NodeIdx,
    },
    PartitionStart {
        partition: u32,
    },
    PartitionEnd {
        partition: u32,
    },
}

struct Queued<M> {
    at: Time,
    seq: u64,
    pending: Pending<M>,
}

impl<M> PartialEq for Queued<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Queued<M> {}
impl<M> PartialOrd for Queued<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Queued<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Which event-queue implementation the engine runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SchedulerKind {
    /// Hierarchical timer wheel: O(1) schedule and cancel.
    #[default]
    Wheel,
    /// Binary min-heap: the original implementation, kept as an
    /// equivalence/benchmark baseline.
    Heap,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Seed for all engine-internal randomness (message loss).
    pub seed: u64,
    /// Uniform probability that any network message is lost in flight.
    /// MSPastry is evaluated in the paper with rates up to 5%.
    pub loss_rate: f64,
    /// Collect per-(node,hour) bandwidth samples for CDFs (Figure 9(b)).
    pub collect_cdf: bool,
    /// Event-queue implementation; both deliver identical event orders.
    pub scheduler: SchedulerKind,
    /// Optional deterministic fault schedule (partitions, link
    /// degradation, crash-amnesia, correlated outages, dup/reorder).
    /// `None` injects nothing and changes nothing.
    pub faults: Option<FaultPlan>,
    /// Optional event tracing (see [`crate::trace`]). Tracing is purely
    /// observational — it cannot perturb event order — and is ignored
    /// entirely when the `trace` cargo feature is disabled.
    pub trace: Option<TraceConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            loss_rate: 0.0,
            collect_cdf: false,
            scheduler: SchedulerKind::Wheel,
            faults: None,
            trace: None,
        }
    }
}

// ------------------------------------------------------------------ wheel

/// RNG stream constant for the engine's own draws — loss, duplication,
/// latency jitter (registered in lint.toml `[[stream]]`).
const ENGINE_STREAM: u64 = 0xe791_e5ee_d000_0001;

const LEVEL_BITS: u32 = 6;
const SLOTS: usize = 1 << LEVEL_BITS; // 64
/// 11 levels × 6 bits = 66 bits, covering the full µs-time range.
const LEVELS: usize = 11;

/// A hierarchical timing wheel over microsecond timestamps.
///
/// Level `l` has 64 slots of width `64^l` µs. An entry lives at the
/// highest level where its timestamp differs from the cursor — i.e. slot
/// index `(at >> 6l) & 63` at level `l = msb(at ^ cursor) / 6` — and
/// cascades toward level 0 as the cursor approaches it. A level-0 slot
/// within the cursor's 64 µs window holds exactly one timestamp, so
/// draining a slot and sorting it by sequence number yields the global
/// `(time, seq)` delivery order the heap produced.
struct TimerWheel<M> {
    /// Time of the most recently drained slot; all stored entries have
    /// `at >= cursor`.
    cursor: u64,
    /// Per-level occupancy bitmaps (bit = slot non-empty).
    occ: [u64; LEVELS],
    /// `LEVELS × SLOTS` flattened slot vectors.
    slots: Vec<Vec<Queued<M>>>,
    /// Entries at exactly `cursor`, sorted by seq, being handed out.
    current: VecDeque<Queued<M>>,
    /// Scratch buffer reused across cascades to avoid reallocating.
    cascade_buf: Vec<Queued<M>>,
    /// Sequence numbers cancelled while still parked in a slot. Purged
    /// when the slot is next touched (cascade, drain or peek), so a
    /// cancellation costs O(1) instead of a scan of an arbitrarily large
    /// high-level slot.
    cancelled: SeqSet,
    /// Live entries only — tombstoned ones are already excluded.
    len: usize,
}

impl<M> TimerWheel<M> {
    fn new() -> Self {
        TimerWheel {
            cursor: 0,
            occ: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            current: VecDeque::new(),
            cascade_buf: Vec::new(),
            cancelled: SeqSet::default(),
            len: 0,
        }
    }

    /// Drops tombstoned entries from one slot.
    fn purge_slot(cancelled: &mut SeqSet, slot: &mut Vec<Queued<M>>) {
        if !cancelled.is_empty() {
            slot.retain(|e| !cancelled.remove(&e.seq));
        }
    }

    /// (level, slot) the entry belongs to, relative to the current cursor.
    fn level_slot(&self, at: u64) -> (usize, usize) {
        let d = at ^ self.cursor;
        if d == 0 {
            (0, (at & 63) as usize)
        } else {
            let level = ((63 - d.leading_zeros()) / LEVEL_BITS) as usize;
            (level, ((at >> (LEVEL_BITS as usize * level)) & 63) as usize)
        }
    }

    fn insert_at(&mut self, e: Queued<M>) {
        debug_assert!(e.at.0 >= self.cursor, "wheel insert into the past");
        let (l, s) = self.level_slot(e.at.0);
        self.slots[l * SLOTS + s].push(e);
        self.occ[l] |= 1u64 << s;
    }

    fn push(&mut self, e: Queued<M>) {
        self.len += 1;
        self.insert_at(e);
    }

    fn pop(&mut self) -> Option<Queued<M>> {
        loop {
            if let Some(e) = self.current.pop_front() {
                self.len -= 1;
                return Some(e);
            }
            if !self.advance() {
                return None;
            }
        }
    }

    /// Drains the earliest occupied slot into `current` (sorted by seq),
    /// cascading higher levels as needed. Returns false when empty.
    fn advance(&mut self) -> bool {
        loop {
            // Level 0. The cursor's own slot is included: pushes at
            // exactly the current time land there after the slot was
            // drained, and must still be delivered.
            let idx0 = (self.cursor & 63) as u32;
            let m = self.occ[0] & (!0u64 << idx0);
            if m != 0 {
                let s = m.trailing_zeros();
                let t = (self.cursor & !63) | u64::from(s);
                self.cursor = t;
                self.occ[0] &= !(1u64 << s);
                let slot = &mut self.slots[s as usize];
                debug_assert!(slot.iter().all(|e| e.at.0 == t));
                Self::purge_slot(&mut self.cancelled, slot);
                self.current.extend(slot.drain(..));
                self.current
                    .make_contiguous()
                    .sort_unstable_by_key(|e| e.seq);
                if self.current.is_empty() {
                    continue; // the slot held only tombstones
                }
                return true;
            }
            // Higher levels: jump to the next occupied slot strictly
            // after the cursor's position and cascade it down. Everything
            // in that slot lands at a lower level relative to the new
            // cursor (its slot base), so the search restarts at level 0.
            let mut cascaded = false;
            for l in 1..LEVELS {
                let shift = LEVEL_BITS as usize * l;
                let idx = ((self.cursor >> shift) & 63) as u32;
                let m = if idx >= 63 {
                    0
                } else {
                    self.occ[l] & (!0u64 << (idx + 1))
                };
                if m == 0 {
                    continue;
                }
                let s = u64::from(m.trailing_zeros());
                let parent_shift = LEVEL_BITS as usize * (l + 1);
                let base = if parent_shift >= 64 {
                    0
                } else {
                    self.cursor & !((1u64 << parent_shift) - 1)
                };
                self.cursor = base | (s << shift);
                self.occ[l] &= !(1u64 << s);
                let mut buf = std::mem::take(&mut self.cascade_buf);
                std::mem::swap(&mut buf, &mut self.slots[l * SLOTS + s as usize]);
                for e in buf.drain(..) {
                    if self.cancelled.remove(&e.seq) {
                        continue;
                    }
                    self.insert_at(e);
                }
                self.cascade_buf = buf;
                cascaded = true;
                break;
            }
            if !cascaded {
                return false;
            }
        }
    }

    /// Timestamp of the earliest live entry, without advancing the
    /// cursor. Purges tombstones from the slots it inspects so the
    /// reported time is exact.
    fn peek_at(&mut self) -> Option<Time> {
        'restart: loop {
            if let Some(e) = self.current.front() {
                return Some(e.at);
            }
            if self.len == 0 {
                return None;
            }
            let idx0 = (self.cursor & 63) as u32;
            let mut m = self.occ[0] & (!0u64 << idx0);
            while m != 0 {
                let s = m.trailing_zeros();
                let slot = &mut self.slots[s as usize];
                Self::purge_slot(&mut self.cancelled, slot);
                if let Some(e) = slot.first() {
                    return Some(e.at);
                }
                self.occ[0] &= !(1u64 << s);
                m &= !(1u64 << s);
            }
            for l in 1..LEVELS {
                let shift = LEVEL_BITS as usize * l;
                let idx = ((self.cursor >> shift) & 63) as u32;
                let m = if idx >= 63 {
                    0
                } else {
                    self.occ[l] & (!0u64 << (idx + 1))
                };
                if m != 0 {
                    let s = m.trailing_zeros() as usize;
                    let slot = &mut self.slots[l * SLOTS + s];
                    Self::purge_slot(&mut self.cancelled, slot);
                    if slot.is_empty() {
                        self.occ[l] &= !(1u64 << s);
                        continue 'restart;
                    }
                    // The slot spans 64^l µs; its earliest entry is the min.
                    return slot.iter().map(|e| e.at).min();
                }
            }
            debug_assert!(false, "len > 0 but no occupied slot");
            return None;
        }
    }

    /// Removes the entry `(at, seq)`. Entries already drained into the
    /// `current` batch are removed directly; anything still parked in a
    /// slot is tombstoned in O(1) and physically dropped the next time
    /// its slot is cascaded, drained or peeked. The caller (the engine's
    /// per-timer metadata) guarantees the entry is actually pending.
    fn cancel(&mut self, at: Time, seq: u64) -> bool {
        if at.0 == self.cursor {
            if let Some(pos) = self.current.iter().position(|e| e.seq == seq) {
                let _ = self.current.remove(pos);
                self.len -= 1;
                return true;
            }
        }
        if at.0 < self.cursor {
            return false;
        }
        self.cancelled.insert(seq);
        self.len -= 1;
        true
    }
}

// ------------------------------------------------------------------- heap

/// The original binary-heap queue. Cancellation is lazy: cancelled
/// sequence numbers are tombstoned and skipped at the head.
struct HeapQueue<M> {
    heap: BinaryHeap<Reverse<Queued<M>>>,
    cancelled: SeqSet,
}

impl<M> HeapQueue<M> {
    fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            cancelled: SeqSet::default(),
        }
    }

    fn drop_cancelled_head(&mut self) {
        while let Some(Reverse(q)) = self.heap.peek() {
            if self.cancelled.is_empty() || !self.cancelled.contains(&q.seq) {
                return;
            }
            let seq = q.seq;
            self.heap.pop();
            self.cancelled.remove(&seq);
        }
    }

    fn push(&mut self, e: Queued<M>) {
        self.heap.push(Reverse(e));
    }

    fn pop(&mut self) -> Option<Queued<M>> {
        self.drop_cancelled_head();
        self.heap.pop().map(|Reverse(q)| q)
    }

    fn peek_at(&mut self) -> Option<Time> {
        self.drop_cancelled_head();
        self.heap.peek().map(|Reverse(q)| q.at)
    }

    fn cancel(&mut self, seq: u64) -> bool {
        self.cancelled.insert(seq)
    }
}

/// The event queue behind a static dispatch switch. Both variants
/// deliver the identical `(time, seq)` total order.
enum EventQueue<M> {
    Wheel(TimerWheel<M>),
    Heap(HeapQueue<M>),
}

impl<M> EventQueue<M> {
    fn push(&mut self, e: Queued<M>) {
        match self {
            EventQueue::Wheel(w) => w.push(e),
            EventQueue::Heap(h) => h.push(e),
        }
    }

    fn pop(&mut self) -> Option<Queued<M>> {
        match self {
            EventQueue::Wheel(w) => w.pop(),
            EventQueue::Heap(h) => h.pop(),
        }
    }

    fn peek_at(&mut self) -> Option<Time> {
        match self {
            EventQueue::Wheel(w) => w.peek_at(),
            EventQueue::Heap(h) => h.peek_at(),
        }
    }

    fn cancel(&mut self, at: Time, seq: u64) -> bool {
        match self {
            EventQueue::Wheel(w) => w.cancel(at, seq),
            EventQueue::Heap(h) => h.cancel(seq),
        }
    }
}

// ----------------------------------------------------------------- engine

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TimerKind {
    /// Cancelled automatically when its node goes down.
    Auto,
    /// Survives its node's churn; fires regardless of liveness.
    Detached,
    /// A scheduling-quantum expiry: liveness-tied like `Auto` (a down
    /// node has no scan queue to pump), but metered separately so storm
    /// runs can report scheduler overhead next to protocol timers.
    Quantum,
}

/// Handle to a pending timer, returned by [`Engine::set_timer`] and
/// [`Engine::set_detached_timer`]. Cancelling a handle whose timer has
/// already fired or been cancelled is a harmless no-op.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TimerHandle {
    node: NodeIdx,
    seq: u64,
    at: Time,
}

impl TimerHandle {
    /// The node the timer was armed for.
    #[must_use]
    pub fn node(self) -> NodeIdx {
        self.node
    }

    /// Absolute fire time.
    #[must_use]
    pub fn fires_at(self) -> Time {
        self.at
    }
}

/// The discrete-event engine. `M` is the application's message payload.
pub struct Engine<M> {
    now: Time,
    seq: u64,
    queue: EventQueue<M>,
    topo: Box<dyn Topology>,
    up: Vec<bool>,
    /// Live node indices, ordered — keeps `num_up`/`up_nodes` O(live)
    /// instead of scanning every endsystem.
    live: BTreeSet<u32>,
    /// Per-node outstanding timers: seq → (fire time, kind).
    timer_meta: Vec<SeqMap<(Time, TimerKind)>>,
    recorder: BandwidthRecorder,
    rng: StdRng,
    loss_rate: f64,
    /// Fault-plan runtime, present only when [`SimConfig::faults`] was
    /// set. Every `send()` and node transition consults it.
    faults: Option<FaultInjector>,
    /// Event tracer, present only when [`SimConfig::trace`] was set *and*
    /// the `trace` cargo feature is enabled.
    tracer: Option<Tracer>,
    /// Count of messages dropped because the destination was down.
    pub dropped_dest_down: u64,
    /// Count of messages lost to simulated (uniform random) network loss.
    pub dropped_loss: u64,
    /// Count of messages dropped at a fault-plan partition cut.
    pub dropped_partition: u64,
    /// Count of messages dropped by a fault-plan link-degradation window.
    pub dropped_link_fault: u64,
    /// Count of extra copies delivered by fault-plan duplication.
    pub messages_duplicated: u64,
    /// Drops from *all* causes, bucketed by traffic class.
    pub drops_by_class: [u64; NUM_CLASSES],
    /// Total messages sent.
    pub messages_sent: u64,
    /// Timers disarmed before firing (explicitly or by node-down).
    pub timers_cancelled: u64,
    /// Quantum-class timers (scan-scheduler slices) that actually fired.
    pub quantum_timers_fired: u64,
    /// Events whose requested time lay in the past and were clamped to
    /// the current clock.
    pub clamped_to_now: u64,
    /// Application-level occurrence counters recorded through
    /// [`Engine::record_app_event`], keyed by the caller's event kind.
    /// Surfaced verbatim in [`Engine::metrics`].
    app_events: BTreeMap<&'static str, u64>,
}

/// Manual impl: `M` (the application payload) need not be `Debug`, and
/// the queue/topology internals are noise — summarize the run state.
impl<M> std::fmt::Debug for Engine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("seq", &self.seq)
            .field("num_up", &self.live.len())
            .field("messages_sent", &self.messages_sent)
            .field("timers_cancelled", &self.timers_cancelled)
            .finish_non_exhaustive()
    }
}

impl<M> Engine<M> {
    /// Creates an engine over `topo`; all nodes start **down** — schedule
    /// [`Engine::schedule_up`] events (e.g. from an availability trace) to
    /// bring them up.
    #[must_use]
    pub fn new(topo: Box<dyn Topology>, config: SimConfig) -> Self {
        let n = topo.num_endsystems();
        #[cfg(feature = "trace")]
        let tracer = config.trace.as_ref().map(Tracer::new);
        #[cfg(not(feature = "trace"))]
        let tracer = None;
        let faults = config
            .faults
            .map(|plan| FaultInjector::new(plan, config.seed, n));
        let mut e = Engine {
            now: Time::ZERO,
            seq: 0,
            queue: match config.scheduler {
                SchedulerKind::Wheel => EventQueue::Wheel(TimerWheel::new()),
                SchedulerKind::Heap => EventQueue::Heap(HeapQueue::new()),
            },
            topo,
            up: vec![false; n],
            live: BTreeSet::new(),
            timer_meta: vec![SeqMap::default(); n],
            recorder: BandwidthRecorder::new(n, config.collect_cdf),
            rng: StdRng::seed_from_u64(config.seed ^ ENGINE_STREAM),
            loss_rate: config.loss_rate,
            faults,
            tracer,
            dropped_dest_down: 0,
            dropped_loss: 0,
            dropped_partition: 0,
            dropped_link_fault: 0,
            messages_duplicated: 0,
            drops_by_class: [0; NUM_CLASSES],
            messages_sent: 0,
            timers_cancelled: 0,
            quantum_timers_fired: 0,
            clamped_to_now: 0,
            app_events: BTreeMap::new(),
        };
        e.schedule_fault_plan();
        e
    }

    /// Enqueues every time-triggered entry of the installed fault plan:
    /// partition start/heal markers, amnesia crashes (with their
    /// rejoins), and correlated outage bursts. Runs once, at
    /// construction, so plan events occupy a deterministic prefix of the
    /// sequence-number space.
    fn schedule_fault_plan(&mut self) {
        // Temporarily take the injector so `self.push` (which needs
        // `&mut self`) can run while we iterate the plan — no clone of
        // the whole plan just to appease the borrow checker.
        let Some(inj) = self.faults.take() else {
            return;
        };
        {
            let plan = inj.plan();
            for (i, p) in plan.partitions.iter().enumerate() {
                let idx = u32::try_from(i).expect("partition count fits u32");
                self.push(p.from, Pending::PartitionStart { partition: idx });
                self.push(p.until, Pending::PartitionEnd { partition: idx });
            }
            for c in &plan.crashes {
                self.push(c.at, Pending::NodeCrash { node: c.node });
                self.push(c.at + c.rejoin_after, Pending::NodeUp { node: c.node });
            }
            for o in &plan.outages {
                for &m in &o.members {
                    let node = NodeIdx(m);
                    if o.amnesia {
                        self.push(o.down_at, Pending::NodeCrash { node });
                    } else {
                        self.push(o.down_at, Pending::NodeDown { node });
                    }
                    self.push(o.up_at, Pending::NodeUp { node });
                }
            }
        }
        self.faults = Some(inj);
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of endsystems in the simulation.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.up.len()
    }

    /// Is `node` currently available?
    #[must_use]
    pub fn is_up(&self, node: NodeIdx) -> bool {
        self.up[node.idx()]
    }

    /// Number of currently available endsystems.
    #[must_use]
    pub fn num_up(&self) -> usize {
        self.live.len()
    }

    /// Iterator over currently available endsystems, in ascending index
    /// order.
    pub fn up_nodes(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        self.live.iter().map(|&i| NodeIdx(i))
    }

    /// Records a trace event if tracing is active. The closure only runs
    /// in that case, so building the event costs nothing when tracing is
    /// configured off — and with the `trace` cargo feature disabled the
    /// whole call compiles away.
    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&mut self, ev: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &mut self.tracer {
            t.record(self.now, ev());
        }
    }

    #[cfg(not(feature = "trace"))]
    #[inline(always)]
    fn trace(&mut self, _ev: impl FnOnce() -> TraceEvent) {}

    /// Is a tracer attached and capturing? Always false with the `trace`
    /// feature disabled.
    #[must_use]
    pub fn tracing_active(&self) -> bool {
        cfg!(feature = "trace") && self.tracer.is_some()
    }

    /// The attached tracer, if tracing is active.
    #[must_use]
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Detaches and returns the tracer (e.g. to export its buffer before
    /// [`Engine::finish`] consumes the engine). Tracing stops.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// Records an application-level occurrence: bumps the `kind` counter
    /// (surfaced via [`Engine::metrics`]) and, when tracing is active,
    /// appends an [`TraceEvent::AppEvent`] record attributed to `node`.
    /// Purely observational — never perturbs the schedule.
    pub fn record_app_event(&mut self, node: NodeIdx, kind: &'static str, detail: u64) {
        *self.app_events.entry(kind).or_insert(0) += 1;
        self.trace(|| TraceEvent::AppEvent { node, kind, detail });
    }

    /// Count recorded so far for an application event kind (zero if the
    /// kind was never recorded).
    #[must_use]
    pub fn app_event_count(&self, kind: &str) -> u64 {
        self.app_events.get(kind).copied().unwrap_or(0)
    }

    /// Enqueues an event, clamping requests dated before the current
    /// clock to `now` (counted in [`Engine::clamped_to_now`]) so callers
    /// computing absolute times from stale state cannot corrupt the
    /// delivery order. Returns the entry's sequence number and effective
    /// time.
    fn push(&mut self, at: Time, pending: Pending<M>) -> (u64, Time) {
        let at = if at < self.now {
            self.clamped_to_now += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Queued { at, seq, pending });
        (seq, at)
    }

    /// Sends a network message. Transmission bandwidth is charged to
    /// `from` immediately; reception to `to` at delivery (if it is still
    /// up and the message survives loss). `size` is the wire size in
    /// bytes; `class` selects the accounting bucket.
    ///
    /// The installed fault plan (if any) is consulted in a fixed order:
    /// partition cut, link-degradation window (extra loss, then latency
    /// multiplier), base random loss, reordering jitter, duplication.
    /// Without a plan the behaviour — including the engine RNG's draw
    /// sequence — is identical to the fault-free engine.
    pub fn send(&mut self, from: NodeIdx, to: NodeIdx, payload: M, size: u32, class: TrafficClass) {
        self.send_envelope(from, to, Payload::Owned(payload), size, class);
    }

    /// Sends one destination a payload that is (or may become) shared
    /// with other in-flight messages. Identical semantics and accounting
    /// to [`Engine::send`] — only the payload's ownership differs.
    pub fn send_shared(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        payload: Rc<M>,
        size: u32,
        class: TrafficClass,
    ) {
        self.send_envelope(from, to, Payload::Shared(payload), size, class);
    }

    /// Fans one payload out to every destination in `dests` (in slice
    /// order) with a single allocation shared by all queued copies.
    /// Equivalent — byte-for-byte, including RNG draw order, sequence
    /// numbers, traces and bandwidth accounting — to calling
    /// [`Engine::send`] once per destination with a fresh clone.
    pub fn multicast(
        &mut self,
        from: NodeIdx,
        dests: &[NodeIdx],
        payload: M,
        size: u32,
        class: TrafficClass,
    ) {
        // A single destination needs no sharing: hand over ownership so
        // the consumer's `into_owned` can never hit the clone fallback.
        if let [to] = dests {
            self.send_envelope(from, *to, Payload::Owned(payload), size, class);
            return;
        }
        debug_assert!(
            dests.len() != 1,
            "single-destination delivery must take the owned path"
        );
        let rc = Rc::new(payload);
        for &to in dests {
            self.send_envelope(from, to, Payload::Shared(Rc::clone(&rc)), size, class);
        }
    }

    fn send_envelope(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        payload: Payload<M>,
        size: u32,
        class: TrafficClass,
    ) {
        debug_assert!(self.up[from.idx()], "down node {from:?} tried to send");
        self.messages_sent += 1;
        self.recorder.record_tx(self.now, from.idx(), class, size);
        self.trace(|| TraceEvent::MessageSend {
            from,
            to,
            size,
            class,
        });
        let mut latency_mult = 1.0f64;
        if let Some(inj) = &mut self.faults {
            if !inj.reachable(from, to) {
                self.dropped_partition += 1;
                self.drops_by_class[class as usize] += 1;
                self.trace(|| TraceEvent::MessageDrop {
                    from,
                    to,
                    class,
                    cause: DropCause::Partition,
                });
                return;
            }
            let (za, zb) = (self.topo.zone_of(from), self.topo.zone_of(to));
            match inj.link_effect(self.now, za, zb) {
                LinkEffect::Drop => {
                    self.dropped_link_fault += 1;
                    self.drops_by_class[class as usize] += 1;
                    self.trace(|| TraceEvent::MessageDrop {
                        from,
                        to,
                        class,
                        cause: DropCause::LinkFault,
                    });
                    return;
                }
                LinkEffect::Delay(m) => latency_mult = m,
                LinkEffect::Pass => {}
            }
        }
        if self.loss_rate > 0.0 && self.rng.gen::<f64>() < self.loss_rate {
            self.dropped_loss += 1;
            self.drops_by_class[class as usize] += 1;
            self.trace(|| TraceEvent::MessageDrop {
                from,
                to,
                class,
                cause: DropCause::RandomLoss,
            });
            return;
        }
        let base = self.topo.one_way(from, to);
        let latency = if latency_mult == 1.0 {
            base
        } else {
            Duration::from_micros((base.as_micros() as f64 * latency_mult).round() as u64)
        };
        let mut jitter = Duration::ZERO;
        let mut duplicated = false;
        if let Some(inj) = &mut self.faults {
            jitter = inj.reorder_jitter();
            duplicated = inj.duplicate();
        }
        let payload = if duplicated {
            // The duplicate shares the original's allocation — no deep
            // clone of the payload, only a second reference.
            let rc = payload.into_rc();
            self.push(
                self.now + latency + jitter,
                Pending::Message {
                    from,
                    to,
                    payload: Payload::Shared(Rc::clone(&rc)),
                    size,
                    class,
                },
            );
            self.messages_duplicated += 1;
            self.trace(|| TraceEvent::MessageDuplicate { from, to, class });
            jitter = self
                .faults
                .as_mut()
                .map_or(Duration::ZERO, FaultInjector::reorder_jitter);
            Payload::Shared(rc)
        } else {
            payload
        };
        self.push(
            self.now + latency + jitter,
            Pending::Message {
                from,
                to,
                payload,
                size,
                class,
            },
        );
    }

    /// Can `a` currently reach `b`, given the open fault-plan
    /// partitions? Always true without a plan. Liveness is *not* part of
    /// this check — an up-but-unreachable node is exactly the case
    /// recovery code must distinguish from a dead one.
    #[must_use]
    pub fn reachable(&self, a: NodeIdx, b: NodeIdx) -> bool {
        self.faults.as_ref().is_none_or(|f| f.reachable(a, b))
    }

    /// Member set of fault-plan partition `partition` (as announced by
    /// [`Event::PartitionStart`] / [`Event::PartitionEnd`]).
    #[must_use]
    pub fn partition_members(&self, partition: u32) -> Vec<NodeIdx> {
        self.faults.as_ref().map_or_else(Vec::new, |f| {
            f.plan().partitions[partition as usize]
                .members
                .iter()
                .map(|&m| NodeIdx(m))
                .collect()
        })
    }

    /// Arms a timer for `node`, firing `delay` from now with `tag`. The
    /// timer is cancelled automatically if `node` goes down first, so it
    /// can never fire into a later availability session.
    pub fn set_timer(&mut self, node: NodeIdx, delay: Duration, tag: u64) -> TimerHandle {
        self.arm_timer(node, delay, tag, TimerKind::Auto)
    }

    /// Arms a timer that is *not* tied to `node`'s liveness: it survives
    /// the node going down and fires regardless of its state. Use for
    /// bookkeeping deadlines (e.g. query TTLs) that must hold across
    /// churn; cancel explicitly via the returned handle if needed.
    pub fn set_detached_timer(&mut self, node: NodeIdx, delay: Duration, tag: u64) -> TimerHandle {
        self.arm_timer(node, delay, tag, TimerKind::Detached)
    }

    /// Arms a scheduling-quantum timer for `node`: behaviorally an auto
    /// timer (node-down disarms it — a dead endsystem has no scan queue),
    /// but counted in [`Engine::quantum_timers_fired`] so storm runs can
    /// report scheduler pump overhead separately from protocol timers.
    pub fn set_quantum_timer(&mut self, node: NodeIdx, delay: Duration, tag: u64) -> TimerHandle {
        self.arm_timer(node, delay, tag, TimerKind::Quantum)
    }

    fn arm_timer(
        &mut self,
        node: NodeIdx,
        delay: Duration,
        tag: u64,
        kind: TimerKind,
    ) -> TimerHandle {
        let (seq, at) = self.push(self.now + delay, Pending::Timer { node, tag });
        self.timer_meta[node.idx()].insert(seq, (at, kind));
        self.trace(|| TraceEvent::TimerSet {
            node,
            tag,
            seq,
            at,
            detached: kind == TimerKind::Detached,
        });
        TimerHandle { node, seq, at }
    }

    /// Disarms a pending timer. Returns whether it was still pending
    /// (false if it already fired or was cancelled — a safe no-op).
    pub fn cancel_timer(&mut self, h: TimerHandle) -> bool {
        if self.timer_meta[h.node.idx()].remove(&h.seq).is_none() {
            return false;
        }
        let removed = self.queue.cancel(h.at, h.seq);
        debug_assert!(removed, "outstanding timer missing from queue");
        self.timers_cancelled += 1;
        self.trace(|| TraceEvent::TimerCancel {
            node: h.node,
            seq: h.seq,
            at: h.at,
        });
        true
    }

    /// Schedules `node` to become available at `at` (absolute time).
    pub fn schedule_up(&mut self, at: Time, node: NodeIdx) {
        self.push(at, Pending::NodeUp { node });
    }

    /// Schedules `node` to become unavailable at `at` (absolute time).
    pub fn schedule_down(&mut self, at: Time, node: NodeIdx) {
        self.push(at, Pending::NodeDown { node });
    }

    /// Pops and applies the next event at or before `horizon`, returning
    /// it for application-level dispatch. Returns `None` when the queue is
    /// exhausted or the next event lies beyond the horizon (the clock then
    /// advances to the horizon).
    pub fn next_event_before(&mut self, horizon: Time) -> Option<(Time, Event<M>)> {
        loop {
            match self.queue.peek_at() {
                None => {
                    self.now = self.now.max(horizon);
                    return None;
                }
                Some(at) if at > horizon => {
                    self.now = horizon;
                    return None;
                }
                _ => {}
            }
            let q = self.queue.pop().expect("peeked");
            self.now = q.at;
            match q.pending {
                Pending::Message {
                    from,
                    to,
                    payload,
                    size,
                    class,
                } => {
                    if !self.up[to.idx()] {
                        self.dropped_dest_down += 1;
                        self.drops_by_class[class as usize] += 1;
                        self.trace(|| TraceEvent::MessageDrop {
                            from,
                            to,
                            class,
                            cause: DropCause::DestDown,
                        });
                        continue;
                    }
                    // A partition that opened while the message was in
                    // flight swallows it too.
                    if !self.reachable(from, to) {
                        self.dropped_partition += 1;
                        self.drops_by_class[class as usize] += 1;
                        self.trace(|| TraceEvent::MessageDrop {
                            from,
                            to,
                            class,
                            cause: DropCause::Partition,
                        });
                        continue;
                    }
                    self.recorder.record_rx(self.now, to.idx(), class, size);
                    self.trace(|| TraceEvent::MessageDeliver {
                        from,
                        to,
                        size,
                        class,
                    });
                    return Some((self.now, Event::Message { from, to, payload }));
                }
                Pending::Timer { node, tag } => {
                    let Some((_, kind)) = self.timer_meta[node.idx()].remove(&q.seq) else {
                        debug_assert!(false, "fired timer without metadata");
                        continue;
                    };
                    // An auto timer armed for an already-down node (legal
                    // but unusual) is dropped at fire time.
                    if kind != TimerKind::Detached && !self.up[node.idx()] {
                        self.trace(|| TraceEvent::TimerCancel {
                            node,
                            seq: q.seq,
                            at: q.at,
                        });
                        continue;
                    }
                    if kind == TimerKind::Quantum {
                        self.quantum_timers_fired += 1;
                    }
                    self.trace(|| TraceEvent::TimerFire {
                        node,
                        tag,
                        seq: q.seq,
                    });
                    return Some((self.now, Event::Timer { node, tag }));
                }
                Pending::NodeUp { node } => {
                    if self.up[node.idx()] {
                        continue; // duplicate up event; ignore
                    }
                    self.up[node.idx()] = true;
                    self.live.insert(node.0);
                    self.recorder.node_up(self.now, node.idx());
                    self.trace(|| TraceEvent::NodeUp { node });
                    return Some((self.now, Event::NodeUp { node }));
                }
                Pending::NodeDown { node } => {
                    if !self.up[node.idx()] {
                        continue;
                    }
                    self.up[node.idx()] = false;
                    self.live.remove(&node.0);
                    self.trace(|| TraceEvent::NodeDown { node });
                    self.auto_cancel_timers(node);
                    self.recorder.node_down(self.now, node.idx());
                    return Some((self.now, Event::NodeDown { node }));
                }
                Pending::NodeCrash { node } => {
                    // Engine-side, a crash is a down transition; the
                    // distinct event tells the application to wipe the
                    // node's soft state. Crashing an already-down node is
                    // a no-op, like a duplicate down.
                    if !self.up[node.idx()] {
                        continue;
                    }
                    self.up[node.idx()] = false;
                    self.live.remove(&node.0);
                    self.trace(|| TraceEvent::NodeCrash { node });
                    self.auto_cancel_timers(node);
                    self.recorder.node_down(self.now, node.idx());
                    return Some((self.now, Event::NodeCrash { node }));
                }
                Pending::PartitionStart { partition } => {
                    if let Some(inj) = &mut self.faults {
                        inj.partition_started(partition as usize);
                    }
                    self.trace(|| TraceEvent::PartitionStart { partition });
                    return Some((self.now, Event::PartitionStart { partition }));
                }
                Pending::PartitionEnd { partition } => {
                    if let Some(inj) = &mut self.faults {
                        inj.partition_ended(partition as usize);
                    }
                    self.trace(|| TraceEvent::PartitionEnd { partition });
                    return Some((self.now, Event::PartitionEnd { partition }));
                }
            }
        }
    }

    /// Drops every auto timer `node` still has pending — its next
    /// availability session starts with a clean slate.
    fn auto_cancel_timers(&mut self, node: NodeIdx) {
        // Collect while the queue and metadata are borrowed, trace after;
        // sorted by seq so the trace order is canonical rather than the
        // metadata map's (deterministic but arbitrary) iteration order.
        let collect = self.tracing_active();
        let mut cancelled_log: Vec<(u64, Time)> = Vec::new();
        let meta = &mut self.timer_meta[node.idx()];
        let queue = &mut self.queue;
        let mut dropped = 0u64;
        // lint:allow(D001): SeqMap uses the fixed-key SeqHasher over engine-assigned monotone seqs, so iteration order is identical across processes; the only order-sensitive output (the trace) is sorted below.
        meta.retain(|&seq, &mut (at, kind)| {
            if kind != TimerKind::Detached {
                let removed = queue.cancel(at, seq);
                debug_assert!(removed, "outstanding timer missing from queue");
                dropped += 1;
                if collect {
                    cancelled_log.push((seq, at));
                }
                false
            } else {
                true
            }
        });
        self.timers_cancelled += dropped;
        cancelled_log.sort_unstable_by_key(|&(seq, _)| seq);
        for (seq, at) in cancelled_log {
            self.trace(|| TraceEvent::TimerCancel { node, seq, at });
        }
    }

    /// Charges `bytes` of transmitted overlay-maintenance traffic to
    /// `node` without scheduling a message — used for liveness probes
    /// whose only protocol effect (detecting a dead peer) the caller
    /// applies directly.
    pub fn record_probe(&mut self, node: NodeIdx, bytes: u32) {
        self.recorder
            .record_tx(self.now, node.idx(), TrafficClass::Overlay, bytes);
    }

    /// Registers standing (periodic, event-free) traffic for `node`; see
    /// [`BandwidthRecorder::set_standing`]. Used for strictly periodic
    /// protocol traffic (leafset heartbeats) whose event-by-event
    /// simulation would swamp the queue without changing any decision.
    pub fn set_standing(&mut self, node: NodeIdx, class: TrafficClass, tx_rate: f32, rx_rate: f32) {
        self.recorder
            .set_standing(node.idx(), class, tx_rate, rx_rate);
    }

    /// Per-cause drop statistics so far (also embedded in the final
    /// [`BandwidthReport`] by [`Engine::finish`]).
    #[must_use]
    pub fn drop_stats(&self) -> DropStats {
        DropStats {
            random_loss: self.dropped_loss,
            partition: self.dropped_partition,
            dest_down: self.dropped_dest_down,
            link_fault: self.dropped_link_fault,
            duplicated: self.messages_duplicated,
            by_class: self.drops_by_class,
        }
    }

    /// Snapshot of the engine's counters and gauges as a
    /// [`MetricsRegistry`] — the uniform surface for run summaries.
    /// Applications merge their own registries on top.
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.set_counter("sim.messages_sent", self.messages_sent);
        m.set_counter("sim.timers_cancelled", self.timers_cancelled);
        m.set_counter("sim.quantum_timers_fired", self.quantum_timers_fired);
        m.set_counter("sim.clamped_to_now", self.clamped_to_now);
        m.set_counter("sim.payload_fallback_clones", payload_fallback_clones());
        m.record_drop_stats(&self.drop_stats());
        let totals = self.recorder.totals_tx();
        m.set_counter("sim.tx_bytes.overlay", totals[0]);
        m.set_counter("sim.tx_bytes.maintenance", totals[1]);
        m.set_counter("sim.tx_bytes.query", totals[2]);
        m.set_gauge("sim.nodes_up", self.num_up() as f64);
        m.set_gauge("sim.nodes_total", self.num_nodes() as f64);
        for (kind, count) in &self.app_events {
            m.set_counter(kind, *count);
        }
        if let Some(t) = &self.tracer {
            m.set_counter("sim.trace.recorded", t.recorded());
            m.set_counter("sim.trace.evicted", t.dropped_records());
        }
        m
    }

    /// Finishes the run, consuming the engine and yielding the bandwidth
    /// report (accounting closed at the final clock value).
    #[must_use]
    pub fn finish(self) -> BandwidthReport {
        let drops = self.drop_stats();
        let mut report = self.recorder.finish(self.now);
        report.drops = drops;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::UniformTopology;

    fn engine_with(n: usize, latency_ms: u64, scheduler: SchedulerKind) -> Engine<&'static str> {
        Engine::new(
            Box::new(UniformTopology::new(n, Duration::from_millis(latency_ms))),
            SimConfig {
                scheduler,
                ..SimConfig::default()
            },
        )
    }

    fn engine(n: usize, latency_ms: u64) -> Engine<&'static str> {
        engine_with(n, latency_ms, SchedulerKind::Wheel)
    }

    fn drain(e: &mut Engine<&'static str>, horizon: Time) -> Vec<(Time, String)> {
        let mut out = Vec::new();
        while let Some((t, ev)) = e.next_event_before(horizon) {
            out.push((t, format!("{ev:?}")));
        }
        out
    }

    #[test]
    fn message_latency_and_ordering() {
        let mut e = engine(3, 10);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        e.schedule_up(Time::ZERO, NodeIdx(1));
        // Bring nodes up first.
        assert!(matches!(
            e.next_event_before(Time(1)),
            Some((_, Event::NodeUp { .. }))
        ));
        assert!(matches!(
            e.next_event_before(Time(1)),
            Some((_, Event::NodeUp { .. }))
        ));
        e.send(NodeIdx(0), NodeIdx(1), "hello", 100, TrafficClass::Query);
        let (t, ev) = e
            .next_event_before(Time::ZERO + Duration::from_secs(1))
            .unwrap();
        assert_eq!(t, Time::ZERO + Duration::from_millis(10));
        match ev {
            Event::Message { from, to, payload } => {
                assert_eq!(from, NodeIdx(0));
                assert_eq!(to, NodeIdx(1));
                assert_eq!(payload.into_owned(), "hello");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn multicast_fallback_clone_is_metered_and_single_dest_is_free() {
        let mut e = engine(3, 0);
        for i in 0..3 {
            e.schedule_up(Time::ZERO, NodeIdx(i));
            let _ = e.next_event_before(Time(1));
        }
        let horizon = Time::ZERO + Duration::from_secs(1);

        // Single destination: the owned fast path, no fallback possible.
        let before = payload_fallback_clones();
        e.multicast(NodeIdx(0), &[NodeIdx(1)], "solo", 10, TrafficClass::Query);
        let (_, ev) = e.next_event_before(horizon).unwrap();
        let Event::Message { payload, .. } = ev else {
            panic!("expected message");
        };
        assert_eq!(payload.into_owned(), "solo");
        assert_eq!(payload_fallback_clones(), before);

        // Two destinations: the first copy consumed by value clones (its
        // sibling still holds the allocation); the last copy moves free.
        e.multicast(
            NodeIdx(0),
            &[NodeIdx(1), NodeIdx(2)],
            "pair",
            10,
            TrafficClass::Query,
        );
        for step in 1..=2u64 {
            let (_, ev) = e.next_event_before(horizon).unwrap();
            let Event::Message { payload, .. } = ev else {
                panic!("expected message");
            };
            assert_eq!(payload.into_owned(), "pair");
            assert_eq!(payload_fallback_clones(), before + 1, "step {step}");
        }
    }

    #[test]
    fn fifo_between_same_timestamp_events() {
        let mut e = engine(2, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        e.schedule_up(Time::ZERO, NodeIdx(1));
        let evs = drain(&mut e, Time(10));
        assert!(evs[0].1.contains("NodeUp { node: NodeIdx(0) }"));
        assert!(evs[1].1.contains("NodeUp { node: NodeIdx(1) }"));
    }

    #[test]
    fn message_to_down_node_is_dropped() {
        let mut e = engine(2, 10);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        e.schedule_up(Time::ZERO, NodeIdx(1));
        e.schedule_down(Time(5_000), NodeIdx(1)); // down before delivery
        let _ = e.next_event_before(Time(1)); // up 0
        let _ = e.next_event_before(Time(1)); // up 1
        e.send(NodeIdx(0), NodeIdx(1), "m", 50, TrafficClass::Query);
        let evs = drain(&mut e, Time::ZERO + Duration::from_secs(1));
        // Only the NodeDown should surface; the message is swallowed.
        assert_eq!(evs.len(), 1, "{evs:?}");
        assert!(evs[0].1.contains("NodeDown"));
        assert_eq!(e.dropped_dest_down, 1);
    }

    #[test]
    fn timer_cancelled_when_node_goes_down() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        let _ = e.next_event_before(Time(1));
        e.set_timer(NodeIdx(0), Duration::from_secs(10), 42);
        e.schedule_down(Time::ZERO + Duration::from_secs(5), NodeIdx(0));
        // Node comes back before the timer's original fire time; the
        // timer must NOT leak into the new session.
        e.schedule_up(Time::ZERO + Duration::from_secs(7), NodeIdx(0));
        let evs = drain(&mut e, Time::ZERO + Duration::from_secs(60));
        assert_eq!(evs.len(), 2, "{evs:?}");
        assert!(evs[0].1.contains("NodeDown"));
        assert!(evs[1].1.contains("NodeUp"));
        assert_eq!(e.timers_cancelled, 1);
    }

    #[test]
    fn detached_timer_survives_churn() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        let _ = e.next_event_before(Time(1));
        e.set_detached_timer(NodeIdx(0), Duration::from_secs(10), 9);
        e.schedule_down(Time::ZERO + Duration::from_secs(5), NodeIdx(0));
        let evs = drain(&mut e, Time::ZERO + Duration::from_secs(60));
        assert_eq!(evs.len(), 2, "{evs:?}");
        assert!(evs[0].1.contains("NodeDown"));
        assert!(evs[1].1.contains("Timer"), "{evs:?}");
        assert_eq!(e.timers_cancelled, 0);
    }

    #[test]
    fn quantum_timer_fires_counted_and_dies_with_node() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        let _ = e.next_event_before(Time(1));
        // First quantum fires and is metered separately from protocol
        // timers.
        e.set_quantum_timer(NodeIdx(0), Duration::from_secs(1), 3);
        let (_, ev) = e
            .next_event_before(Time::ZERO + Duration::from_secs(2))
            .unwrap();
        assert!(matches!(
            ev,
            Event::Timer {
                node: NodeIdx(0),
                tag: 3
            }
        ));
        assert_eq!(e.quantum_timers_fired, 1);
        assert_eq!(e.timers_cancelled, 0);
        // Second quantum is disarmed by the node going down, exactly like
        // an auto timer: a dead endsystem has no scan queue to pump.
        e.set_quantum_timer(NodeIdx(0), Duration::from_secs(10), 4);
        e.schedule_down(Time::ZERO + Duration::from_secs(5), NodeIdx(0));
        let evs = drain(&mut e, Time::ZERO + Duration::from_secs(60));
        assert_eq!(evs.len(), 1, "{evs:?}");
        assert!(evs[0].1.contains("NodeDown"));
        assert_eq!(e.quantum_timers_fired, 1);
        assert_eq!(e.timers_cancelled, 1);
    }

    #[test]
    fn cancel_timer_disarms_and_is_idempotent() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        let _ = e.next_event_before(Time(1));
        let h = e.set_timer(NodeIdx(0), Duration::from_secs(3), 7);
        let kept = e.set_timer(NodeIdx(0), Duration::from_secs(4), 8);
        assert!(e.cancel_timer(h));
        assert!(!e.cancel_timer(h), "second cancel is a no-op");
        let evs = drain(&mut e, Time::ZERO + Duration::from_secs(10));
        assert_eq!(evs.len(), 1, "{evs:?}");
        assert!(evs[0].1.contains("tag: 8"), "{evs:?}");
        // A handle whose timer already fired cancels as a no-op too.
        assert!(!e.cancel_timer(kept));
    }

    #[test]
    fn timer_fires_with_tag() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        let _ = e.next_event_before(Time(1));
        e.set_timer(NodeIdx(0), Duration::from_secs(3), 7);
        let (t, ev) = e
            .next_event_before(Time::ZERO + Duration::from_secs(10))
            .unwrap();
        assert_eq!(t, Time::ZERO + Duration::from_secs(3));
        assert!(matches!(
            ev,
            Event::Timer {
                node: NodeIdx(0),
                tag: 7
            }
        ));
    }

    #[test]
    fn horizon_stops_and_advances_clock() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO + Duration::from_secs(100), NodeIdx(0));
        assert!(e
            .next_event_before(Time::ZERO + Duration::from_secs(50))
            .is_none());
        assert_eq!(e.now(), Time::ZERO + Duration::from_secs(50));
        assert!(e
            .next_event_before(Time::ZERO + Duration::from_secs(200))
            .is_some());
        assert_eq!(e.now(), Time::ZERO + Duration::from_secs(100));
    }

    #[test]
    fn past_dated_events_clamp_to_now() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        let _ = e.next_event_before(Time::ZERO + Duration::from_secs(5)); // NodeUp
        assert!(e
            .next_event_before(Time::ZERO + Duration::from_secs(5))
            .is_none());
        // Clock sits at the horizon (5s); date an event before it.
        assert_eq!(e.now(), Time::ZERO + Duration::from_secs(5));
        e.schedule_down(Time::ZERO + Duration::from_secs(2), NodeIdx(0));
        let (t, ev) = e
            .next_event_before(Time::ZERO + Duration::from_secs(10))
            .unwrap();
        assert_eq!(t, e.now());
        assert_eq!(t, Time::ZERO + Duration::from_secs(5));
        assert!(matches!(ev, Event::NodeDown { .. }));
        assert_eq!(e.clamped_to_now, 1);
    }

    #[test]
    fn loss_rate_drops_messages() {
        let mut e: Engine<u32> = Engine::new(
            Box::new(UniformTopology::new(2, Duration::MILLISECOND)),
            SimConfig {
                seed: 1,
                loss_rate: 1.0,
                ..SimConfig::default()
            },
        );
        e.schedule_up(Time::ZERO, NodeIdx(0));
        e.schedule_up(Time::ZERO, NodeIdx(1));
        let _ = e.next_event_before(Time(1));
        let _ = e.next_event_before(Time(1));
        e.send(NodeIdx(0), NodeIdx(1), 1, 10, TrafficClass::Query);
        assert!(e
            .next_event_before(Time::ZERO + Duration::from_secs(1))
            .is_none());
        assert_eq!(e.dropped_loss, 1);
    }

    #[test]
    fn bandwidth_is_accounted() {
        let mut e = engine(2, 1);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        e.schedule_up(Time::ZERO, NodeIdx(1));
        let _ = e.next_event_before(Time(1));
        let _ = e.next_event_before(Time(1));
        e.send(NodeIdx(0), NodeIdx(1), "x", 500, TrafficClass::Maintenance);
        let _ = drain(&mut e, Time::ZERO + Duration::from_hours(2));
        let report = e.finish();
        assert_eq!(report.total_tx[TrafficClass::Maintenance as usize], 500);
        let rx: u64 = report
            .rx_hours
            .iter()
            .map(|h| h.bytes[TrafficClass::Maintenance as usize])
            .sum();
        assert_eq!(rx, 500);
    }

    #[test]
    fn up_nodes_iterates_live_set() {
        let mut e = engine(4, 0);
        e.schedule_up(Time::ZERO, NodeIdx(1));
        e.schedule_up(Time::ZERO, NodeIdx(3));
        let _ = e.next_event_before(Time(1));
        let _ = e.next_event_before(Time(1));
        let ups: Vec<_> = e.up_nodes().collect();
        assert_eq!(ups, vec![NodeIdx(1), NodeIdx(3)]);
        assert_eq!(e.num_up(), 2);
        assert!(e.is_up(NodeIdx(3)));
        assert!(!e.is_up(NodeIdx(0)));
    }

    /// The wheel and the heap must produce identical event sequences,
    /// including ties, cascade boundaries and cancellations.
    #[test]
    fn wheel_matches_heap_on_mixed_schedule() {
        let run = |scheduler: SchedulerKind| -> Vec<(Time, String)> {
            let mut e = engine_with(4, 3, scheduler);
            for i in 0..4 {
                e.schedule_up(Time::ZERO, NodeIdx(i));
            }
            // Spread timers across several wheel levels, with ties.
            let mut handles = Vec::new();
            for k in 0..200u64 {
                let node = NodeIdx((k % 4) as u32);
                let delay = Duration::from_micros((k * k * 37) % 5_000_000);
                handles.push(e.set_timer(node, delay, k));
                if k % 3 == 0 {
                    e.set_timer(node, delay, 1_000 + k); // same-time tie
                }
            }
            for (i, h) in handles.iter().enumerate() {
                if i % 5 == 0 {
                    e.cancel_timer(*h);
                }
            }
            e.schedule_down(Time(2_000_000), NodeIdx(2));
            e.schedule_up(Time(3_500_000), NodeIdx(2));
            let mut out = Vec::new();
            // Drain in horizon slices to exercise peek/horizon paths.
            for slice in 1..=10u64 {
                out.extend(drain(&mut e, Time(slice * 600_000)));
            }
            out
        };
        let wheel = run(SchedulerKind::Wheel);
        let heap = run(SchedulerKind::Heap);
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(wheel, heap);
    }

    /// Long-delay timers cross multiple cascade levels and still fire in
    /// exact time order.
    #[test]
    fn wheel_cascades_preserve_order_across_levels() {
        let mut e = engine(1, 0);
        e.schedule_up(Time::ZERO, NodeIdx(0));
        let _ = e.next_event_before(Time(1));
        // Delays from µs to hours: levels 0 through ~5.
        let delays: &[u64] = &[
            1,
            63,
            64,
            65,
            4_095,
            4_096,
            262_143,
            262_144,
            10_000_000,
            3_600_000_000,
        ];
        for (i, &d) in delays.iter().enumerate() {
            e.set_timer(NodeIdx(0), Duration::from_micros(d), i as u64);
        }
        let horizon = Time::ZERO + Duration::from_secs(7200);
        let fired: Vec<Time> =
            std::iter::from_fn(|| e.next_event_before(horizon).map(|(t, _)| t)).collect();
        let expect: Vec<Time> = delays.iter().map(|&d| Time(d)).collect();
        assert_eq!(fired, expect);
    }
}
