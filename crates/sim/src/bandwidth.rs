//! Streaming bandwidth accounting.
//!
//! Figure 9 of the paper reports (a) per-online-endsystem overhead over
//! time, broken into MSPastry / Seaweed-maintenance / Seaweed-query
//! traffic, (b) the CDF of per-endsystem per-hour bandwidth (a sample is
//! one endsystem's average over one hour; zero means the endsystem was
//! down that hour), (c) that CDF's insensitivity to id assignment and (d)
//! per-endsystem overhead versus network size.
//!
//! Storing every (node, hour) pair for a 20,000-node, 4-week run would be
//! 13.4M samples per direction — affordable, but we stream anyway: the
//! recorder keeps only current-hour counters per node, and at each hour
//! boundary flushes them into per-hour aggregate series and (optionally)
//! raw CDF sample vectors.
//!
//! **Standing traffic.** Strictly periodic small messages (leafset
//! heartbeats every 30 s, metadata refresh at very large scale) would
//! dominate the event queue without affecting protocol decisions — our
//! failure detection models the heartbeat *timeout*, not each beat. Such
//! flows register a per-node bytes/second rate instead
//! ([`BandwidthRecorder::set_standing`]); the recorder integrates rate ×
//! per-node uptime each hour, so totals, per-hour series and CDF samples
//! are identical to what event-per-beat simulation would record (up to
//! sub-second phase).

use seaweed_types::{Duration, Time};

/// Class of traffic a message belongs to, for Figure 9(a)-style breakdowns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrafficClass {
    /// Pastry overlay maintenance: leafset heartbeats, join traffic,
    /// routing-table repair.
    Overlay = 0,
    /// Seaweed background maintenance: metadata (histogram + availability
    /// model) replication.
    Maintenance = 1,
    /// Per-query traffic: dissemination, predictor aggregation, results.
    Query = 2,
}

pub const NUM_CLASSES: usize = 3;

/// Per-hour aggregate across the whole network for one traffic direction.
#[derive(Clone, Copy, Default, Debug)]
pub struct HourAggregate {
    /// Total bytes by class.
    pub bytes: [u64; NUM_CLASSES],
    /// Time-integral of the number of online endsystems over the hour, in
    /// endsystem-microseconds; divide by 3.6e9 for the mean online count.
    pub online_node_us: u64,
}

impl HourAggregate {
    /// Mean number of endsystems online during the hour.
    #[must_use]
    pub fn mean_online(&self) -> f64 {
        self.online_node_us as f64 / Duration::HOUR.as_micros() as f64
    }

    /// Mean bytes/second per online endsystem for one class.
    #[must_use]
    pub fn per_online_bps(&self, class: TrafficClass) -> f64 {
        let online = self.mean_online();
        if online <= 0.0 {
            return 0.0;
        }
        self.bytes[class as usize] as f64 / 3600.0 / online
    }

    /// Mean bytes/second per online endsystem, all classes.
    #[must_use]
    pub fn total_per_online_bps(&self) -> f64 {
        let online = self.mean_online();
        if online <= 0.0 {
            return 0.0;
        }
        self.bytes.iter().sum::<u64>() as f64 / 3600.0 / online
    }
}

/// Records bandwidth usage during a simulation run.
#[derive(Debug)]
pub struct BandwidthRecorder {
    n: usize,
    collect_cdf: bool,
    /// Hour currently being accumulated.
    cur_hour: u64,
    /// Per-node current-hour bytes by class: `[node][class]`.
    cur_tx: Vec<[u64; NUM_CLASSES]>,
    cur_rx: Vec<[u64; NUM_CLASSES]>,
    /// Standing (periodic, event-free) rates in bytes/sec of uptime.
    standing_tx: Vec<[f32; NUM_CLASSES]>,
    standing_rx: Vec<[f32; NUM_CLASSES]>,
    /// Per-node uptime bookkeeping within the current hour.
    up_since: Vec<Option<Time>>,
    uptime_us_hour: Vec<u64>,
    /// Completed per-hour aggregates.
    tx_hours: Vec<HourAggregate>,
    rx_hours: Vec<HourAggregate>,
    /// Raw CDF samples: one f32 per (node, completed hour), bytes/sec,
    /// summed across classes. Only populated when `collect_cdf`.
    tx_samples: Vec<f32>,
    rx_samples: Vec<f32>,
    /// Whole-run totals by class (tx side, standing included at flush).
    total_tx: [u64; NUM_CLASSES],
    /// Online-time integral bookkeeping (global).
    online_count: usize,
    online_integral_us: u64,
    last_online_change: Time,
}

impl BandwidthRecorder {
    #[must_use]
    pub fn new(num_nodes: usize, collect_cdf: bool) -> Self {
        BandwidthRecorder {
            n: num_nodes,
            collect_cdf,
            cur_hour: 0,
            cur_tx: vec![[0; NUM_CLASSES]; num_nodes],
            cur_rx: vec![[0; NUM_CLASSES]; num_nodes],
            standing_tx: vec![[0.0; NUM_CLASSES]; num_nodes],
            standing_rx: vec![[0.0; NUM_CLASSES]; num_nodes],
            up_since: vec![None; num_nodes],
            uptime_us_hour: vec![0; num_nodes],
            tx_hours: Vec::new(),
            rx_hours: Vec::new(),
            tx_samples: Vec::new(),
            rx_samples: Vec::new(),
            total_tx: [0; NUM_CLASSES],
            online_count: 0,
            online_integral_us: 0,
            last_online_change: Time::ZERO,
        }
    }

    /// Advances the hour cursor, flushing completed hours. Must be called
    /// with monotonically non-decreasing times before recording at `now`.
    pub fn advance(&mut self, now: Time) {
        let hour = now.hours_since_epoch();
        while self.cur_hour < hour {
            let boundary = Time::from_micros((self.cur_hour + 1) * Duration::HOUR.as_micros());
            self.accumulate_online(boundary);
            self.flush_hour(boundary);
            self.cur_hour += 1;
        }
    }

    fn flush_hour(&mut self, boundary: Time) {
        let mut tx_agg = HourAggregate {
            bytes: [0; NUM_CLASSES],
            online_node_us: self.online_integral_us,
        };
        let mut rx_agg = tx_agg;
        self.online_integral_us = 0;
        for node in 0..self.n {
            // Close out uptime for nodes still up.
            if let Some(since) = self.up_since[node] {
                self.uptime_us_hour[node] += boundary.saturating_since(since).as_micros();
                self.up_since[node] = Some(boundary);
            }
            let up_secs = self.uptime_us_hour[node] as f64 / 1e6;
            self.uptime_us_hour[node] = 0;
            // Fold standing traffic into the counters.
            for c in 0..NUM_CLASSES {
                let st = (self.standing_tx[node][c] as f64 * up_secs) as u64;
                let sr = (self.standing_rx[node][c] as f64 * up_secs) as u64;
                self.cur_tx[node][c] += st;
                self.cur_rx[node][c] += sr;
                self.total_tx[c] += st;
            }
            let t: u64 = self.cur_tx[node].iter().sum();
            let r: u64 = self.cur_rx[node].iter().sum();
            for c in 0..NUM_CLASSES {
                tx_agg.bytes[c] += self.cur_tx[node][c];
                rx_agg.bytes[c] += self.cur_rx[node][c];
            }
            if self.collect_cdf {
                self.tx_samples.push(t as f32 / 3600.0);
                self.rx_samples.push(r as f32 / 3600.0);
            }
            self.cur_tx[node] = [0; NUM_CLASSES];
            self.cur_rx[node] = [0; NUM_CLASSES];
        }
        self.tx_hours.push(tx_agg);
        self.rx_hours.push(rx_agg);
    }

    fn accumulate_online(&mut self, now: Time) {
        let dt = now.saturating_since(self.last_online_change);
        self.online_integral_us += dt.as_micros() * self.online_count as u64;
        self.last_online_change = now;
    }

    /// Notifies the recorder that `node` came up at `now`.
    pub fn node_up(&mut self, now: Time, node: usize) {
        self.advance(now);
        self.accumulate_online(now);
        self.online_count += 1;
        debug_assert!(self.up_since[node].is_none());
        self.up_since[node] = Some(now);
    }

    /// Notifies the recorder that `node` went down at `now`.
    pub fn node_down(&mut self, now: Time, node: usize) {
        self.advance(now);
        self.accumulate_online(now);
        self.online_count = self.online_count.saturating_sub(1);
        if let Some(since) = self.up_since[node].take() {
            self.uptime_us_hour[node] += now.saturating_since(since).as_micros();
        }
    }

    /// Registers standing (periodic, event-free) traffic for `node`:
    /// `tx_rate`/`rx_rate` bytes per second of *uptime*. Replaces any
    /// previous rate for that class.
    pub fn set_standing(&mut self, node: usize, class: TrafficClass, tx_rate: f32, rx_rate: f32) {
        self.standing_tx[node][class as usize] = tx_rate;
        self.standing_rx[node][class as usize] = rx_rate;
    }

    /// Records `bytes` transmitted by `node`.
    pub fn record_tx(&mut self, now: Time, node: usize, class: TrafficClass, bytes: u32) {
        self.advance(now);
        self.cur_tx[node][class as usize] += u64::from(bytes);
        self.total_tx[class as usize] += u64::from(bytes);
    }

    /// Records `bytes` received by `node`.
    pub fn record_rx(&mut self, now: Time, node: usize, class: TrafficClass, bytes: u32) {
        self.advance(now);
        self.cur_rx[node][class as usize] += u64::from(bytes);
    }

    /// Whole-run transmitted-byte totals by class so far. Standing flows
    /// are included up to the last completed hour flush (they are only
    /// integrated at flush time).
    #[must_use]
    pub fn totals_tx(&self) -> [u64; NUM_CLASSES] {
        self.total_tx
    }

    /// Finalizes accounting at `end` and produces the report.
    ///
    /// Flushes the final partial hour so that `total_tx` always equals
    /// the sum of the per-hour series: the standing-rate integral and any
    /// counters accumulated since the last boundary are folded into one
    /// last (short) [`HourAggregate`].
    #[must_use]
    pub fn finish(mut self, end: Time) -> BandwidthReport {
        self.advance(end);
        // `advance` has flushed every whole hour before `end`. Two things
        // can still be pending: time elapsed past the last boundary, or
        // bytes recorded exactly *at* an end-of-run boundary (an event at
        // t = k·1h belongs to hour k, which `advance(k·1h)` does not
        // flush). Skipping the latter used to leak those bytes from the
        // per-hour series while `total_tx` still counted them.
        let boundary = self.cur_hour * Duration::HOUR.as_micros();
        let pending_bytes = self
            .cur_tx
            .iter()
            .chain(self.cur_rx.iter())
            .flatten()
            .any(|&b| b != 0);
        if end.as_micros() > boundary || pending_bytes {
            self.accumulate_online(end);
            self.flush_hour(end);
        }
        let mut tx_samples = self.tx_samples;
        let mut rx_samples = self.rx_samples;
        tx_samples.sort_by(f32::total_cmp);
        rx_samples.sort_by(f32::total_cmp);
        BandwidthReport {
            tx_hours: self.tx_hours,
            rx_hours: self.rx_hours,
            tx_samples_sorted: tx_samples,
            rx_samples_sorted: rx_samples,
            total_tx: self.total_tx,
            drops: DropStats::default(),
        }
    }
}

/// Message drops broken down by cause, plus fault-plan duplication.
/// Filled in by the engine at [`crate::Engine::finish`]; every cause is
/// zero on a fault-free run except `random_loss` and `dest_down`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DropStats {
    /// Uniform random in-flight loss (`SimConfig::loss_rate`).
    pub random_loss: u64,
    /// Dropped at a fault-plan partition cut (at send or in flight).
    pub partition: u64,
    /// Destination was down at delivery time.
    pub dest_down: u64,
    /// Dropped by a fault-plan link-degradation window.
    pub link_fault: u64,
    /// Extra copies delivered by fault-plan duplication (not drops, but
    /// part of the same conservation ledger: sent + duplicated =
    /// delivered + dropped).
    pub duplicated: u64,
    /// Drops from all causes, bucketed by traffic class.
    pub by_class: [u64; NUM_CLASSES],
}

impl DropStats {
    /// Total messages dropped, all causes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.random_loss + self.partition + self.dest_down + self.link_fault
    }
}

/// Completed bandwidth accounting for a run.
#[derive(Debug, Default)]
pub struct BandwidthReport {
    pub tx_hours: Vec<HourAggregate>,
    pub rx_hours: Vec<HourAggregate>,
    /// Sorted per-(node,hour) tx samples in bytes/sec (empty unless CDF
    /// collection was enabled).
    pub tx_samples_sorted: Vec<f32>,
    pub rx_samples_sorted: Vec<f32>,
    pub total_tx: [u64; NUM_CLASSES],
    /// Per-cause drop counters (see [`DropStats`]).
    pub drops: DropStats,
}

impl BandwidthReport {
    /// Percentile (0..=100) of the per-(node,hour) tx distribution.
    #[must_use]
    pub fn tx_percentile(&self, pct: f64) -> f32 {
        percentile(&self.tx_samples_sorted, pct)
    }

    /// Percentile (0..=100) of the per-(node,hour) rx distribution.
    #[must_use]
    pub fn rx_percentile(&self, pct: f64) -> f32 {
        percentile(&self.rx_samples_sorted, pct)
    }

    /// Mean bytes/sec per *online* endsystem across the whole run for one
    /// class (tx direction).
    #[must_use]
    pub fn mean_tx_per_online_bps(&self, class: TrafficClass) -> f64 {
        let bytes: u64 = self.tx_hours.iter().map(|h| h.bytes[class as usize]).sum();
        let online_us: u64 = self.tx_hours.iter().map(|h| h.online_node_us).sum();
        if online_us == 0 {
            return 0.0;
        }
        bytes as f64 / (online_us as f64 / 1e6)
    }

    /// Mean bytes/sec per online endsystem, all classes (tx).
    #[must_use]
    pub fn mean_tx_total_per_online_bps(&self) -> f64 {
        (0..NUM_CLASSES)
            .map(|c| self.mean_tx_per_online_bps(class_from(c)))
            .sum()
    }

    /// Fraction of per-(node,hour) samples that are exactly zero — the
    /// CDF's y-intercept, which the paper reads as mean unavailability.
    #[must_use]
    pub fn tx_zero_fraction(&self) -> f64 {
        if self.tx_samples_sorted.is_empty() {
            return 0.0;
        }
        let zeros = self
            .tx_samples_sorted
            .iter()
            .take_while(|&&s| s == 0.0)
            .count();
        zeros as f64 / self.tx_samples_sorted.len() as f64
    }
}

fn class_from(i: usize) -> TrafficClass {
    match i {
        0 => TrafficClass::Overlay,
        1 => TrafficClass::Maintenance,
        _ => TrafficClass::Query,
    }
}

fn percentile(sorted: &[f32], pct: f64) -> f32 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_flush_and_totals() {
        let mut rec = BandwidthRecorder::new(2, true);
        rec.node_up(Time::ZERO, 0);
        rec.node_up(Time::ZERO, 1);
        rec.record_tx(Time::from_micros(10), 0, TrafficClass::Maintenance, 3600);
        rec.record_rx(Time::from_micros(20), 1, TrafficClass::Maintenance, 7200);
        // Move into hour 2 to force a flush of hours 0 and 1.
        rec.advance(Time::ZERO + Duration::from_hours(2));
        let report = rec.finish(Time::ZERO + Duration::from_hours(2));
        assert_eq!(report.tx_hours.len(), 2);
        assert_eq!(
            report.tx_hours[0].bytes[TrafficClass::Maintenance as usize],
            3600
        );
        assert_eq!(
            report.rx_hours[0].bytes[TrafficClass::Maintenance as usize],
            7200
        );
        assert_eq!(
            report.tx_hours[1].bytes[TrafficClass::Maintenance as usize],
            0
        );
        // 2 nodes online all of hour 0.
        assert!((report.tx_hours[0].mean_online() - 2.0).abs() < 1e-9);
        // Node 0 sent 3600 B in hour 0 => 1 B/s sample; node 1 sent 0.
        assert_eq!(report.tx_samples_sorted.len(), 4);
        assert_eq!(*report.tx_samples_sorted.last().unwrap(), 1.0);
        assert_eq!(report.total_tx[TrafficClass::Maintenance as usize], 3600);
    }

    #[test]
    fn online_integral_tracks_downtime() {
        let mut rec = BandwidthRecorder::new(1, false);
        rec.node_up(Time::ZERO, 0);
        // Down at 30 minutes.
        rec.node_down(Time::ZERO + Duration::from_mins(30), 0);
        rec.advance(Time::ZERO + Duration::from_hours(1));
        let report = rec.finish(Time::ZERO + Duration::from_hours(1));
        assert!((report.tx_hours[0].mean_online() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn standing_traffic_integrates_uptime() {
        let mut rec = BandwidthRecorder::new(2, true);
        rec.set_standing(0, TrafficClass::Overlay, 10.0, 5.0);
        rec.node_up(Time::ZERO, 0);
        // Node 0 up for 30 min then down; node 1 never up.
        rec.node_down(Time::ZERO + Duration::from_mins(30), 0);
        let report = rec.finish(Time::ZERO + Duration::from_hours(1));
        let tx = report.tx_hours[0].bytes[TrafficClass::Overlay as usize];
        let rx = report.rx_hours[0].bytes[TrafficClass::Overlay as usize];
        assert_eq!(tx, 10 * 1800);
        assert_eq!(rx, 5 * 1800);
        assert_eq!(report.total_tx[TrafficClass::Overlay as usize], 10 * 1800);
        // Sample for node 0: 18000/3600 = 5 B/s.
        assert_eq!(*report.tx_samples_sorted.last().unwrap(), 5.0);
        // Node 1 contributes a zero sample.
        assert_eq!(report.tx_samples_sorted[0], 0.0);
        assert_eq!(report.tx_zero_fraction(), 0.5);
    }

    #[test]
    fn standing_spans_hour_boundaries() {
        let mut rec = BandwidthRecorder::new(1, false);
        rec.set_standing(0, TrafficClass::Maintenance, 1.0, 1.0);
        rec.node_up(Time::ZERO, 0);
        let report = rec.finish(Time::ZERO + Duration::from_hours(3));
        let per_hour: Vec<u64> = report
            .tx_hours
            .iter()
            .map(|h| h.bytes[TrafficClass::Maintenance as usize])
            .collect();
        assert_eq!(per_hour, vec![3600, 3600, 3600]);
    }

    #[test]
    fn per_online_bps() {
        let agg = HourAggregate {
            bytes: [0, 7200, 0],
            online_node_us: 2 * Duration::HOUR.as_micros(),
        };
        // 7200 bytes over an hour shared by 2 online nodes = 1 B/s each.
        assert!((agg.per_online_bps(TrafficClass::Maintenance) - 1.0).abs() < 1e-9);
        assert!((agg.total_per_online_bps() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_and_zero_fraction() {
        let report = BandwidthReport {
            tx_samples_sorted: vec![0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            ..Default::default()
        };
        assert_eq!(report.tx_percentile(0.0), 0.0);
        assert_eq!(report.tx_percentile(100.0), 8.0);
        assert_eq!(report.tx_percentile(50.0), 4.0); // round(0.5 * 9) = 5th element
        assert!((report.tx_zero_fraction() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn partial_final_hour_is_flushed() {
        let mut rec = BandwidthRecorder::new(1, false);
        rec.node_up(Time::ZERO, 0);
        rec.record_tx(
            Time::ZERO + Duration::from_mins(90),
            0,
            TrafficClass::Query,
            100,
        );
        let report = rec.finish(Time::ZERO + Duration::from_mins(100));
        assert_eq!(report.tx_hours.len(), 2);
        assert_eq!(report.tx_hours[1].bytes[TrafficClass::Query as usize], 100);
    }

    /// Report totals must equal the sum of the per-hour series — for a
    /// run ending mid-hour with a standing flow, and for traffic recorded
    /// exactly at an end-of-run hour boundary (the historical leak).
    #[test]
    fn totals_equal_sum_of_hour_series() {
        // Mid-hour end: events plus a standing rate, node churn included.
        let mut rec = BandwidthRecorder::new(2, true);
        rec.set_standing(0, TrafficClass::Overlay, 4.0, 2.0);
        rec.node_up(Time::ZERO, 0);
        rec.node_up(Time::ZERO, 1);
        rec.record_tx(
            Time::ZERO + Duration::from_mins(20),
            1,
            TrafficClass::Query,
            500,
        );
        rec.record_tx(
            Time::ZERO + Duration::from_mins(80),
            0,
            TrafficClass::Maintenance,
            900,
        );
        rec.node_down(Time::ZERO + Duration::from_mins(85), 1);
        let end = Time::ZERO + Duration::from_mins(90);
        let report = rec.finish(end);
        assert_eq!(report.tx_hours.len(), 2, "whole hour plus partial hour");
        for c in 0..NUM_CLASSES {
            let series: u64 = report.tx_hours.iter().map(|h| h.bytes[c]).sum();
            assert_eq!(series, report.total_tx[c], "class {c}");
        }
        // Standing flow: node 0 up for the whole 90 minutes at 4 B/s.
        assert_eq!(report.total_tx[TrafficClass::Overlay as usize], 4 * 90 * 60);

        // Boundary end: bytes recorded exactly at t = 1 h, run ends there.
        let mut rec = BandwidthRecorder::new(1, false);
        rec.node_up(Time::ZERO, 0);
        let boundary = Time::ZERO + Duration::from_hours(1);
        rec.record_tx(boundary, 0, TrafficClass::Query, 77);
        let report = rec.finish(boundary);
        let series: u64 = report
            .tx_hours
            .iter()
            .map(|h| h.bytes[TrafficClass::Query as usize])
            .sum();
        assert_eq!(report.total_tx[TrafficClass::Query as usize], 77);
        assert_eq!(series, 77, "boundary-instant bytes must reach the series");
    }

    #[test]
    fn mean_per_online_accounts_standing_and_events() {
        let mut rec = BandwidthRecorder::new(1, false);
        rec.set_standing(0, TrafficClass::Overlay, 2.0, 2.0);
        rec.node_up(Time::ZERO, 0);
        rec.record_tx(
            Time::ZERO + Duration::from_mins(10),
            0,
            TrafficClass::Overlay,
            3600,
        );
        let report = rec.finish(Time::ZERO + Duration::from_hours(1));
        // 2 B/s standing + 3600 B burst over 3600 online-seconds = 3 B/s.
        let mean = report.mean_tx_per_online_bps(TrafficClass::Overlay);
        assert!((mean - 3.0).abs() < 0.01, "mean {mean}");
        assert!((report.mean_tx_total_per_online_bps() - 3.0).abs() < 0.01);
    }
}
