//! Deterministic engine-level event tracing.
//!
//! The engine records every message send/deliver/drop (with its drop
//! cause), timer set/fire/cancel and node/partition transition into a
//! fixed-capacity ring buffer when [`crate::SimConfig::trace`] is set.
//! Tracing is strictly *observational*: it draws no randomness, schedules
//! nothing and allocates only inside the ring buffer, so enabling it can
//! never perturb the event order — runs with tracing on and off are
//! byte-identical (the determinism proptests pin this).
//!
//! The whole subsystem compiles to a no-op when the `trace` cargo feature
//! (on by default) is disabled: the engine's record hook becomes an empty
//! inline function and the optimizer removes the per-event branch, so the
//! hot path pays nothing.
//!
//! Two export formats, both hand-rolled (the build environment has no
//! serde) and byte-stable per seed — records are written in capture
//! order, all numbers are integers, and no wall-clock or map iteration is
//! involved:
//!
//! * **JSONL** ([`Tracer::export_jsonl`]) — one JSON object per line,
//!   grep/jq-friendly, compared byte-for-byte by the CI trace smoke.
//! * **Chrome `trace_event`** ([`Tracer::export_chrome_trace`]) — a JSON
//!   document loadable in `chrome://tracing` / Perfetto; simulated
//!   microseconds map directly onto the viewer's `ts` axis and each node
//!   appears as one "thread" row.

use std::collections::VecDeque;

use seaweed_types::Time;

use crate::bandwidth::TrafficClass;
use crate::engine::NodeIdx;

/// Why a message was dropped. Mirrors the causes in the
/// [`crate::DropStats`] ledger, so the trace can be reconciled against
/// the per-cause counters exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropCause {
    /// Uniform random in-flight loss (`SimConfig::loss_rate`).
    RandomLoss,
    /// Fault-plan partition cut (at send time or in flight).
    Partition,
    /// Destination was down at delivery time.
    DestDown,
    /// Fault-plan link-degradation window.
    LinkFault,
}

impl DropCause {
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DropCause::RandomLoss => "random_loss",
            DropCause::Partition => "partition",
            DropCause::DestDown => "dest_down",
            DropCause::LinkFault => "link_fault",
        }
    }
}

fn class_name(c: TrafficClass) -> &'static str {
    match c {
        TrafficClass::Overlay => "overlay",
        TrafficClass::Maintenance => "maintenance",
        TrafficClass::Query => "query",
    }
}

/// One traced engine-level occurrence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message entered the network (tx side, before loss/faults).
    MessageSend {
        from: NodeIdx,
        to: NodeIdx,
        size: u32,
        class: TrafficClass,
    },
    /// A message was handed to the application at `to`.
    MessageDeliver {
        from: NodeIdx,
        to: NodeIdx,
        size: u32,
        class: TrafficClass,
    },
    /// A message left the network without being delivered.
    MessageDrop {
        from: NodeIdx,
        to: NodeIdx,
        class: TrafficClass,
        cause: DropCause,
    },
    /// The fault plan injected an extra copy of a message.
    MessageDuplicate {
        from: NodeIdx,
        to: NodeIdx,
        class: TrafficClass,
    },
    /// A timer was armed. `seq` is the engine's (deterministic) event
    /// sequence number, shared with the matching fire/cancel record
    /// (exported as `timer_seq` to keep it distinct from the record's
    /// own `seq`).
    TimerSet {
        node: NodeIdx,
        tag: u64,
        seq: u64,
        at: Time,
        detached: bool,
    },
    /// A timer fired and was dispatched to the application.
    TimerFire {
        node: NodeIdx,
        tag: u64,
        seq: u64,
    },
    /// A timer was disarmed before firing — explicitly, or automatically
    /// because its node went down.
    TimerCancel {
        node: NodeIdx,
        seq: u64,
        at: Time,
    },
    NodeUp {
        node: NodeIdx,
    },
    NodeDown {
        node: NodeIdx,
    },
    NodeCrash {
        node: NodeIdx,
    },
    PartitionStart {
        partition: u32,
    },
    PartitionEnd {
        partition: u32,
    },
    /// An application-level occurrence recorded through
    /// [`Engine::record_app_event`](crate::Engine::record_app_event) —
    /// e.g. a dissemination give-up or a hedge send. `kind` is the
    /// caller's stable counter name; `detail` is event-specific (the
    /// query handle for dissemination events).
    AppEvent {
        node: NodeIdx,
        kind: &'static str,
        detail: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case tag used by both export formats.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MessageSend { .. } => "message_send",
            TraceEvent::MessageDeliver { .. } => "message_deliver",
            TraceEvent::MessageDrop { .. } => "message_drop",
            TraceEvent::MessageDuplicate { .. } => "message_duplicate",
            TraceEvent::TimerSet { .. } => "timer_set",
            TraceEvent::TimerFire { .. } => "timer_fire",
            TraceEvent::TimerCancel { .. } => "timer_cancel",
            TraceEvent::NodeUp { .. } => "node_up",
            TraceEvent::NodeDown { .. } => "node_down",
            TraceEvent::NodeCrash { .. } => "node_crash",
            TraceEvent::PartitionStart { .. } => "partition_start",
            TraceEvent::PartitionEnd { .. } => "partition_end",
            TraceEvent::AppEvent { .. } => "app_event",
        }
    }

    /// The node this event is attributed to in per-node views (the
    /// receiver for deliveries/drops, the owner otherwise); partitions
    /// have no single node.
    #[must_use]
    pub fn node(&self) -> Option<NodeIdx> {
        match *self {
            TraceEvent::MessageSend { from, .. } => Some(from),
            TraceEvent::MessageDeliver { to, .. }
            | TraceEvent::MessageDrop { to, .. }
            | TraceEvent::MessageDuplicate { to, .. } => Some(to),
            TraceEvent::TimerSet { node, .. }
            | TraceEvent::TimerFire { node, .. }
            | TraceEvent::TimerCancel { node, .. }
            | TraceEvent::NodeUp { node }
            | TraceEvent::NodeDown { node }
            | TraceEvent::NodeCrash { node }
            | TraceEvent::AppEvent { node, .. } => Some(node),
            TraceEvent::PartitionStart { .. } | TraceEvent::PartitionEnd { .. } => None,
        }
    }

    /// Appends the event-specific JSON fields (no surrounding braces).
    fn write_args(&self, out: &mut String) {
        use std::fmt::Write;
        match *self {
            TraceEvent::MessageSend {
                from,
                to,
                size,
                class,
            }
            | TraceEvent::MessageDeliver {
                from,
                to,
                size,
                class,
            } => {
                let _ = write!(
                    out,
                    "\"from\":{},\"to\":{},\"size\":{},\"class\":\"{}\"",
                    from.0,
                    to.0,
                    size,
                    class_name(class)
                );
            }
            TraceEvent::MessageDrop {
                from,
                to,
                class,
                cause,
            } => {
                let _ = write!(
                    out,
                    "\"from\":{},\"to\":{},\"class\":\"{}\",\"cause\":\"{}\"",
                    from.0,
                    to.0,
                    class_name(class),
                    cause.name()
                );
            }
            TraceEvent::MessageDuplicate { from, to, class } => {
                let _ = write!(
                    out,
                    "\"from\":{},\"to\":{},\"class\":\"{}\"",
                    from.0,
                    to.0,
                    class_name(class)
                );
            }
            TraceEvent::TimerSet {
                node,
                tag,
                seq,
                at,
                detached,
            } => {
                let _ = write!(
                    out,
                    "\"node\":{},\"tag\":{},\"timer_seq\":{},\"fires_at\":{},\"detached\":{}",
                    node.0, tag, seq, at.0, detached
                );
            }
            TraceEvent::TimerFire { node, tag, seq } => {
                let _ = write!(
                    out,
                    "\"node\":{},\"tag\":{},\"timer_seq\":{}",
                    node.0, tag, seq
                );
            }
            TraceEvent::TimerCancel { node, seq, at } => {
                let _ = write!(
                    out,
                    "\"node\":{},\"timer_seq\":{},\"fires_at\":{}",
                    node.0, seq, at.0
                );
            }
            TraceEvent::NodeUp { node }
            | TraceEvent::NodeDown { node }
            | TraceEvent::NodeCrash { node } => {
                let _ = write!(out, "\"node\":{}", node.0);
            }
            TraceEvent::PartitionStart { partition } | TraceEvent::PartitionEnd { partition } => {
                let _ = write!(out, "\"partition\":{partition}");
            }
            TraceEvent::AppEvent { node, kind, detail } => {
                let _ = write!(
                    out,
                    "\"node\":{},\"kind\":\"{kind}\",\"detail\":{detail}",
                    node.0
                );
            }
        }
    }
}

/// A timestamped trace record. `seq` is a tracer-local monotone counter
/// that totally orders records sharing a timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    pub at: Time,
    pub seq: u64,
    pub ev: TraceEvent,
}

/// Tracing configuration.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Ring-buffer capacity in records; once full, the oldest records are
    /// overwritten (counted in [`Tracer::dropped_records`]).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 1 << 16 }
    }
}

/// Fixed-capacity ring buffer of [`TraceRecord`]s.
#[derive(Debug)]
pub struct Tracer {
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    recorded: u64,
    dropped: u64,
}

impl Tracer {
    #[must_use]
    pub fn new(cfg: &TraceConfig) -> Self {
        let capacity = cfg.capacity.max(1);
        Tracer {
            capacity,
            // Cap the eager reservation; a huge configured capacity fills
            // lazily as records arrive.
            buf: VecDeque::with_capacity(capacity.min(1 << 16)),
            recorded: 0,
            dropped: 0,
        }
    }

    /// Appends a record, evicting the oldest when at capacity.
    pub fn record(&mut self, at: Time, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        let seq = self.recorded;
        self.recorded += 1;
        self.buf.push_back(TraceRecord { at, seq, ev });
    }

    /// Records currently held (oldest first).
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Number of records currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records ever captured (including evicted ones).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records evicted from the ring because the buffer was full.
    #[must_use]
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }

    /// One JSON object per line:
    /// `{"at":<µs>,"seq":<n>,"type":"message_send",...}`.
    #[must_use]
    pub fn export_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(self.buf.len() * 96);
        for r in &self.buf {
            let _ = write!(
                out,
                "{{\"at\":{},\"seq\":{},\"type\":\"{}\",",
                r.at.0,
                r.seq,
                r.ev.kind()
            );
            r.ev.write_args(&mut out);
            out.push_str("}\n");
        }
        out
    }

    /// A Chrome `trace_event` JSON document (instant events, one viewer
    /// "thread" per node; partition markers land on tid 0).
    #[must_use]
    pub fn export_chrome_trace(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(self.buf.len() * 128 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, r) in self.buf.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let tid = r.ev.node().map_or(0, |n| n.0);
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{",
                r.ev.kind(),
                r.at.0,
                tid
            );
            r.ev.write_args(&mut out);
            out.push_str("}}");
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut t = Tracer::new(&TraceConfig { capacity: 2 });
        for i in 0..5u32 {
            t.record(Time(u64::from(i)), TraceEvent::NodeUp { node: NodeIdx(i) });
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped_records(), 3);
        let kept: Vec<u64> = t.records().map(|r| r.at.0).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn jsonl_is_one_valid_line_per_record() {
        let mut t = Tracer::new(&TraceConfig::default());
        t.record(
            Time(7),
            TraceEvent::MessageSend {
                from: NodeIdx(1),
                to: NodeIdx(2),
                size: 64,
                class: TrafficClass::Query,
            },
        );
        t.record(
            Time(9),
            TraceEvent::MessageDrop {
                from: NodeIdx(1),
                to: NodeIdx(2),
                class: TrafficClass::Query,
                cause: DropCause::RandomLoss,
            },
        );
        let text = t.export_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"at\":7,\"seq\":0,\"type\":\"message_send\",\
             \"from\":1,\"to\":2,\"size\":64,\"class\":\"query\"}"
        );
        assert!(lines[1].contains("\"cause\":\"random_loss\""));
    }

    #[test]
    fn chrome_trace_shape() {
        let mut t = Tracer::new(&TraceConfig::default());
        t.record(Time(1), TraceEvent::NodeUp { node: NodeIdx(3) });
        t.record(Time(2), TraceEvent::PartitionStart { partition: 0 });
        let text = t.export_chrome_trace();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.contains("\"name\":\"node_up\""));
        assert!(text.contains("\"tid\":3"));
        assert!(text.trim_end().ends_with("]}"));
        // Exactly one comma between the two events.
        assert_eq!(text.matches("\"ph\":\"i\"").count(), 2);
    }
}
