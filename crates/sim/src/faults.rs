//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a declarative, fully-precomputed schedule of faults
//! — network partitions, per-link degradation windows, crash-with-amnesia,
//! correlated outage bursts, message duplication and bounded reordering —
//! that the engine consults on every `send()` and node transition. The
//! plan is part of [`crate::SimConfig`], so a fixed seed plus a fixed plan
//! reproduces a byte-identical run.
//!
//! Determinism contract:
//!
//! * The injector draws from its **own** seeded RNG stream
//!   (`FAULTS_STREAM`), never the engine's, so installing a plan does
//!   not perturb the engine's loss draws, and an *empty* plan consumes
//!   zero draws — a run without faults is bit-for-bit identical to a run
//!   on an engine that predates this module.
//! * Injector draws happen only when a fault is actually in force (a
//!   degradation window is open, duplication or reordering is enabled),
//!   in a fixed order per send: link-loss, reorder jitter, duplication,
//!   duplicate's jitter.
//!
//! Partition membership is expressed as an explicit endsystem set, but
//! the intended construction is structural: cut a router in a
//! [`CorpNetTopology`] and every endsystem of its subtree loses
//! cross-partition reachability until the heal time
//! ([`PartitionSpec::from_router_cut`]). Correlated outages
//! ([`OutageSpec::branch_outage`]) take a whole branch down together,
//! optionally with amnesia (soft state wiped on the way down, so the
//! rejoin is *not* a clean rejoin).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_types::{Duration, Time};

use crate::engine::NodeIdx;
use crate::topology::CorpNetTopology;

/// Stream-separation constant: the injector's RNG never shares a stream
/// with the engine, topology, overlay or application RNGs derived from
/// the same experiment seed.
const FAULTS_STREAM: u64 = 0xfa01_7fa0_17fa;

/// One network partition: `members` are isolated from every non-member
/// between `from` and `until`. Traffic *within* the member set (and
/// within the complement) is unaffected.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// Endsystem indices on the isolated side of the cut.
    pub members: Vec<u32>,
    /// Partition start (inclusive).
    pub from: Time,
    /// Heal time (exclusive).
    pub until: Time,
}

impl PartitionSpec {
    /// Structural partition: cutting `router` isolates its attached
    /// endsystems — and, for a regional router, the endsystems of every
    /// branch router homed to it — from the rest of the network.
    #[must_use]
    pub fn from_router_cut(topo: &CorpNetTopology, router: usize, from: Time, until: Time) -> Self {
        PartitionSpec {
            members: topo.subtree_endsystems(router),
            from,
            until,
        }
    }
}

/// A degradation window on the router pair `(zone_a, zone_b)`: traffic
/// between the two zones (in either direction) suffers `extra_loss` and a
/// `latency_mult` slowdown while the window is open.
#[derive(Clone, Debug)]
pub struct LinkFaultSpec {
    pub zone_a: u32,
    pub zone_b: u32,
    pub from: Time,
    pub until: Time,
    /// Probability a crossing message is dropped (on top of base loss).
    pub extra_loss: f64,
    /// Latency multiplier for surviving crossings (≥ 1.0).
    pub latency_mult: f64,
}

impl LinkFaultSpec {
    fn covers(&self, now: Time, za: u32, zb: u32) -> bool {
        now >= self.from
            && now < self.until
            && ((za, zb) == (self.zone_a, self.zone_b) || (zb, za) == (self.zone_a, self.zone_b))
    }
}

/// Crash-with-amnesia: the node goes down at `at` with its soft state
/// (vertex state, pending submissions, execution bookkeeping) wiped, and
/// rejoins `rejoin_after` later remembering nothing it had not persisted.
#[derive(Clone, Debug)]
pub struct CrashSpec {
    pub node: NodeIdx,
    pub at: Time,
    pub rejoin_after: Duration,
}

/// A correlated outage burst: every member goes down at `down_at` and
/// comes back at `up_at`. With `amnesia`, the burst is a mass crash
/// (state wiped) rather than a clean power-down.
#[derive(Clone, Debug)]
pub struct OutageSpec {
    pub members: Vec<u32>,
    pub down_at: Time,
    pub up_at: Time,
    pub amnesia: bool,
}

impl OutageSpec {
    /// A whole branch failing together: every endsystem in `router`'s
    /// subtree goes down at once.
    #[must_use]
    pub fn branch_outage(
        topo: &CorpNetTopology,
        router: usize,
        down_at: Time,
        up_at: Time,
        amnesia: bool,
    ) -> Self {
        OutageSpec {
            members: topo.subtree_endsystems(router),
            down_at,
            up_at,
            amnesia,
        }
    }
}

/// A complete, declarative fault schedule. An empty (default) plan
/// injects nothing and costs nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    pub partitions: Vec<PartitionSpec>,
    pub link_faults: Vec<LinkFaultSpec>,
    pub crashes: Vec<CrashSpec>,
    pub outages: Vec<OutageSpec>,
    /// Probability any surviving message is delivered twice.
    pub dup_rate: f64,
    /// Maximum extra delivery jitter; > 0 lets later sends overtake
    /// earlier ones (bounded reordering).
    pub reorder_window: Duration,
}

impl FaultPlan {
    /// Does this plan inject anything at all?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
            && self.link_faults.is_empty()
            && self.crashes.is_empty()
            && self.outages.is_empty()
            && self.dup_rate == 0.0
            && self.reorder_window == Duration::ZERO
    }
}

/// Per-send verdict of the link-degradation check.
#[derive(Debug)]
pub enum LinkEffect {
    /// No window covers this pair: deliver normally.
    Pass,
    /// Dropped by window loss.
    Drop,
    /// Delivered, with the window's latency multiplier.
    Delay(f64),
}

/// Runtime state of a [`FaultPlan`]: membership bitsets, the set of
/// currently-open partitions, and the injector's private RNG stream.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    /// Per-partition endsystem membership bitset.
    member_bits: Vec<Vec<u64>>,
    /// Which partitions are currently in force.
    active: Vec<bool>,
    num_active: usize,
}

impl FaultInjector {
    #[must_use]
    pub fn new(plan: FaultPlan, seed: u64, num_nodes: usize) -> Self {
        let words = num_nodes.div_ceil(64);
        let member_bits = plan
            .partitions
            .iter()
            .map(|p| {
                let mut bits = vec![0u64; words];
                for &m in &p.members {
                    assert!((m as usize) < num_nodes, "partition member out of range");
                    bits[m as usize / 64] |= 1 << (m % 64);
                }
                bits
            })
            .collect();
        let active = vec![false; plan.partitions.len()];
        FaultInjector {
            plan,
            rng: StdRng::seed_from_u64(seed ^ FAULTS_STREAM),
            member_bits,
            active,
            num_active: 0,
        }
    }

    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn partition_started(&mut self, idx: usize) {
        if !self.active[idx] {
            self.active[idx] = true;
            self.num_active += 1;
        }
    }

    pub fn partition_ended(&mut self, idx: usize) {
        if self.active[idx] {
            self.active[idx] = false;
            self.num_active -= 1;
        }
    }

    /// Can `a` currently reach `b`? False iff some open partition has
    /// exactly one of the two inside it.
    #[must_use]
    pub fn reachable(&self, a: NodeIdx, b: NodeIdx) -> bool {
        if self.num_active == 0 {
            return true;
        }
        let in_bits = |bits: &[u64], n: NodeIdx| bits[n.idx() / 64] >> (n.0 % 64) & 1 == 1;
        !self
            .active
            .iter()
            .zip(&self.member_bits)
            .any(|(&on, bits)| on && in_bits(bits, a) != in_bits(bits, b))
    }

    /// Link-degradation verdict for a send between zones `za` and `zb` at
    /// `now`. Draws the injector RNG only when a window actually covers
    /// the pair; the first covering window (plan order) applies.
    pub fn link_effect(&mut self, now: Time, za: u32, zb: u32) -> LinkEffect {
        for f in &self.plan.link_faults {
            if f.covers(now, za, zb) {
                if f.extra_loss > 0.0 && self.rng.gen::<f64>() < f.extra_loss {
                    return LinkEffect::Drop;
                }
                return LinkEffect::Delay(f.latency_mult);
            }
        }
        LinkEffect::Pass
    }

    /// Extra delivery jitter for one message copy. Zero (and no RNG
    /// draw) when reordering is disabled.
    pub fn reorder_jitter(&mut self) -> Duration {
        let w = self.plan.reorder_window.as_micros();
        if w == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(self.rng.gen_range(0..=w))
        }
    }

    /// Should this message be delivered twice? No RNG draw when
    /// duplication is disabled.
    pub fn duplicate(&mut self) -> bool {
        self.plan.dup_rate > 0.0 && self.rng.gen::<f64>() < self.plan.dup_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_with_partition(members: Vec<u32>) -> FaultPlan {
        FaultPlan {
            partitions: vec![PartitionSpec {
                members,
                from: Time(10),
                until: Time(20),
            }],
            ..FaultPlan::default()
        }
    }

    #[test]
    fn empty_plan_is_empty_and_injects_nothing() {
        assert!(FaultPlan::default().is_empty());
        let mut inj = FaultInjector::new(FaultPlan::default(), 1, 8);
        assert!(inj.reachable(NodeIdx(0), NodeIdx(7)));
        assert!(matches!(inj.link_effect(Time(5), 0, 1), LinkEffect::Pass));
        assert_eq!(inj.reorder_jitter(), Duration::ZERO);
        assert!(!inj.duplicate());
    }

    #[test]
    fn partition_splits_reachability_both_ways() {
        let mut inj = FaultInjector::new(plan_with_partition(vec![1, 2]), 7, 8);
        assert!(inj.reachable(NodeIdx(1), NodeIdx(0)));
        inj.partition_started(0);
        assert!(!inj.reachable(NodeIdx(1), NodeIdx(0)));
        assert!(!inj.reachable(NodeIdx(0), NodeIdx(2)));
        assert!(inj.reachable(NodeIdx(1), NodeIdx(2)), "same side");
        assert!(inj.reachable(NodeIdx(0), NodeIdx(5)), "same side");
        inj.partition_ended(0);
        assert!(inj.reachable(NodeIdx(1), NodeIdx(0)));
    }

    #[test]
    fn link_fault_applies_only_inside_window_and_zones() {
        let plan = FaultPlan {
            link_faults: vec![LinkFaultSpec {
                zone_a: 3,
                zone_b: 9,
                from: Time(100),
                until: Time(200),
                extra_loss: 0.0,
                latency_mult: 4.0,
            }],
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 1, 4);
        assert!(matches!(inj.link_effect(Time(50), 3, 9), LinkEffect::Pass));
        assert!(matches!(
            inj.link_effect(Time(150), 3, 9),
            LinkEffect::Delay(m) if (m - 4.0).abs() < 1e-12
        ));
        // Symmetric pair, window edge is exclusive.
        assert!(matches!(
            inj.link_effect(Time(150), 9, 3),
            LinkEffect::Delay(_)
        ));
        assert!(matches!(inj.link_effect(Time(200), 3, 9), LinkEffect::Pass));
        assert!(matches!(inj.link_effect(Time(150), 3, 4), LinkEffect::Pass));
    }

    #[test]
    fn injector_stream_is_deterministic() {
        let plan = FaultPlan {
            dup_rate: 0.5,
            reorder_window: Duration::from_micros(1_000),
            ..FaultPlan::default()
        };
        let run = || {
            let mut inj = FaultInjector::new(plan.clone(), 42, 4);
            (0..64)
                .map(|_| (inj.reorder_jitter(), inj.duplicate()))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().any(|&(_, d)| d), "some duplicates at 50%");
        assert!(a.iter().any(|&(j, _)| j > Duration::ZERO));
    }
}
