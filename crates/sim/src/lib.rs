#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
//! A deterministic discrete-event network simulator.
//!
//! This is the substrate every packet-level experiment in the paper runs on
//! (§4.3): thousands of endsystems exchanging millisecond-granularity
//! messages over a measured router topology for weeks of simulated time.
//!
//! Design (see DESIGN.md §3):
//!
//! * **Single-threaded and deterministic.** Events are ordered by
//!   `(time, sequence number)`; reruns with the same seed reproduce byte-
//!   identical results. Protocol layers are state machines driven by the
//!   event loop, not threads.
//! * **Inversion of control stays with the caller.** The engine hands out
//!   events ([`Engine::next_event_before`]); the application dispatches them to its
//!   protocol stacks and calls back into [`Engine::send`] /
//!   [`Engine::set_timer`]. This keeps the engine free of trait gymnastics
//!   and lets layered protocols (Pastry under Seaweed) share one node state.
//! * **Bandwidth accounting built in.** Every message carries a byte size
//!   and a [`TrafficClass`]; the engine meters per-node per-hour tx/rx by
//!   class, streaming samples into the [`bandwidth`] recorder so month-long
//!   20k-node runs stay in memory budget.
//! * **Topology-derived latency.** One-way delays come from a [`topology`]
//!   model: a synthetic world-wide corporate WAN (298 routers, as in the
//!   paper's CorpNet) or a trivial uniform-latency fabric for unit tests.
//! * **Deterministic fault injection.** An optional, seeded [`FaultPlan`]
//!   adds structural partitions, link-degradation windows, crash-amnesia,
//!   correlated outages, duplication and bounded reordering — consulted on
//!   every send and node transition, reproducible bit-for-bit ([`faults`]).

pub mod bandwidth;
pub mod engine;
pub mod faults;
pub mod metrics;
pub mod topology;
pub mod trace;

pub use bandwidth::{BandwidthRecorder, BandwidthReport, DropStats, TrafficClass};
pub use engine::{
    payload_fallback_clones, Engine, Event, NodeIdx, Payload, SchedulerKind, SimConfig, TimerHandle,
};
pub use faults::{CrashSpec, FaultPlan, LinkFaultSpec, OutageSpec, PartitionSpec};
pub use metrics::{Histogram, MetricsRegistry};
pub use topology::{CorpNetTopology, Topology, UniformTopology};
pub use trace::{DropCause, TraceConfig, TraceEvent, TraceRecord, Tracer};
