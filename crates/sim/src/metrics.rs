//! Typed metrics registry.
//!
//! A uniform home for the counters that previously lived ad hoc on
//! [`crate::DropStats`], the engine and the application stats structs:
//! monotone **counters**, point-in-time **gauges** and log-bucketed
//! duration **histograms**, keyed by `&'static str` names. Everything is
//! stored in `BTreeMap`s so iteration — and therefore [`MetricsRegistry::render`]
//! output — is deterministic, a hard requirement for byte-stable run
//! summaries.
//!
//! Naming convention: dot-separated lowercase paths, `<layer>.<what>`
//! (`sim.messages_sent`, `sim.drops.partition`, `app.dissem_reissues`,
//! `app.query.first_result_latency`).

use std::collections::BTreeMap;
use std::fmt::Write;

use seaweed_types::{Duration, LogBuckets};

use crate::bandwidth::DropStats;

/// Display names for [`crate::TrafficClass`] values, indexed by class.
pub const CLASS_NAMES: [&str; crate::bandwidth::NUM_CLASSES] = ["overlay", "maintenance", "query"];

/// A duration histogram over [`LogBuckets`].
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: LogBuckets,
    counts: Vec<u64>,
    count: u64,
    sum_us: u64,
}

impl Histogram {
    #[must_use]
    pub fn new(buckets: LogBuckets) -> Self {
        Histogram {
            buckets,
            counts: vec![0; buckets.len()],
            count: 0,
            sum_us: 0,
        }
    }

    pub fn observe(&mut self, d: Duration) {
        self.counts[self.buckets.index(d)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(d.as_micros());
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observed durations (saturating).
    #[must_use]
    pub fn sum(&self) -> Duration {
        Duration::from_micros(self.sum_us)
    }

    /// Mean observation, zero when empty.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.sum_us / self.count)
    }

    /// Approximate quantile (`0.0..=1.0`): the midpoint of the bucket
    /// containing the q-th observation. Zero when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.buckets.midpoint(i);
            }
        }
        self.buckets.midpoint(self.buckets.len() - 1)
    }

    /// Per-bucket counts, indexed like the underlying [`LogBuckets`].
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The bucketing scheme.
    #[must_use]
    pub fn buckets(&self) -> &LogBuckets {
        &self.buckets
    }
}

/// Registry of named counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn inc(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Sets counter `name` to an absolute value (for counters maintained
    /// elsewhere and absorbed into the registry at summary time).
    pub fn set_counter(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    /// Current value of counter `name` (zero if never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Records `d` into histogram `name`, created with the standard
    /// 1 s – 14 d bucketing on first use. For a custom scheme, create the
    /// histogram first with [`MetricsRegistry::observe_with`].
    pub fn observe(&mut self, name: &'static str, d: Duration) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(LogBuckets::standard()))
            .observe(d);
    }

    /// Records `d` into histogram `name`, created with `buckets` if absent
    /// (an existing histogram keeps its original scheme).
    pub fn observe_with(&mut self, name: &'static str, buckets: LogBuckets, d: Duration) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(buckets))
            .observe(d);
    }

    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// Absorbs another registry: counters add, gauges and histograms of
    /// the same name are replaced.
    pub fn merge(&mut self, other: MetricsRegistry) {
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
    }

    /// Absorbs the per-cause drop ledger under `sim.drops.*` /
    /// `sim.messages_duplicated`.
    pub fn record_drop_stats(&mut self, d: &DropStats) {
        self.set_counter("sim.drops.random_loss", d.random_loss);
        self.set_counter("sim.drops.partition", d.partition);
        self.set_counter("sim.drops.dest_down", d.dest_down);
        self.set_counter("sim.drops.link_fault", d.link_fault);
        self.set_counter("sim.messages_duplicated", d.duplicated);
        self.set_counter("sim.drops.class.overlay", d.by_class[0]);
        self.set_counter("sim.drops.class.maintenance", d.by_class[1]);
        self.set_counter("sim.drops.class.query", d.by_class[2]);
    }

    /// Deterministic plain-text summary: one line per metric, sorted by
    /// kind then name. Suitable for run summaries and byte-for-byte
    /// comparison across reruns of the same seed.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge {name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram {name} count={} mean_us={} p50_us={} p95_us={} p99_us={}",
                h.count(),
                h.mean().as_micros(),
                h.quantile(0.50).as_micros(),
                h.quantile(0.95).as_micros(),
                h.quantile(0.99).as_micros(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.inc("a.x", 2);
        m.inc("a.x", 3);
        m.set_counter("a.y", 7);
        m.set_gauge("g.z", 1.5);
        assert_eq!(m.counter("a.x"), 5);
        assert_eq!(m.counter("a.y"), 7);
        assert_eq!(m.counter("a.missing"), 0);
        assert_eq!(m.gauge("g.z"), Some(1.5));
    }

    #[test]
    fn histogram_quantiles_hit_bucket_midpoints() {
        let b = LogBuckets::new(Duration::SECOND, Duration::from_secs(1024), 10);
        let mut h = Histogram::new(b);
        for s in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 512] {
            h.observe(Duration::from_secs(s));
        }
        assert_eq!(h.count(), 10);
        assert!(!h.is_empty());
        // Each observation sits exactly on a bucket lower edge; the median
        // is in the bucket holding 16 s.
        let med = h.quantile(0.5);
        assert_eq!(b.index(med), b.index(Duration::from_secs(16)));
        assert!(h.quantile(0.99) >= h.quantile(0.5));
        assert_eq!(h.mean(), Duration::from_micros(1_023_000_000 / 10));
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let mut m = MetricsRegistry::new();
        m.inc("b.second", 1);
        m.inc("a.first", 2);
        m.set_gauge("c.g", 0.25);
        m.observe("d.h", Duration::from_secs(5));
        let r1 = m.render();
        let r2 = m.render();
        assert_eq!(r1, r2);
        let lines: Vec<&str> = r1.lines().collect();
        assert_eq!(lines[0], "counter a.first 2");
        assert_eq!(lines[1], "counter b.second 1");
        assert_eq!(lines[2], "gauge c.g 0.25");
        assert!(lines[3].starts_with("histogram d.h count=1"));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = MetricsRegistry::new();
        a.inc("x", 1);
        let mut b = MetricsRegistry::new();
        b.inc("x", 2);
        b.set_gauge("g", 3.0);
        a.merge(b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.gauge("g"), Some(3.0));
    }

    #[test]
    fn drop_stats_absorbed() {
        let mut m = MetricsRegistry::new();
        m.record_drop_stats(&DropStats {
            random_loss: 1,
            partition: 2,
            dest_down: 3,
            link_fault: 4,
            duplicated: 5,
            by_class: [6, 7, 8],
        });
        assert_eq!(m.counter("sim.drops.random_loss"), 1);
        assert_eq!(m.counter("sim.drops.class.query"), 8);
        assert_eq!(m.counter("sim.messages_duplicated"), 5);
    }
}
