//! Network topology models providing one-way message latencies.
//!
//! The paper's packet-level simulations use the *CorpNet topology*: 298
//! routers measured from the world-wide Microsoft corporate network, with
//! per-link minimum RTTs; each endsystem attaches to a uniformly random
//! router over a 1 ms LAN link. The measured topology is proprietary, so
//! [`CorpNetTopology`] synthesizes a three-tier corporate WAN of the same
//! size and flavour (DESIGN.md "Substitutions"): a full-mesh-ish
//! backbone of core routers spanning continents, regional aggregation
//! routers, and branch routers, with RTTs drawn from ranges typical of each
//! tier. All-pairs router RTTs are precomputed with a bucket-queue (Dial)
//! Dijkstra run only from core/regional routers — branch rows follow from
//! their single uplink — so latency lookup during simulation is O(1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seaweed_types::Duration;

use crate::engine::NodeIdx;

/// Provides one-way network delay between endsystems.
pub trait Topology {
    /// One-way latency from endsystem `a` to endsystem `b`.
    fn one_way(&self, a: NodeIdx, b: NodeIdx) -> Duration;

    /// Number of endsystems the topology was built for.
    fn num_endsystems(&self) -> usize;

    /// Coarse network zone an endsystem belongs to, used by the fault
    /// layer to scope link-degradation windows (e.g. "traffic between
    /// router 3 and router 17 is degraded"). Topologies without internal
    /// structure put every endsystem in zone 0.
    fn zone_of(&self, _node: NodeIdx) -> u32 {
        0
    }
}

/// Trivial fabric: every pair of distinct endsystems is `latency` apart.
/// Used by unit tests and by the availability-only simulator where network
/// latency is irrelevant.
#[derive(Debug, Clone)]
pub struct UniformTopology {
    n: usize,
    latency: Duration,
}

impl UniformTopology {
    #[must_use]
    pub fn new(n: usize, latency: Duration) -> Self {
        UniformTopology { n, latency }
    }
}

impl Topology for UniformTopology {
    fn one_way(&self, a: NodeIdx, b: NodeIdx) -> Duration {
        if a == b {
            Duration::ZERO
        } else {
            self.latency
        }
    }

    fn num_endsystems(&self) -> usize {
        self.n
    }
}

/// Synthetic world-wide corporate WAN in the mould of the paper's CorpNet
/// topology: `num_routers` routers in a three-tier hierarchy, all-pairs
/// shortest-path RTTs, endsystems attached to random routers by 1 ms LAN
/// links.
#[derive(Debug)]
pub struct CorpNetTopology {
    /// Half of the router-to-router RTT (i.e. one-way), in microseconds,
    /// as a flattened `num_routers × num_routers` matrix.
    one_way_us: Vec<u32>,
    num_routers: usize,
    /// Router each endsystem attaches to.
    attach: Vec<u32>,
    /// One-way LAN delay between an endsystem and its router.
    lan: Duration,
    /// Tier boundaries: routers `[0, n_core)` are core,
    /// `[n_core, n_core + n_regional)` regional, the rest branch.
    n_core: usize,
    n_regional: usize,
    /// For each router, the single regional router it is homed to
    /// (branch routers only; core and regional entries hold `u32::MAX`).
    uplink: Vec<u32>,
}

/// Default router count, matching the paper's CorpNet measurement.
pub const CORPNET_ROUTERS: usize = 298;

impl CorpNetTopology {
    /// Builds the synthetic CorpNet with the paper's parameters: 298
    /// routers, 1 ms LAN links, endsystems attached uniformly at random.
    #[must_use]
    pub fn new(num_endsystems: usize, seed: u64) -> Self {
        Self::with_params(num_endsystems, CORPNET_ROUTERS, Duration::MILLISECOND, seed)
    }

    /// Fully parameterized constructor.
    ///
    /// The router graph: ~5% core routers (intercontinental backbone ring +
    /// chords, 20–120 ms RTT links), ~25% regional routers (each homed to
    /// two cores, 2–20 ms), the rest branch routers (homed to one regional,
    /// 0.5–4 ms). This yields the multi-modal RTT distribution of a real
    /// corporate WAN: sub-ms within a site, a few ms within a region,
    /// 100 ms+ across continents.
    #[must_use]
    pub fn with_params(
        num_endsystems: usize,
        num_routers: usize,
        lan: Duration,
        seed: u64,
    ) -> Self {
        assert!(num_routers >= 3, "need at least 3 routers");
        let mut rng = StdRng::seed_from_u64(seed ^ TOPOLOGY_STREAM);
        let (adj, uplink, n_core, n_regional) = build_router_graph(num_routers, &mut rng);

        // All-pairs shortest-path RTT: bucket-queue Dijkstra from the
        // core/regional routers only; branch rows are derived from their
        // single uplink.
        let rtt = all_pairs_shortest(&adj, &uplink);
        let one_way_us = rtt.iter().map(|&r| r / 2).collect();

        let attach = (0..num_endsystems)
            .map(|_| rng.gen_range(0..num_routers) as u32)
            .collect();

        CorpNetTopology {
            one_way_us,
            num_routers,
            attach,
            lan,
            n_core,
            n_regional,
            uplink,
        }
    }

    /// Number of core (backbone) routers; indices `[0, n_core)`.
    #[must_use]
    pub fn num_core(&self) -> usize {
        self.n_core
    }

    /// Number of regional routers; indices `[n_core, n_core + n_regional)`.
    #[must_use]
    pub fn num_regional(&self) -> usize {
        self.n_regional
    }

    /// Index range of branch routers (single-homed leaves of the router
    /// hierarchy).
    #[must_use]
    pub fn branch_routers(&self) -> std::ops::Range<usize> {
        self.n_core + self.n_regional..self.num_routers
    }

    /// The regional router a branch router is homed to, or `None` for
    /// core/regional routers.
    #[must_use]
    pub fn uplink_of(&self, router: usize) -> Option<usize> {
        (self.uplink[router] != u32::MAX).then(|| self.uplink[router] as usize)
    }

    /// Endsystems isolated by cutting `router`'s uplinks: everything
    /// attached to `router` itself plus — when `router` is regional — the
    /// endsystems of every branch router homed solely to it. Cutting a
    /// core router is not modelled (the backbone ring keeps cores
    /// reachable), so a core cut isolates only its directly attached
    /// endsystems.
    #[must_use]
    pub fn subtree_endsystems(&self, router: usize) -> Vec<u32> {
        let in_subtree = |r: usize| r == router || self.uplink.get(r) == Some(&(router as u32));
        (0..self.attach.len() as u32)
            .filter(|&e| in_subtree(self.attach[e as usize] as usize))
            .collect()
    }

    /// One-way latency between two routers.
    #[must_use]
    pub fn router_one_way(&self, a: usize, b: usize) -> Duration {
        Duration::from_micros(u64::from(self.one_way_us[a * self.num_routers + b]))
    }

    /// The router an endsystem attaches to.
    #[must_use]
    pub fn router_of(&self, node: NodeIdx) -> usize {
        self.attach[node.0 as usize] as usize
    }

    #[must_use]
    pub fn num_routers(&self) -> usize {
        self.num_routers
    }
}

/// Stream-separation constant so the topology RNG never shares a stream
/// with other components seeded from the same experiment seed.
const TOPOLOGY_STREAM: u64 = 0x5eae_edc0_99e7;

/// Router graph as drawn by [`build_router_graph`]: adjacency list of
/// `(peer, rtt_us)` per router, branch-uplink vector (`u32::MAX` for
/// core/regional routers), and the core/regional tier sizes.
#[doc(hidden)]
pub type RouterGraph = (Vec<Vec<(u32, u32)>>, Vec<u32>, usize, usize);

/// Draws the three-tier router graph. Returns the adjacency list of
/// `(peer, rtt_us)` per router, the branch-uplink vector (`u32::MAX` for
/// core/regional routers), and the core/regional tier sizes.
///
/// The RNG draw order here is load-bearing: it is part of the
/// experiment-seed contract, so links must keep being drawn in exactly
/// this sequence.
///
/// Public but hidden: exposed (together with both all-pairs
/// implementations) so `seaweed-bench` can compare the bucket-queue fast
/// path against the binary-heap reference on the real graph shape.
#[doc(hidden)]
pub fn build_router_graph(num_routers: usize, rng: &mut StdRng) -> RouterGraph {
    let n_core = (num_routers / 20).max(3);
    let n_regional = (num_routers / 4).max(n_core);

    // Adjacency list of (peer, rtt_us).
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); num_routers];
    let link = |adj: &mut Vec<Vec<(u32, u32)>>, a: usize, b: usize, rtt_us: u32| {
        adj[a].push((b as u32, rtt_us));
        adj[b].push((a as u32, rtt_us));
    };

    // Backbone ring over core routers plus random chords.
    for i in 0..n_core {
        let j = (i + 1) % n_core;
        let rtt = rng.gen_range(20_000..=120_000);
        link(&mut adj, i, j, rtt);
    }
    for _ in 0..n_core {
        let a = rng.gen_range(0..n_core);
        let b = rng.gen_range(0..n_core);
        if a != b {
            link(&mut adj, a, b, rng.gen_range(20_000..=120_000));
        }
    }
    // Regional routers dual-homed to cores.
    for r in n_core..n_core + n_regional {
        let c1 = rng.gen_range(0..n_core);
        let mut c2 = rng.gen_range(0..n_core);
        if c2 == c1 {
            c2 = (c1 + 1) % n_core;
        }
        link(&mut adj, r, c1, rng.gen_range(2_000..=20_000));
        link(&mut adj, r, c2, rng.gen_range(2_000..=20_000));
    }
    // Branch routers single-homed to a regional. The homing choice is
    // recorded so the fault layer can derive partition membership
    // (cutting a regional router isolates its whole branch subtree).
    let mut uplink = vec![u32::MAX; num_routers];
    for (b_r, up) in uplink.iter_mut().enumerate().skip(n_core + n_regional) {
        let reg = n_core + rng.gen_range(0..n_regional);
        link(&mut adj, b_r, reg, rng.gen_range(500..=4_000));
        *up = reg as u32;
    }
    (adj, uplink, n_core, n_regional)
}

impl Topology for CorpNetTopology {
    fn one_way(&self, a: NodeIdx, b: NodeIdx) -> Duration {
        if a == b {
            return Duration::ZERO;
        }
        let ra = self.attach[a.0 as usize] as usize;
        let rb = self.attach[b.0 as usize] as usize;
        // endsystem -> router LAN hop, router path, router -> endsystem.
        self.lan + self.router_one_way(ra, rb) + self.lan
    }

    fn num_endsystems(&self) -> usize {
        self.attach.len()
    }

    fn zone_of(&self, node: NodeIdx) -> u32 {
        self.attach[node.0 as usize]
    }
}

/// Sentinel RTT for unreachable pairs (should not happen in our connected
/// construction).
const UNREACHABLE_US: u32 = u32::MAX / 4;

/// All-pairs shortest paths over the router graph; returns the flattened
/// RTT matrix in microseconds. Unreachable pairs get [`UNREACHABLE_US`].
///
/// Two structural optimizations over textbook repeated binary-heap
/// Dijkstra, both exact (the matrix is byte-identical to the reference
/// implementation, see `bucket_dijkstra_matches_binary_heap`):
///
/// * **Dial's bucket queue.** Edge weights span a narrow range (0.5–120 ms
///   in microseconds), so a circular array of buckets of width
///   `min edge weight` replaces the heap. Any relaxation adds at least one
///   bucket width, so the current bucket never receives new entries and
///   pop order within it is irrelevant; pushes and pops are O(1) instead
///   of O(log n).
/// * **Hierarchical source reduction.** Branch routers are single-homed
///   leaves (`uplink[b] != u32::MAX`, degree 1), so every path from a
///   branch goes through its uplink: `dist(b, j) = w_uplink +
///   dist(uplink, j)` for `j != b`. SSSP therefore runs only from
///   core/regional routers (~30% of CorpNet) and branch rows are filled
///   by one vector addition each.
#[doc(hidden)]
pub fn all_pairs_shortest(adj: &[Vec<(u32, u32)>], uplink: &[u32]) -> Vec<u32> {
    let n = adj.len();
    let mut out = vec![UNREACHABLE_US; n * n];
    let weights = adj.iter().flatten().map(|&(_, w)| w);
    let width = weights.clone().min().unwrap_or(1).max(1);
    let max_w = weights.max().unwrap_or(1);
    // Tentative distances live within `max_w` of the current bucket, so
    // `max_w / width + 2` circular buckets can never alias.
    let nb = (max_w / width + 2) as usize;
    let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); nb];
    let mut dist = vec![u32::MAX; n];

    for src in 0..n {
        if uplink[src] != u32::MAX {
            continue; // branch row: derived from its uplink below
        }
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[src] = 0;
        buckets.iter_mut().for_each(Vec::clear);
        buckets[0].push((0, src as u32));
        let mut queued = 1usize;
        let mut tick = 0u64;
        while queued > 0 {
            let bi = (tick % nb as u64) as usize;
            while let Some((d, u)) = buckets[bi].pop() {
                queued -= 1;
                if d > dist[u as usize] {
                    continue; // stale entry; lazy deletion
                }
                for &(v, w) in &adj[u as usize] {
                    let nd = d.saturating_add(w);
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        buckets[(u64::from(nd / width) % nb as u64) as usize].push((nd, v));
                        queued += 1;
                    }
                }
            }
            tick += 1;
        }
        for (j, &d) in dist.iter().enumerate() {
            out[src * n + j] = if d == u32::MAX { UNREACHABLE_US } else { d };
        }
    }

    // Branch rows: prepend the uplink edge to the uplink's row.
    for b in 0..n {
        let up = uplink[b];
        if up == u32::MAX {
            continue;
        }
        debug_assert_eq!(adj[b].len(), 1, "branch router {b} must be single-homed");
        let w = adj[b]
            .iter()
            .find(|&&(v, _)| v == up)
            .map(|&(_, w)| w)
            .expect("branch router is linked to its uplink");
        for j in 0..n {
            out[b * n + j] = if j == b {
                0
            } else {
                match out[up as usize * n + j] {
                    UNREACHABLE_US => UNREACHABLE_US,
                    d => w + d,
                }
            };
        }
    }
    out
}

/// Textbook repeated binary-heap Dijkstra from every source — the
/// implementation the bucket-queue version replaced, kept as the
/// equivalence oracle for tests and as the benchmark baseline.
#[doc(hidden)]
#[must_use]
pub fn all_pairs_shortest_reference(adj: &[Vec<(u32, u32)>]) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = adj.len();
    let mut out = vec![UNREACHABLE_US; n * n];
    let mut dist = vec![u32::MAX; n];
    let mut heap = BinaryHeap::new();
    for src in 0..n {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[src] = 0;
        heap.clear();
        heap.push(Reverse((0u32, src as u32)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u as usize] {
                continue;
            }
            for &(v, w) in &adj[u as usize] {
                let nd = d.saturating_add(w);
                if nd < dist[v as usize] {
                    dist[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        for (j, &d) in dist.iter().enumerate() {
            out[src * n + j] = if d == u32::MAX { UNREACHABLE_US } else { d };
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The bucket-queue + branch-row-derivation fast path must reproduce
    /// the reference matrix bit-for-bit: one_way latencies feed directly
    /// into event timestamps, so "close" is not good enough.
    #[test]
    fn bucket_dijkstra_matches_binary_heap() {
        for (routers, seed) in [(10, 1u64), (40, 7), (100, 99), (CORPNET_ROUTERS, 42)] {
            let mut rng = StdRng::seed_from_u64(seed ^ TOPOLOGY_STREAM);
            let (adj, uplink, _, _) = build_router_graph(routers, &mut rng);
            assert_eq!(
                all_pairs_shortest(&adj, &uplink),
                all_pairs_shortest_reference(&adj),
                "matrix mismatch for {routers} routers, seed {seed}"
            );
        }
    }

    #[test]
    fn uniform_latency() {
        let t = UniformTopology::new(10, Duration::from_millis(5));
        assert_eq!(t.one_way(NodeIdx(0), NodeIdx(1)), Duration::from_millis(5));
        assert_eq!(t.one_way(NodeIdx(3), NodeIdx(3)), Duration::ZERO);
        assert_eq!(t.num_endsystems(), 10);
    }

    #[test]
    fn corpnet_is_symmetric_and_connected() {
        let t = CorpNetTopology::with_params(100, 50, Duration::MILLISECOND, 7);
        for a in 0..50 {
            for b in 0..50 {
                let ab = t.router_one_way(a, b);
                let ba = t.router_one_way(b, a);
                assert_eq!(ab, ba, "asymmetric {a}->{b}");
                if a != b {
                    assert!(ab > Duration::ZERO);
                    assert!(ab < Duration::from_secs(2), "disconnected? {a}->{b} = {ab}");
                }
            }
        }
    }

    #[test]
    fn corpnet_triangle_inequality() {
        let t = CorpNetTopology::with_params(10, 40, Duration::MILLISECOND, 3);
        for a in 0..40 {
            for b in 0..40 {
                for c in [0usize, 7, 23] {
                    let direct = t.router_one_way(a, b).as_micros();
                    let via =
                        t.router_one_way(a, c).as_micros() + t.router_one_way(c, b).as_micros();
                    // One-way values are RTT/2 with floor division, which
                    // can shave up to 1 us off each leg.
                    assert!(
                        direct <= via + 2,
                        "shortest path violated: {a}->{b} via {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn endsystem_latency_includes_lan_hops() {
        let t = CorpNetTopology::with_params(20, 10, Duration::MILLISECOND, 1);
        let a = NodeIdx(0);
        let b = NodeIdx(1);
        let ra = t.router_of(a);
        let rb = t.router_of(b);
        let expect = Duration::MILLISECOND + t.router_one_way(ra, rb) + Duration::MILLISECOND;
        assert_eq!(t.one_way(a, b), expect);
        // Same endsystem: zero.
        assert_eq!(t.one_way(a, a), Duration::ZERO);
        // Different endsystems on (possibly) the same router: >= 2 ms LAN.
        assert!(t.one_way(a, b) >= Duration::from_millis(2));
    }

    #[test]
    fn deterministic_for_same_seed() {
        let t1 = CorpNetTopology::with_params(50, 30, Duration::MILLISECOND, 99);
        let t2 = CorpNetTopology::with_params(50, 30, Duration::MILLISECOND, 99);
        for a in 0..50u32 {
            let b = (a * 7 + 3) % 50;
            assert_eq!(
                t1.one_way(NodeIdx(a), NodeIdx(b)),
                t2.one_way(NodeIdx(a), NodeIdx(b))
            );
        }
    }

    #[test]
    fn subtree_endsystems_follow_the_router_hierarchy() {
        let t = CorpNetTopology::with_params(200, 40, Duration::MILLISECOND, 11);
        assert!(t.num_core() >= 3);
        assert!(!t.branch_routers().is_empty());
        // Every endsystem's zone is its attach router.
        for e in 0..200u32 {
            assert_eq!(t.zone_of(NodeIdx(e)) as usize, t.router_of(NodeIdx(e)));
        }
        // A branch cut isolates exactly the endsystems attached to it.
        let b = t.branch_routers().start;
        for e in t.subtree_endsystems(b) {
            assert_eq!(t.router_of(NodeIdx(e)), b);
        }
        // A regional cut covers its own endsystems plus those of branches
        // homed to it.
        let reg = t.num_core();
        for e in t.subtree_endsystems(reg) {
            let r = t.router_of(NodeIdx(e));
            assert!(r == reg || t.uplink_of(r) == Some(reg), "endsystem {e}");
        }
        // Branch uplinks land in the regional tier; cores have none.
        for b in t.branch_routers() {
            let up = t.uplink_of(b).expect("branch has an uplink");
            assert!(up >= t.num_core() && up < t.num_core() + t.num_regional());
        }
        assert_eq!(t.uplink_of(0), None);
    }

    #[test]
    fn paper_scale_builds_quickly() {
        // 298 routers as in the paper; should take well under a second.
        let t = CorpNetTopology::new(1000, 42);
        assert_eq!(t.num_routers(), CORPNET_ROUTERS);
        assert_eq!(t.num_endsystems(), 1000);
    }
}
