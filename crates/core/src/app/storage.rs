//! Dual-backend hot-state containers for the protocol layer.
//!
//! Every per-query/per-node table the handlers touch on the hot path
//! lives behind one of the stores below, each with two layouts selected
//! at construction from [`LayoutKind`]:
//!
//! * **`Map`** — the original workspace-wide `BTreeMap` keyed by wide
//!   composite tuples (`(node, query, start, width)` and friends). This
//!   is the retained baseline the layout-equivalence proptest pins the
//!   arena against.
//! * **`Arena`** — state bucketed by dense `u32` node index (a `Vec`
//!   addressed directly) or per-query slab slots, so the common
//!   operations — "this node went down, drop its soft state", "this
//!   query expired, drop everything it owns", point lookups keyed by a
//!   node the caller already holds as a dense index — touch only the
//!   entries involved instead of walking a map of the whole world.
//!
//! Iteration order is part of the protocol's determinism contract, so
//! each store's iterators are arranged to visit entries in *exactly* the
//! order the map backend would: node-major buckets replay the
//! `(node, ...)` lexicographic order, and per-query vertex maps replay
//! `(query, id)` order. The chaos-plan equivalence proptest in
//! `tests/layout_equivalence.rs` holds the two backends to byte-identical
//! event logs and bandwidth reports.

use std::collections::BTreeMap;

use seaweed_overlay::LayoutKind;
use seaweed_types::Id;

use super::{DissemTask, PendingSubmit, QueryHandle, TaskKey, VertexState};

/// Dissemination tasks, keyed `(node, query, range start, range width)`.
#[derive(Debug)]
pub(crate) enum TaskStore {
    Map(BTreeMap<TaskKey, DissemTask>),
    /// One map per endsystem, keyed by the remainder of the task key, so
    /// node-death cleanup drops one bucket instead of filtering the
    /// world.
    Arena {
        per_node: Vec<BTreeMap<(QueryHandle, u128, u128), DissemTask>>,
        len: usize,
    },
}

impl TaskStore {
    pub fn new(layout: LayoutKind, n: usize) -> Self {
        match layout {
            LayoutKind::Map => TaskStore::Map(BTreeMap::new()),
            LayoutKind::Arena => TaskStore::Arena {
                per_node: (0..n).map(|_| BTreeMap::new()).collect(),
                len: 0,
            },
        }
    }

    pub fn len(&self) -> usize {
        match self {
            TaskStore::Map(m) => m.len(),
            TaskStore::Arena { len, .. } => *len,
        }
    }

    pub fn get(&self, key: &TaskKey) -> Option<&DissemTask> {
        match self {
            TaskStore::Map(m) => m.get(key),
            TaskStore::Arena { per_node, .. } => {
                per_node[key.0 as usize].get(&(key.1, key.2, key.3))
            }
        }
    }

    pub fn get_mut(&mut self, key: &TaskKey) -> Option<&mut DissemTask> {
        match self {
            TaskStore::Map(m) => m.get_mut(key),
            TaskStore::Arena { per_node, .. } => {
                per_node[key.0 as usize].get_mut(&(key.1, key.2, key.3))
            }
        }
    }

    pub fn insert(&mut self, key: TaskKey, task: DissemTask) {
        match self {
            TaskStore::Map(m) => {
                m.insert(key, task);
            }
            TaskStore::Arena { per_node, len } => {
                if per_node[key.0 as usize]
                    .insert((key.1, key.2, key.3), task)
                    .is_none()
                {
                    *len += 1;
                }
            }
        }
    }

    /// Drops every task issued at `node` (its volatile state died with
    /// it). O(own entries) under the arena layout.
    pub fn clear_node(&mut self, node: u32) {
        match self {
            TaskStore::Map(m) => m.retain(|&(n, _, _, _), _| n != node),
            TaskStore::Arena { per_node, len } => {
                let bucket = std::mem::take(&mut per_node[node as usize]);
                *len -= bucket.len();
            }
        }
    }

    /// Drops every task belonging to an expired query.
    pub fn clear_query(&mut self, query: QueryHandle) {
        match self {
            TaskStore::Map(m) => m.retain(|&(_, qh, _, _), _| qh != query),
            TaskStore::Arena { per_node, len } => {
                for bucket in per_node {
                    let before = bucket.len();
                    bucket.retain(|&(qh, _, _), _| qh != query);
                    *len -= before - bucket.len();
                }
            }
        }
    }

    /// All task keys in ascending `(node, query, start, width)` order —
    /// identical between layouts.
    pub fn keys(&self) -> Box<dyn Iterator<Item = TaskKey> + '_> {
        match self {
            TaskStore::Map(m) => Box::new(m.keys().copied()),
            TaskStore::Arena { per_node, .. } => {
                Box::new(per_node.iter().enumerate().flat_map(|(n, bucket)| {
                    bucket.keys().map(move |&(q, s, w)| (n as u32, q, s, w))
                }))
            }
        }
    }

    /// Keys of `node`'s tasks for `query` whose task satisfies `pred`,
    /// in ascending key order under both layouts (the heal/report paths
    /// pick the first candidate, so this order is protocol-visible).
    pub fn candidate_keys(
        &self,
        node: u32,
        query: QueryHandle,
        mut pred: impl FnMut(&DissemTask) -> bool,
    ) -> Vec<TaskKey> {
        match self {
            TaskStore::Map(m) => m
                .range((node, query, 0, 0)..=(node, query, u128::MAX, u128::MAX))
                .filter(|(_, t)| pred(t))
                .map(|(&k, _)| k)
                .collect(),
            TaskStore::Arena { per_node, .. } => per_node[node as usize]
                .range((query, 0, 0)..=(query, u128::MAX, u128::MAX))
                .filter(|(_, t)| pred(t))
                .map(|(&(q, s, w), _)| (node, q, s, w))
                .collect(),
        }
    }
}

/// Aggregation-tree vertices, keyed `(query, vertex id)`.
#[derive(Debug)]
pub(crate) enum VertexStore {
    Map(BTreeMap<(QueryHandle, Id), VertexState>),
    /// Per-query id maps resolving into one shared slab of state slots.
    /// Freed slots are wiped (`std::mem::take`) before entering the free
    /// list, so a recycled slot can never leak a dead query's children
    /// or holders into a new handle. Live entries = `slots` minus
    /// `free`, and iteration (query-major, id ascending) replays the
    /// `(query, id)` lexicographic order of the map backend exactly.
    Arena {
        by_id: Vec<BTreeMap<u128, u32>>,
        slots: Vec<VertexState>,
        free: Vec<u32>,
    },
}

impl VertexStore {
    pub fn new(layout: LayoutKind) -> Self {
        match layout {
            LayoutKind::Map => VertexStore::Map(BTreeMap::new()),
            LayoutKind::Arena => VertexStore::Arena {
                by_id: Vec::new(),
                slots: Vec::new(),
                free: Vec::new(),
            },
        }
    }

    pub fn len(&self) -> usize {
        match self {
            VertexStore::Map(m) => m.len(),
            VertexStore::Arena { slots, free, .. } => slots.len() - free.len(),
        }
    }

    pub fn contains_key(&self, key: &(QueryHandle, Id)) -> bool {
        self.get(key).is_some()
    }

    pub fn get(&self, key: &(QueryHandle, Id)) -> Option<&VertexState> {
        match self {
            VertexStore::Map(m) => m.get(key),
            VertexStore::Arena { by_id, slots, .. } => by_id
                .get(key.0 as usize)?
                .get(&key.1 .0)
                .map(|&slot| &slots[slot as usize]),
        }
    }

    pub fn get_mut(&mut self, key: &(QueryHandle, Id)) -> Option<&mut VertexState> {
        match self {
            VertexStore::Map(m) => m.get_mut(key),
            VertexStore::Arena { by_id, slots, .. } => by_id
                .get(key.0 as usize)?
                .get(&key.1 .0)
                .map(|&slot| &mut slots[slot as usize]),
        }
    }

    pub fn insert(&mut self, key: (QueryHandle, Id), state: VertexState) {
        match self {
            VertexStore::Map(m) => {
                m.insert(key, state);
            }
            VertexStore::Arena { by_id, slots, free } => {
                let q = key.0 as usize;
                if by_id.len() <= q {
                    by_id.resize_with(q + 1, BTreeMap::new);
                }
                if let Some(&slot) = by_id[q].get(&key.1 .0) {
                    slots[slot as usize] = state;
                } else {
                    let slot = match free.pop() {
                        Some(slot) => {
                            slots[slot as usize] = state;
                            slot
                        }
                        None => {
                            slots.push(state);
                            (slots.len() - 1) as u32
                        }
                    };
                    by_id[q].insert(key.1 .0, slot);
                }
            }
        }
    }

    pub fn remove(&mut self, key: &(QueryHandle, Id)) -> Option<VertexState> {
        match self {
            VertexStore::Map(m) => m.remove(key),
            VertexStore::Arena { by_id, slots, free } => {
                let slot = by_id.get_mut(key.0 as usize)?.remove(&key.1 .0)?;
                free.push(slot);
                Some(std::mem::take(&mut slots[slot as usize]))
            }
        }
    }

    /// Drops every vertex of an expired query.
    pub fn clear_query(&mut self, query: QueryHandle) {
        match self {
            VertexStore::Map(m) => m.retain(|&(qh, _), _| qh != query),
            VertexStore::Arena { by_id, slots, free } => {
                let Some(bucket) = by_id.get_mut(query as usize) else {
                    return;
                };
                for (_, slot) in std::mem::take(bucket) {
                    slots[slot as usize] = VertexState::default();
                    free.push(slot);
                }
            }
        }
    }

    /// Entries in ascending `(query, vertex id)` order — identical
    /// between layouts.
    pub fn iter(&self) -> Box<dyn Iterator<Item = ((QueryHandle, Id), &VertexState)> + '_> {
        match self {
            VertexStore::Map(m) => Box::new(m.iter().map(|(&k, v)| (k, v))),
            VertexStore::Arena { by_id, slots, .. } => {
                Box::new(by_id.iter().enumerate().flat_map(move |(q, bucket)| {
                    bucket.iter().map(move |(&id, &slot)| {
                        ((q as QueryHandle, Id(id)), &slots[slot as usize])
                    })
                }))
            }
        }
    }

    pub fn keys(&self) -> impl Iterator<Item = (QueryHandle, Id)> + '_ {
        self.iter().map(|(k, _)| k)
    }
}

/// In-flight upward submissions, keyed `(node, query, child key)`.
#[derive(Debug)]
pub(crate) enum SubmitStore {
    Map(BTreeMap<(u32, QueryHandle, u128), PendingSubmit>),
    /// One map per submitting endsystem; node-death cleanup drops one
    /// bucket.
    Arena {
        per_node: Vec<BTreeMap<(QueryHandle, u128), PendingSubmit>>,
        len: usize,
    },
}

impl SubmitStore {
    pub fn new(layout: LayoutKind, n: usize) -> Self {
        match layout {
            LayoutKind::Map => SubmitStore::Map(BTreeMap::new()),
            LayoutKind::Arena => SubmitStore::Arena {
                per_node: (0..n).map(|_| BTreeMap::new()).collect(),
                len: 0,
            },
        }
    }

    pub fn len(&self) -> usize {
        match self {
            SubmitStore::Map(m) => m.len(),
            SubmitStore::Arena { len, .. } => *len,
        }
    }

    pub fn get(&self, key: &(u32, QueryHandle, u128)) -> Option<&PendingSubmit> {
        match self {
            SubmitStore::Map(m) => m.get(key),
            SubmitStore::Arena { per_node, .. } => per_node[key.0 as usize].get(&(key.1, key.2)),
        }
    }

    pub fn get_mut(&mut self, key: &(u32, QueryHandle, u128)) -> Option<&mut PendingSubmit> {
        match self {
            SubmitStore::Map(m) => m.get_mut(key),
            SubmitStore::Arena { per_node, .. } => {
                per_node[key.0 as usize].get_mut(&(key.1, key.2))
            }
        }
    }

    pub fn insert(&mut self, key: (u32, QueryHandle, u128), sub: PendingSubmit) {
        match self {
            SubmitStore::Map(m) => {
                m.insert(key, sub);
            }
            SubmitStore::Arena { per_node, len } => {
                if per_node[key.0 as usize]
                    .insert((key.1, key.2), sub)
                    .is_none()
                {
                    *len += 1;
                }
            }
        }
    }

    pub fn remove(&mut self, key: &(u32, QueryHandle, u128)) -> Option<PendingSubmit> {
        match self {
            SubmitStore::Map(m) => m.remove(key),
            SubmitStore::Arena { per_node, len } => {
                let removed = per_node[key.0 as usize].remove(&(key.1, key.2));
                if removed.is_some() {
                    *len -= 1;
                }
                removed
            }
        }
    }

    pub fn clear_node(&mut self, node: u32) {
        match self {
            SubmitStore::Map(m) => m.retain(|&(n, _, _), _| n != node),
            SubmitStore::Arena { per_node, len } => {
                let bucket = std::mem::take(&mut per_node[node as usize]);
                *len -= bucket.len();
            }
        }
    }

    pub fn clear_query(&mut self, query: QueryHandle) {
        match self {
            SubmitStore::Map(m) => m.retain(|&(_, qh, _), _| qh != query),
            SubmitStore::Arena { per_node, len } => {
                for bucket in per_node {
                    let before = bucket.len();
                    bucket.retain(|&(qh, _), _| qh != query);
                    *len -= before - bucket.len();
                }
            }
        }
    }

    /// All keys in ascending `(node, query, child)` order — identical
    /// between layouts.
    pub fn keys(&self) -> Box<dyn Iterator<Item = (u32, QueryHandle, u128)> + '_> {
        match self {
            SubmitStore::Map(m) => Box::new(m.keys().copied()),
            SubmitStore::Arena { per_node, .. } => Box::new(
                per_node
                    .iter()
                    .enumerate()
                    .flat_map(|(n, bucket)| bucket.keys().map(move |&(q, c)| (n as u32, q, c))),
            ),
        }
    }
}

/// Small `Copy` values keyed `(node, query)` — continuous-query epochs
/// and persisted leaf vertex ids. The arena layout is one lazily
/// allocated dense block per query (a bitset of occupied node slots plus
/// a value array), recycled through a pool when the query expires with
/// its occupancy bits cleared so a reused block starts empty.
#[derive(Debug)]
pub(crate) enum NodeQueryStore<T: Copy + Default> {
    Map(BTreeMap<(u32, QueryHandle), T>),
    Arena(NodeTable<T>),
}

#[derive(Debug)]
pub(crate) struct NodeTable<T> {
    n: usize,
    /// `blocks[query]`, allocated on first insert for that handle.
    blocks: Vec<Option<Block<T>>>,
    /// Recycled blocks with occupancy cleared.
    pool: Vec<Block<T>>,
}

#[derive(Debug)]
struct Block<T> {
    /// Occupancy bitset over dense node indices.
    set: Vec<u64>,
    vals: Vec<T>,
}

impl<T: Copy + Default> NodeQueryStore<T> {
    pub fn new(layout: LayoutKind, n: usize) -> Self {
        match layout {
            LayoutKind::Map => NodeQueryStore::Map(BTreeMap::new()),
            LayoutKind::Arena => NodeQueryStore::Arena(NodeTable {
                n,
                blocks: Vec::new(),
                pool: Vec::new(),
            }),
        }
    }

    pub fn get(&self, node: u32, query: QueryHandle) -> Option<T> {
        match self {
            NodeQueryStore::Map(m) => m.get(&(node, query)).copied(),
            NodeQueryStore::Arena(t) => {
                let block = t.blocks.get(query as usize)?.as_ref()?;
                let (w, b) = (node as usize / 64, node as usize % 64);
                (block.set[w] & (1u64 << b) != 0).then(|| block.vals[node as usize])
            }
        }
    }

    pub fn insert(&mut self, node: u32, query: QueryHandle, val: T) {
        match self {
            NodeQueryStore::Map(m) => {
                m.insert((node, query), val);
            }
            NodeQueryStore::Arena(t) => {
                let NodeTable { n, blocks, pool } = t;
                let q = query as usize;
                if blocks.len() <= q {
                    blocks.resize_with(q + 1, || None);
                }
                let block = blocks[q].get_or_insert_with(|| {
                    pool.pop().unwrap_or_else(|| Block {
                        set: vec![0; n.div_ceil(64)],
                        vals: vec![T::default(); *n],
                    })
                });
                let (w, b) = (node as usize / 64, node as usize % 64);
                block.set[w] |= 1u64 << b;
                block.vals[node as usize] = val;
            }
        }
    }

    /// Drops `node`'s entry for every query (crash-amnesia wipe).
    pub fn clear_node(&mut self, node: u32) {
        match self {
            NodeQueryStore::Map(m) => m.retain(|&(n, _), _| n != node),
            NodeQueryStore::Arena(t) => {
                let (w, b) = (node as usize / 64, node as usize % 64);
                for block in t.blocks.iter_mut().flatten() {
                    block.set[w] &= !(1u64 << b);
                }
            }
        }
    }

    /// Returns an expired query's block to the pool with its occupancy
    /// cleared.
    pub fn clear_query(&mut self, query: QueryHandle) {
        match self {
            NodeQueryStore::Map(m) => m.retain(|&(_, qh), _| qh != query),
            NodeQueryStore::Arena(t) => {
                let Some(mut block) = t.blocks.get_mut(query as usize).and_then(Option::take)
                else {
                    return;
                };
                block.set.fill(0);
                t.pool.push(block);
            }
        }
    }

    /// All occupied keys in ascending `(node, query)` order — identical
    /// between layouts. Oracle-only; the protocol never iterates these.
    pub fn keys(&self) -> Box<dyn Iterator<Item = (u32, QueryHandle)> + '_> {
        match self {
            NodeQueryStore::Map(m) => Box::new(m.keys().copied()),
            NodeQueryStore::Arena(t) => {
                let mut keys: Vec<(u32, QueryHandle)> = Vec::new();
                for (q, block) in t.blocks.iter().enumerate() {
                    let Some(block) = block else { continue };
                    for (w, &word) in block.set.iter().enumerate() {
                        let mut cur = word;
                        while cur != 0 {
                            let node = (w * 64 + cur.trailing_zeros() as usize) as u32;
                            keys.push((node, q as QueryHandle));
                            cur &= cur - 1;
                        }
                    }
                }
                keys.sort_unstable();
                Box::new(keys.into_iter())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaweed_store::{AggFunc, Aggregate};

    #[test]
    fn vertex_slab_recycles_without_leaking() {
        let mut vs = VertexStore::new(LayoutKind::Arena);
        let mut st = VertexState::default();
        st.children
            .insert(Id(7), (3, Aggregate::empty(AggFunc::Count)));
        st.out_version = 5;
        vs.insert((0, Id(100)), st);
        assert_eq!(vs.len(), 1);

        vs.clear_query(0);
        assert_eq!(vs.len(), 0);
        assert!(vs.get(&(0, Id(100))).is_none());

        // The recycled slot must come back blank for the new handle.
        vs.insert((1, Id(200)), VertexState::default());
        let fresh = vs.get(&(1, Id(200))).unwrap();
        assert!(fresh.children.is_empty());
        assert_eq!(fresh.out_version, 0);
        assert!(fresh.cached.is_none());
        assert_eq!(vs.keys().collect::<Vec<_>>(), vec![(1, Id(200))]);

        // remove() wipes too.
        assert_eq!(vs.remove(&(1, Id(200))).unwrap().children.len(), 0);
        assert_eq!(vs.len(), 0);
    }

    #[test]
    fn node_table_blocks_recycle_clean() {
        let mut nq: NodeQueryStore<u64> = NodeQueryStore::new(LayoutKind::Arena, 130);
        nq.insert(0, 0, 11);
        nq.insert(129, 0, 22);
        assert_eq!(nq.get(129, 0), Some(22));
        assert_eq!(nq.keys().collect::<Vec<_>>(), vec![(0, 0), (129, 0)]);

        nq.clear_query(0);
        assert_eq!(nq.get(0, 0), None);

        // Query 1 gets the pooled block; nothing from query 0 shows.
        nq.insert(5, 1, 33);
        assert_eq!(nq.get(0, 1), None);
        assert_eq!(nq.get(129, 1), None);
        assert_eq!(nq.get(5, 1), Some(33));

        nq.clear_node(5);
        assert_eq!(nq.get(5, 1), None);
        assert_eq!(nq.keys().count(), 0);
    }

    #[test]
    fn per_node_stores_clear_in_o_own_entries() {
        let mut ss = SubmitStore::new(LayoutKind::Arena, 4);
        ss.insert((1, 0, 9), sub(1));
        ss.insert((1, 2, 9), sub(2));
        ss.insert((3, 0, 9), sub(3));
        assert_eq!(ss.len(), 3);
        assert_eq!(
            ss.keys().collect::<Vec<_>>(),
            vec![(1, 0, 9), (1, 2, 9), (3, 0, 9)]
        );
        ss.clear_node(1);
        assert_eq!(ss.len(), 1);
        ss.clear_query(0);
        assert_eq!(ss.len(), 0);
    }

    fn sub(version: u64) -> PendingSubmit {
        PendingSubmit {
            target_vertex: Id(0),
            version,
            agg: Aggregate::empty(AggFunc::Count),
            attempts: 0,
        }
    }
}
