//! Metadata replication (paper §3.2).
//!
//! Each endsystem pushes its data summary (h bytes) and availability
//! model (a bytes) to its replica set — the k endsystems with the closest
//! ids — on join, periodically, and whenever the replica set changes.
//! When an endsystem fails, the survivors re-replicate both their own
//! metadata (their replica set gained a member) and the metadata the
//! failed node held for currently-down owners (so k copies persist).

use seaweed_overlay::OverlayEvent;
use seaweed_sim::{NodeIdx, TrafficClass};
use seaweed_types::Duration;

use super::{Seaweed, SeaweedEngine, SeaweedMsg, TimerAction};
use crate::provider::DataProvider;
use crate::wire;

impl<P: DataProvider> Seaweed<P> {
    /// Wire size of one metadata push for `owner`: summary + availability
    /// model + one value per registered replicated view.
    pub(crate) fn meta_push_size(&self, owner: NodeIdx) -> u32 {
        wire::meta_push(self.provider.summary_wire_size(owner.idx())) + 48 * self.views.len() as u32
    }

    /// Pushes `owner`'s metadata to every current replica-set member,
    /// refreshing the owner's replicated view values first.
    pub(crate) fn push_metadata(&mut self, eng: &mut SeaweedEngine, owner: NodeIdx) {
        for (v, def) in self.views.iter().enumerate() {
            match self.provider.execute(owner.idx(), &def.bound) {
                Ok(agg) => self.view_values[v][owner.idx()] = Some(agg),
                // Keep the previous value (if any); the next push retries.
                Err(_) => self.stats.exec_failures += 1,
            }
        }
        let size = self.meta_push_size(owner);
        let members = self.overlay.replica_set(owner, self.cfg.k_metadata);
        self.stats.meta_pushes += members.len() as u64;
        self.overlay.multicast_app(
            eng,
            owner,
            &members,
            SeaweedMsg::MetaPush { owner },
            size,
            TrafficClass::Maintenance,
        );
    }

    /// Arms the next randomized periodic push (mean `push_period`).
    pub(crate) fn schedule_meta_push(&mut self, eng: &mut SeaweedEngine, n: NodeIdx) {
        let period = self.cfg.push_period.as_micros();
        let delay = Duration::from_micros(self.rng.gen_range_u64(1, 2 * period));
        self.set_app_timer(eng, n, delay, TimerAction::MetaPush { node: n });
    }

    pub(crate) fn on_meta_push_timer(&mut self, eng: &mut SeaweedEngine, n: NodeIdx) {
        // The engine cancels this timer if `n` goes down, so a firing
        // timer always belongs to the current availability session.
        debug_assert!(eng.is_up(n));
        self.push_metadata(eng, n);
        self.schedule_meta_push(eng, n);
    }

    /// A replica-set member received `owner`'s metadata.
    pub(crate) fn on_meta_push(&mut self, holder: NodeIdx, owner: NodeIdx) {
        if !self.holders[owner.idx()].contains(&holder) {
            self.holders[owner.idx()].push(holder);
            self.held_by[holder.idx()].push(owner);
        }
    }

    /// Does `holder` currently hold `owner`'s metadata?
    #[must_use]
    pub fn holds_metadata(&self, holder: NodeIdx, owner: NodeIdx) -> bool {
        self.holders[owner.idx()].contains(&holder)
    }

    /// A new neighbor joined `node`'s leafset. Two transfers:
    ///
    /// 1. If the joiner entered `node`'s replica set, push `node`'s own
    ///    metadata to it.
    /// 2. The joiner must *acquire* the replicated metadata it is now
    ///    responsible for (Eq. 2's join cost): `node` forwards the copies
    ///    it holds for owners whose replica set now includes the joiner —
    ///    this is what keeps k copies alive for owners that are currently
    ///    down while their neighborhood churns.
    pub(crate) fn on_neighbor_joined(
        &mut self,
        eng: &mut SeaweedEngine,
        node: NodeIdx,
        joined: NodeIdx,
    ) {
        if !self.overlay.is_joined(node) {
            return;
        }
        if self
            .overlay
            .replica_set(node, self.cfg.k_metadata)
            .contains(&joined)
            && !self.holders[node.idx()].contains(&joined)
        {
            let size = self.meta_push_size(node);
            self.stats.meta_pushes += 1;
            self.overlay.send_app(
                eng,
                node,
                joined,
                SeaweedMsg::MetaPush { owner: node },
                size,
                TrafficClass::Maintenance,
            );
        }
        // Hand over held copies the joiner is now a proper holder of.
        let candidates: Vec<NodeIdx> = self.held_by[node.idx()]
            .iter()
            .copied()
            .filter(|&z| z != joined && !self.holders[z.idx()].contains(&joined))
            .collect();
        for z in candidates {
            let z_id = self.overlay.id_of(z);
            if self
                .overlay
                .replica_set_oracle(z_id, self.cfg.k_metadata)
                .contains(&joined)
            {
                let size = self.meta_push_size(z);
                self.stats.meta_pushes += 1;
                self.overlay.send_app(
                    eng,
                    node,
                    joined,
                    SeaweedMsg::MetaPush { owner: z },
                    size,
                    TrafficClass::Maintenance,
                );
            }
        }
    }

    /// `detector` noticed that `failed` is gone. Two repairs:
    ///
    /// 1. `detector`'s own replica set changed — re-push its metadata to
    ///    any member that lacks it.
    /// 2. On the *first* detection of `failed` (its holder lists are
    ///    still intact), re-replicate the metadata `failed` held for
    ///    currently-down owners onto replacement holders, and repair any
    ///    aggregation-tree vertex groups it belonged to.
    pub(crate) fn on_neighbor_failed(
        &mut self,
        eng: &mut SeaweedEngine,
        detector: NodeIdx,
        failed: NodeIdx,
    ) {
        // (1) detector-side re-replication of its own metadata.
        if self.overlay.is_joined(detector) {
            let size = self.meta_push_size(detector);
            let members = self.overlay.replica_set(detector, self.cfg.k_metadata);
            for m in members {
                if !self.holders[detector.idx()].contains(&m) {
                    self.stats.meta_pushes += 1;
                    self.stats.meta_repairs += 1;
                    self.overlay.send_app(
                        eng,
                        detector,
                        m,
                        SeaweedMsg::MetaPush { owner: detector },
                        size,
                        TrafficClass::Maintenance,
                    );
                }
            }
        }

        // (2) first-detection global repair for what `failed` held. An
        // up-but-unreachable node (partition) still *has* its state, so
        // nothing is lost and nothing must be wiped — the detector-side
        // re-push above is the whole repair.
        if eng.is_up(failed) {
            return; // already back (or partitioned); state is intact
        }
        // A crash-with-amnesia pruned the holder lists eagerly and left
        // the owner list in a stash; fold it in so those owners still get
        // their replication factor repaired.
        let mut held: Vec<NodeIdx> = std::mem::take(&mut self.held_by[failed.idx()]);
        held.extend(std::mem::take(&mut self.amnesia_meta[failed.idx()]));
        if !held.is_empty() {
            for owner in held {
                self.holders[owner.idx()].retain(|&h| h != failed);
                if eng.is_up(owner) {
                    // The owner's own periodic push will restore the
                    // count; nothing to transfer now.
                    continue;
                }
                // Owner is down: a surviving holder copies the metadata to
                // the best replacement so k copies persist.
                let Some(&survivor) = self.holders[owner.idx()].iter().find(|&&h| eng.is_up(h))
                else {
                    continue; // all holders gone; coverage lost until owner returns
                };
                let owner_id = self.overlay.id_of(owner);
                let replacement = self
                    .overlay
                    .replica_set_oracle(owner_id, self.cfg.k_metadata)
                    .into_iter()
                    .find(|m| {
                        !self.holders[owner.idx()].contains(m)
                            && eng.is_up(*m)
                            && eng.reachable(survivor, *m)
                    });
                if let Some(m) = replacement {
                    let size = self.meta_push_size(owner);
                    self.stats.meta_pushes += 1;
                    self.stats.meta_repairs += 1;
                    self.overlay.send_app(
                        eng,
                        survivor,
                        m,
                        SeaweedMsg::MetaPush { owner },
                        size,
                        TrafficClass::Maintenance,
                    );
                }
            }
        }

        // Aggregation-tree vertex groups the failed node belonged to.
        self.repair_vertices_of(eng, failed);
        let _: Vec<OverlayEvent<SeaweedMsg>> = Vec::new();
    }
}

/// Tiny extension trait: `rand::Rng::gen_range` with u64 bounds without
/// pulling the trait into every call site.
trait GenRangeU64 {
    fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64;
}

impl GenRangeU64 for rand::rngs::StdRng {
    fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        use rand::Rng;
        self.gen_range(lo..hi)
    }
}
