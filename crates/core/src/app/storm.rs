//! Storm mode: the concurrent multi-query engine.
//!
//! Three mechanisms, all dormant unless [`super::SeaweedConfig::storm`]
//! is set (and behavior-neutral for a single uncontended query even when
//! it is — see DESIGN.md §3.6 for the byte-identity argument):
//!
//! * **Admission control** — a bounded in-flight budget at the injection
//!   point. [`Seaweed::submit_query`] admits immediately while slots are
//!   free and otherwise parks the submission in a deterministic FIFO;
//!   every retirement promotes queued submissions in ticket order.
//! * **Slot recycling** — retired queries release their registry slot
//!   behind a generation bump, so a run can process arbitrarily many
//!   queries through the 64-slot registry while late traffic for dead
//!   queries is rejected at the message boundary (`stale_handle_drops`).
//! * **Fair scan scheduling** — each endsystem charges a local execution
//!   its scan cost (rows touched) and slices contended executions into
//!   preemption quanta, round-robining in deterministic `(quantum
//!   deadline, slot)` order. Queries finishing in the same quantum share
//!   one table pass ([`DataProvider::execute_many`]).

use seaweed_sim::NodeIdx;
use seaweed_store::Query;
use seaweed_types::Duration;

use super::{DataProvider, QueryHandle, Seaweed, SeaweedEngine, TimerAction, SLOT_BITS};

// Compile-time guard: the 64-slot bitmask design requires slots to fit
// a u64 bit index, which SLOT_BITS comfortably exceeds — the runtime
// cap is the registry assert in `alloc_slot`.
const _: () = assert!(SLOT_BITS >= 6);

/// Tuning knobs for storm mode. The defaults bound in-flight queries at
/// the registry limit and slice scans at a granularity that keeps a 10k
/// row endsystem scan to a couple of quanta.
#[derive(Clone, Debug)]
pub struct StormConfig {
    /// In-flight query budget (clamped to the 64-slot registry).
    pub max_in_flight: usize,
    /// Rows of scan progress one quantum buys a query.
    pub quantum_rows: u64,
    /// Wall-clock length of one scheduler quantum.
    pub quantum: Duration,
    /// Most queries one quantum advances at a node (the shared-scan
    /// batch width).
    pub max_batch: usize,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            max_in_flight: 64,
            quantum_rows: 4096,
            quantum: Duration::from_millis(20),
            max_batch: 8,
        }
    }
}

/// Outcome of a [`Seaweed::submit_query`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Submission {
    /// The query entered the in-flight set; the handle is live.
    Admitted(QueryHandle),
    /// The in-flight budget was full; the submission waits in ticket
    /// order. Watch [`Seaweed::drain_admissions`] for the handle.
    Queued(u64),
}

/// A submission parked behind the in-flight budget.
#[derive(Clone, Debug)]
pub(crate) struct QueuedSubmission {
    pub ticket: u64,
    pub origin: NodeIdx,
    /// Canonicalized query text (parse-validated at submission).
    pub sql: String,
    pub ttl: Duration,
    pub schema: seaweed_store::Schema,
}

/// Per-endsystem scan-scheduler state.
#[derive(Clone, Debug, Default)]
pub(crate) struct ScanNode {
    /// Executions queued behind the quantum scheduler.
    pub tasks: Vec<ScanTask>,
    /// Virtual round clock ordering the round-robin.
    pub vclock: u64,
    /// Whether a quantum pump timer is armed.
    pub pump: bool,
}

/// One queued local execution at one endsystem.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ScanTask {
    /// Query slot (not a wire handle: the scheduler is slot-internal).
    pub slot: u32,
    /// Virtual round this task next runs in; with `slot` it forms the
    /// deterministic service order.
    pub deadline: u64,
    /// Scan rows still to be charged before the execution completes.
    pub remaining: u64,
}

impl<P: DataProvider> Seaweed<P> {
    /// The in-flight budget (storm mode; the registry limit otherwise).
    fn storm_budget(&self) -> usize {
        self.cfg
            .storm
            .as_ref()
            .map_or(64, |s| s.max_in_flight.clamp(1, 64))
    }

    /// Queries currently holding a registry slot.
    #[must_use]
    pub fn storm_in_flight(&self) -> usize {
        self.queries.len() - self.free_slots.len()
    }

    /// Submissions parked behind the in-flight budget.
    #[must_use]
    pub fn storm_queue_len(&self) -> usize {
        self.storm_queue.len()
    }

    fn storm_capacity(&self) -> bool {
        self.storm_in_flight() < self.storm_budget()
    }

    /// Submits a one-shot query under admission control. Without storm
    /// mode this is exactly [`Seaweed::inject_query`]. With it, the
    /// query is admitted immediately while the in-flight budget has
    /// room, else parked in the deterministic admission queue; parked
    /// submissions are validated (parsed) eagerly so a malformed query
    /// fails at submission time, not when a slot frees.
    pub fn submit_query(
        &mut self,
        eng: &mut SeaweedEngine,
        origin: NodeIdx,
        sql: &str,
        ttl: Duration,
        schema: &seaweed_store::Schema,
    ) -> Result<Submission, seaweed_store::StoreError> {
        if self.cfg.storm.is_none() {
            return self
                .inject_query(eng, origin, sql, ttl, schema)
                .map(Submission::Admitted);
        }
        if self.storm_capacity() {
            let h = self.inject_query(eng, origin, sql, ttl, schema)?;
            self.stats.storm_admitted += 1;
            return Ok(Submission::Admitted(h));
        }
        let parsed = Query::parse(sql)?;
        if parsed.group_by.is_some() {
            return Err(seaweed_store::StoreError::BadAggregate(
                "GROUP BY is not supported for distributed queries".into(),
            ));
        }
        let ticket = self.storm_seq;
        self.storm_seq += 1;
        self.storm_queue.push_back(QueuedSubmission {
            ticket,
            origin,
            sql: parsed.text,
            ttl,
            schema: schema.clone(),
        });
        self.stats.storm_queued += 1;
        Ok(Submission::Queued(ticket))
    }

    /// Retires a completed query: origin-side teardown plus (storm mode)
    /// slot release and queue admission. Idempotent, and a no-op on a
    /// stale handle — retiring twice or racing the TTL expiry is safe.
    /// Unlike [`Seaweed::cancel_query`] no cancel notice is charged: the
    /// caller asserts the query already ran to completion, so there is
    /// nothing left to stop.
    pub fn retire_query(&mut self, eng: &mut SeaweedEngine, h: QueryHandle) {
        let Some(slot) = self.live_slot(h) else {
            return;
        };
        if !self.queries[slot as usize].active {
            return;
        }
        self.expire_query(eng, slot);
    }

    /// `(ticket, handle)` pairs admitted from the queue since the last
    /// call, in admission order. The storm driver polls this to learn
    /// which parked submissions went live.
    pub fn drain_admissions(&mut self) -> Vec<(u64, QueryHandle)> {
        std::mem::take(&mut self.admitted_log)
    }

    /// Releases a retired query's slot for recycling: generation bump
    /// (invalidating every handle on the wire), global per-node state
    /// purge, armed-action purge, then queue admission. Storm mode only.
    pub(crate) fn release_slot(&mut self, eng: &mut SeaweedEngine, slot: QueryHandle) {
        debug_assert!(self.cfg.storm.is_some());
        debug_assert!(!self.queries[slot as usize].active);
        self.slot_gen[slot as usize] += 1;
        self.query_by_id.remove(&self.queries[slot as usize].id);
        let mask = !(1u64 << slot);
        for w in &mut self.knows_query {
            *w &= mask;
        }
        for w in &mut self.submitted {
            *w &= mask;
        }
        for w in &mut self.exec_pending {
            *w &= mask;
        }
        // Deferred actions for the dead slot are dropped; their engine
        // timers fire as no-ops, exactly like the baseline's post-expiry
        // timers, so the event stream shape is unchanged.
        self.timers.retain(|_, a| a.query_slot() != Some(slot));
        for sn in &mut self.scan {
            sn.tasks.retain(|t| t.slot != slot);
        }
        let pos = self.free_slots.partition_point(|&s| s > slot);
        debug_assert_ne!(self.free_slots.get(pos), Some(&slot), "double release");
        self.free_slots.insert(pos, slot);
        self.try_admit(eng);
    }

    /// Promotes queued submissions while the in-flight budget has room.
    /// An origin that went down (or never joined) while parked drops its
    /// submission — deterministically, in queue order — rather than
    /// injecting from a dead node.
    fn try_admit(&mut self, eng: &mut SeaweedEngine) {
        while self.storm_capacity() {
            let Some(sub) = self.storm_queue.pop_front() else {
                break;
            };
            if !eng.is_up(sub.origin) || !self.overlay.is_joined(sub.origin) {
                self.stats.storm_dropped += 1;
                continue;
            }
            match self.inject_query(eng, sub.origin, &sub.sql, sub.ttl, &sub.schema) {
                Ok(h) => {
                    self.stats.storm_admitted += 1;
                    self.admitted_log.push((sub.ticket, h));
                }
                Err(_) => {
                    // Parse was validated at submission; a bind error at
                    // admission (schema drift) drops the submission.
                    self.stats.storm_dropped += 1;
                }
            }
        }
    }

    // ------------------------------------------- fair scan scheduling

    /// Whether a local one-shot execution at `n` must go through the
    /// scan scheduler instead of executing inline: storm mode is on and
    /// the endsystem is contended (another query's execution is pending
    /// there, or the scan queue is already draining). With a single
    /// query this is always false — the baseline path runs untouched.
    pub(crate) fn scan_contended(&self, n: NodeIdx, slot: QueryHandle) -> bool {
        self.cfg.storm.is_some()
            && (!self.scan[n.idx()].tasks.is_empty()
                || self.exec_pending[n.idx()] & !(1u64 << slot) != 0)
    }

    /// Queues a local execution behind the quantum scheduler, charging
    /// it the provider's scan cost, and arms the pump timer if idle.
    pub(crate) fn enqueue_scan(&mut self, eng: &mut SeaweedEngine, n: NodeIdx, slot: QueryHandle) {
        let Some(storm) = self.cfg.storm.as_ref() else {
            debug_assert!(false, "enqueue_scan without storm mode");
            return;
        };
        let quantum = storm.quantum;
        let cost = self.provider.scan_cost(n.idx()).max(1);
        let sn = &mut self.scan[n.idx()];
        sn.tasks.push(ScanTask {
            slot,
            deadline: sn.vclock,
            remaining: cost,
        });
        if !sn.pump {
            sn.pump = true;
            self.set_quantum_app_timer(eng, n, quantum, TimerAction::ScanQuantum { node: n });
        }
    }

    /// One scheduler quantum at `n`: advance up to `max_batch` queued
    /// executions — picked in `(deadline, slot)` order, so every queued
    /// query is served once per virtual round before any is served twice
    /// — by `quantum_rows` each; executions that finish their scan run
    /// in one shared table pass; re-arm the pump while work remains.
    pub(crate) fn on_scan_quantum(&mut self, eng: &mut SeaweedEngine, n: NodeIdx) {
        let Some(storm) = self.cfg.storm.as_ref() else {
            return;
        };
        let quantum_rows = storm.quantum_rows.max(1);
        let quantum = storm.quantum;
        let max_batch = storm.max_batch.max(1);
        self.scan[n.idx()].pump = false;
        // The engine drops liveness-tied timers of down nodes at fire
        // time and `on_node_down` clears the queue, so a fire on a down
        // or unjoined node is already impossible; the guard is cheap
        // insurance against a stray fire touching dead state.
        if !eng.is_up(n) || !self.overlay.is_joined(n) {
            return;
        }
        let sn = &mut self.scan[n.idx()];
        if sn.tasks.is_empty() {
            return;
        }
        self.stats.scan_quanta += 1;
        sn.tasks.sort_unstable_by_key(|t| (t.deadline, t.slot));
        let round = sn.vclock;
        sn.vclock += 1;
        let width = sn.tasks.len().min(max_batch);
        let mut finished: Vec<u32> = Vec::new();
        for t in &mut sn.tasks[..width] {
            t.remaining = t.remaining.saturating_sub(quantum_rows);
            t.deadline = round + 1;
            if t.remaining == 0 {
                finished.push(t.slot);
            }
        }
        sn.tasks.retain(|t| t.remaining > 0);
        if !finished.is_empty() {
            self.finish_scans(eng, n, &finished);
        }
        // `finish_scans` cascades protocol work that can take the node
        // down or (in principle) queue more work; re-check before
        // re-arming the pump.
        let sn = &mut self.scan[n.idx()];
        if !sn.tasks.is_empty() && !sn.pump && eng.is_up(n) {
            sn.pump = true;
            self.set_quantum_app_timer(eng, n, quantum, TimerAction::ScanQuantum { node: n });
        }
    }

    /// Executes the queries whose scans completed this quantum in one
    /// shared table pass and submits each result through the normal
    /// leaf-submission path.
    fn finish_scans(&mut self, eng: &mut SeaweedEngine, n: NodeIdx, slots: &[u32]) {
        let mut live: Vec<u32> = Vec::new();
        for &s in slots {
            let bit = 1u64 << s;
            // Defensive: release purges queued tasks eagerly, but a
            // query that died or already submitted between queueing and
            // finishing must not execute.
            if !self.queries[s as usize].active || self.exec_pending[n.idx()] & bit == 0 {
                continue;
            }
            self.exec_pending[n.idx()] &= !bit;
            if self.submitted[n.idx()] & bit != 0 {
                continue;
            }
            live.push(s);
        }
        if live.is_empty() {
            return;
        }
        let shared = live.len() > 1;
        let results = {
            let bounds: Vec<&seaweed_store::BoundQuery> = live
                .iter()
                .map(|&s| &self.queries[s as usize].bound)
                .collect();
            self.provider.execute_many(n.idx(), &bounds)
        };
        if shared {
            self.stats.shared_scan_batches += 1;
            self.stats.shared_scan_queries += live.len() as u64;
        }
        for (&slot, result) in live.iter().zip(results) {
            match result {
                Ok(agg) => {
                    if shared {
                        self.timelines[slot as usize].shared_scans += 1;
                    }
                    self.submit_local_result(eng, n, slot, agg);
                }
                Err(_) => {
                    self.stats.exec_failures += 1;
                }
            }
        }
    }

    /// Storm-hygiene checks, run by `ChaosOracle` as invariant (7):
    /// budget respected, free list consistent, every queued scan task
    /// references a live pending execution. Returns human-readable
    /// violations (empty = clean); cheap enough to run per-event at test
    /// scale.
    #[must_use]
    pub fn storm_invariant_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.cfg.storm.is_none() {
            if !self.free_slots.is_empty() || !self.storm_queue.is_empty() {
                out.push("storm machinery engaged without storm mode".into());
            }
            return out;
        }
        if self.storm_in_flight() > self.storm_budget() {
            out.push(format!(
                "in-flight queries {} exceed budget {}",
                self.storm_in_flight(),
                self.storm_budget()
            ));
        }
        let mut seen = vec![false; self.queries.len()];
        for &s in &self.free_slots {
            let Some(q) = self.queries.get(s as usize) else {
                out.push(format!("free slot {s} out of range"));
                continue;
            };
            if seen[s as usize] {
                out.push(format!("slot {s} double-freed"));
            }
            seen[s as usize] = true;
            if q.active {
                out.push(format!("free slot {s} holds an active query"));
            }
        }
        for w in self.free_slots.windows(2) {
            if w[0] <= w[1] {
                out.push("free list not sorted descending".into());
            }
        }
        for (node, sn) in self.scan.iter().enumerate() {
            if !sn.tasks.is_empty() && !sn.pump {
                out.push(format!(
                    "node {node} has queued scan work but no pump timer"
                ));
            }
            for t in &sn.tasks {
                if t.remaining == 0 {
                    out.push(format!(
                        "node {node}: finished task for slot {} still queued",
                        t.slot
                    ));
                }
                if !self.queries[t.slot as usize].active {
                    out.push(format!("node {node}: scan task for dead slot {}", t.slot));
                }
                if self.exec_pending[node] & (1u64 << t.slot) == 0 {
                    out.push(format!(
                        "node {node}: scan task for slot {} without a pending execution",
                        t.slot
                    ));
                }
            }
        }
        out
    }

    /// Panicking wrapper over [`Seaweed::storm_invariant_violations`],
    /// for use inside tests.
    pub fn assert_storm_invariants(&self) {
        let v = self.storm_invariant_violations();
        assert!(
            v.is_empty(),
            "storm invariant violations:\n  {}",
            v.join("\n  ")
        );
    }
}
