//! Result-retransmission backoff (pure computation).
//!
//! Extracted from the submit path so the delay schedule can be tested
//! in isolation: the capped exponential and its jitter draw are the only
//! protocol-visible outputs, and the jitter consumes exactly one RNG
//! draw per call, which the deterministic replay fingerprints depend on.

use rand::Rng;
use seaweed_types::Duration;

/// Delay until retransmission `attempts + 1`: `base << attempts` capped
/// at `cap` (a cap below `base` is treated as `base`, degenerating to a
/// fixed-interval retry), plus up to half a base interval of jitter
/// drawn from `rng` so synchronized submitters do not retry in
/// lockstep.
pub(crate) fn retry_backoff(
    base: Duration,
    cap: Duration,
    attempts: u32,
    rng: &mut impl Rng,
) -> Duration {
    let base = base.as_micros();
    let cap = cap.as_micros().max(base);
    let backed = base.saturating_mul(1u64 << attempts.min(32)).min(cap);
    let jitter = rng.gen_range(0..=base / 2);
    Duration::from_micros(backed + jitter)
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    use super::*;

    const BASE: Duration = Duration(2_000_000); // 2 s in micro-ticks
    const CAP: Duration = Duration(64_000_000); // 64 s

    /// One fixed-seed draw; jitter is bounded by `base / 2`, so the
    /// tests bound-check rather than strip it.
    fn backed(base: Duration, cap: Duration, attempts: u32) -> u64 {
        let mut rng = StdRng::seed_from_u64(0);
        retry_backoff(base, cap, attempts, &mut rng).as_micros()
    }

    #[test]
    fn doubles_then_saturates_at_cap() {
        // 2s, 4s, 8s, ..., then pinned at the 64s cap (+ jitter ≤ 1s).
        for attempts in 0..6u32 {
            let d = backed(BASE, CAP, attempts);
            let exact = BASE.as_micros() << attempts;
            assert!(d >= exact, "attempt {attempts}: {d} < {exact}");
            assert!(d <= exact + BASE.as_micros() / 2);
        }
        for attempts in [5, 6, 20, 32, 33, u32::MAX] {
            let d = backed(BASE, CAP, attempts);
            assert!(d >= CAP.as_micros(), "attempt {attempts} fell below cap");
            assert!(d <= CAP.as_micros() + BASE.as_micros() / 2);
        }
        // The shift is clamped at 32, so huge attempt counts neither
        // overflow nor panic even with a huge cap.
        let huge = backed(BASE, Duration(u64::MAX), u32::MAX);
        assert!(huge >= BASE.as_micros() << 32);
    }

    #[test]
    fn cap_below_base_degenerates_to_fixed_interval() {
        for attempts in [0u32, 1, 7, 31] {
            let d = backed(BASE, Duration(1), attempts);
            assert!(d >= BASE.as_micros());
            assert!(d <= BASE.as_micros() + BASE.as_micros() / 2);
        }
    }

    #[test]
    fn jitter_is_deterministic_across_same_seed_runs() {
        for seed in [0u64, 7, 42, 0xdead_beef] {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            for attempts in 0..40u32 {
                assert_eq!(
                    retry_backoff(BASE, CAP, attempts, &mut a),
                    retry_backoff(BASE, CAP, attempts, &mut b),
                    "seed {seed} attempt {attempts} diverged"
                );
            }
        }
        // Different seeds do produce different jitter somewhere (the
        // jitter range is 1s wide — identical sequences would mean the
        // draw is being ignored).
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let any_differs = (0..40u32).any(|att| {
            retry_backoff(BASE, CAP, att, &mut a) != retry_backoff(BASE, CAP, att, &mut b)
        });
        assert!(any_differs);
    }

    #[test]
    fn zero_retry_config_yields_zero_delay() {
        // base = 0 models "no retransmission interval": the backoff and
        // its jitter both collapse to zero for every attempt count.
        let mut rng = StdRng::seed_from_u64(9);
        for attempts in [0u32, 1, 32, u32::MAX] {
            assert_eq!(
                retry_backoff(Duration(0), Duration(0), attempts, &mut rng),
                Duration(0)
            );
            assert_eq!(
                retry_backoff(Duration(0), CAP, attempts, &mut rng),
                Duration(0)
            );
        }
    }
}
