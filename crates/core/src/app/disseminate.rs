//! Query dissemination and completeness prediction (paper §3.3).
//!
//! The query is routed to the root of its queryId, which broadcasts by
//! divide-and-conquer over namespace ranges: a node receiving a range
//! splits it into 2^b subranges, handles the parts that lie entirely
//! within its own region of responsibility locally (estimating for the
//! unavailable endsystems there from replicated metadata), and routes one
//! message toward the midpoint of every other part. Per-range predictors
//! aggregate back along the reverse edges; silent subranges are reissued
//! after a timeout.

use seaweed_overlay::OverlayEvent;
use seaweed_sim::{NodeIdx, TrafficClass};
use seaweed_types::IdRange;

use super::{
    DissemTask, QueryHandle, QueryKind, RangeResult, Seaweed, SeaweedEngine, SeaweedMsg,
    SubrangeSlot, TaskKey, TimerAction,
};
use crate::predictor::Predictor;
use crate::provider::DataProvider;
use crate::wire;
use seaweed_store::Aggregate;

impl<P: DataProvider> Seaweed<P> {
    /// Origin-side: route the query to the root of its queryId with the
    /// full namespace range.
    pub(crate) fn start_dissemination(
        &mut self,
        eng: &mut SeaweedEngine,
        origin: NodeIdx,
        h: QueryHandle,
    ) {
        self.learn_query(eng, origin, h);
        let q = &self.queries[h as usize];
        let key = q.id;
        let size = wire::disseminate(q.text.len());
        self.stats.disseminate_msgs += 1;
        self.stats.dissem_bytes += u64::from(size);
        self.timelines[h as usize].dissem_msgs += 1;
        let evs = self.overlay.route(
            eng,
            origin,
            key,
            SeaweedMsg::Disseminate {
                query: h,
                range: IdRange::FULL,
                parent: origin,
            },
            size,
            TrafficClass::Query,
        );
        // If the origin is itself the root, the delivery comes back
        // synchronously; feed it through the normal dispatch path.
        self.cascade(eng, evs);
    }

    /// Drains a batch of overlay events produced outside the main
    /// dispatch loop.
    pub(crate) fn cascade(&mut self, eng: &mut SeaweedEngine, evs: Vec<OverlayEvent<SeaweedMsg>>) {
        let mut queue: std::collections::VecDeque<_> = evs.into();
        while let Some(ev) = queue.pop_front() {
            let more = self.on_overlay_event_pub(eng, ev);
            queue.extend(more);
        }
    }

    // Small shim so sibling modules can reuse the private handler.
    pub(crate) fn on_overlay_event_pub(
        &mut self,
        eng: &mut SeaweedEngine,
        ev: OverlayEvent<SeaweedMsg>,
    ) -> Vec<OverlayEvent<SeaweedMsg>> {
        self.on_overlay_event(eng, ev)
    }

    /// A dissemination message (range responsibility) arrived at `n`.
    pub(crate) fn handle_disseminate(
        &mut self,
        eng: &mut SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        range: IdRange,
        parent: NodeIdx,
    ) -> Vec<OverlayEvent<SeaweedMsg>> {
        if !self.queries[h as usize].active {
            return Vec::new();
        }
        self.learn_query(eng, n, h);

        let key: TaskKey = (n.0, h, range.start().0, range.width().unwrap_or(0));
        if let Some(task) = self.tasks.get_mut(&key) {
            if task.reported {
                // The parent reissued because our report was lost in
                // flight: retransmit it.
                task.reported = false;
                self.finish_task(eng, n, h, key);
            }
            // Otherwise the existing task is still collecting; it will
            // report when complete.
            return Vec::new();
        }

        let mut task = DissemTask {
            parent: Some(parent),
            range,
            slots: Vec::new(),
            local: self.empty_result(h),
            reported: false,
            cached: None,
        };

        // The query root (first receiver, full range) reports straight to
        // the origin rather than to a tree parent.
        if range.is_full() {
            task.parent = None;
        }

        // The largest range in which n is the only live endsystem (from
        // its leafset view): any subrange of this can be absorbed whole.
        let my_sole = self.overlay.sole_coverage_range(n);
        // Midpoints n is responsible for would boomerang if routed out.
        let my_region = self.overlay.responsible_range(n);
        let mut out_events = Vec::new();

        // Work stack of subranges this node must either absorb locally or
        // delegate. Splitting is 2^b-ary as in the implementation the
        // paper describes.
        let fanout = 1u32 << self.overlay.config().b;
        let mut stack = vec![range];
        while let Some(r) = stack.pop() {
            if range_within(&r, &my_sole) {
                // We are the only live endsystem covering r: estimate for
                // ourselves (if inside) and every unavailable endsystem.
                self.absorb_range(eng, n, h, &r, &mut task.local);
            } else if r.contains(self.overlay.id_of(n)) || my_region.contains(r.midpoint()) {
                // Our own id is inside (or we are the root for the
                // subrange's midpoint, so routing it out would boomerang):
                // subdivide further locally.
                for s in r.split(fanout) {
                    stack.push(s);
                }
            } else {
                // Delegate to the closest live endsystem to the subrange
                // midpoint.
                let q = &self.queries[h as usize];
                let size = wire::disseminate(q.text.len());
                self.stats.disseminate_msgs += 1;
                self.stats.dissem_bytes += u64::from(size);
                self.timelines[h as usize].dissem_msgs += 1;
                self.timelines[h as usize].dissem_fanout += 1;
                let evs = self.overlay.route(
                    eng,
                    n,
                    r.midpoint(),
                    SeaweedMsg::Disseminate {
                        query: h,
                        range: r,
                        parent: n,
                    },
                    size,
                    TrafficClass::Query,
                );
                out_events.extend(evs);
                task.slots.push(SubrangeSlot {
                    range: r,
                    done: None,
                    reissues: 0,
                });
            }
        }

        let done = task.slots.is_empty();
        self.tasks.insert(key, task);
        if done {
            self.finish_task(eng, n, h, key);
        } else {
            self.set_app_timer(
                eng,
                n,
                self.cfg.dissem_timeout,
                TimerAction::DissemTimeout { node: n, task: key },
            );
        }
        out_events
    }

    /// The kind-appropriate identity element for a task's accumulator.
    fn empty_result(&self, h: QueryHandle) -> RangeResult {
        match self.queries[h as usize].kind {
            QueryKind::View { .. } => {
                RangeResult::View(Aggregate::empty(self.queries[h as usize].bound.agg), 0)
            }
            _ => RangeResult::Predictor(Box::default()),
        }
    }

    /// Folds into `acc` the contribution for a range wholly owned by `n`.
    fn absorb_range(
        &mut self,
        eng: &SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        r: &IdRange,
        acc: &mut RangeResult,
    ) {
        match self.queries[h as usize].kind {
            QueryKind::View { view } => {
                let RangeResult::View(agg, covered) = acc else {
                    unreachable!("view task accumulates view results")
                };
                self.absorb_range_view(eng, n, view, r, agg, covered);
            }
            _ => {
                let RangeResult::Predictor(p) = acc else {
                    unreachable!("predictor task accumulates predictors")
                };
                self.absorb_range_predict(eng, n, h, r, p);
            }
        }
    }

    /// Normal queries: `n`'s own estimate if its id lies inside, plus
    /// predictions for every unavailable endsystem whose metadata `n`
    /// holds.
    fn absorb_range_predict(
        &mut self,
        eng: &SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        r: &IdRange,
        acc: &mut Predictor,
    ) {
        let bound = &self.queries[h as usize].bound;
        if r.contains(self.overlay.id_of(n)) {
            acc.add_available(self.provider.estimate_rows(n.idx(), bound));
        }
        // Enumerate endsystem ids inside r (the ring index's universe
        // covers all endsystems, available or not) without materializing
        // a Vec — a full-circle range at Farsite scale would otherwise
        // allocate N entries per dissemination leaf.
        for x in self.overlay.ring_index().all_in_range(r) {
            if x == n || eng.is_up(x) {
                // Available endsystems answer for themselves elsewhere in
                // the broadcast. (An up-but-not-yet-joined endsystem will
                // contribute results moments later via the active-query
                // list; predicting it as immediately-available would also
                // be fine, but it has no live path yet, so skip it — the
                // error window is seconds.)
                continue;
            }
            if !self.holders[x.idx()].contains(&n) {
                // We never received this endsystem's metadata: it cannot
                // be predicted (coverage gap, tracked).
                self.stats.uncovered_unavailable += 1;
                continue;
            }
            let rows = self.provider.estimate_rows(x.idx(), bound);
            let down_since = self.down_since[x.idx()].unwrap_or(eng.now());
            let pred = self.models[x.idx()].predict_return(eng.now(), down_since);
            acc.add_unavailable(rows, &pred);
            self.stats.predictions_for_unavailable += 1;
        }
    }

    /// View queries: `n`'s freshly computed value if its id lies inside,
    /// plus the *replicated* (possibly stale) values of unavailable
    /// endsystems `n` holds metadata for.
    fn absorb_range_view(
        &mut self,
        eng: &SeaweedEngine,
        n: NodeIdx,
        view: super::ViewHandle,
        r: &IdRange,
        acc: &mut Aggregate,
        covered: &mut u64,
    ) {
        if r.contains(self.overlay.id_of(n)) {
            match self
                .provider
                .execute(n.idx(), &self.views[view as usize].bound)
            {
                Ok(own) => {
                    acc.merge(&own);
                    *covered += 1;
                }
                // The loop below only covers unavailable endsystems, so
                // a live node that fails to execute loses its
                // contribution for this round.
                Err(_) => self.stats.exec_failures += 1,
            }
        }
        for x in self.overlay.ring_index().all_in_range(r) {
            if x == n || eng.is_up(x) {
                continue; // live endsystems answer with fresh values
            }
            if !self.holders[x.idx()].contains(&n) {
                self.stats.uncovered_unavailable += 1;
                continue;
            }
            if let Some(stale) = &self.view_values[view as usize][x.idx()] {
                acc.merge(stale);
                *covered += 1;
                self.stats.predictions_for_unavailable += 1;
            } else {
                self.stats.uncovered_unavailable += 1;
            }
        }
    }

    /// A child reported its subrange result (predictor or view partial).
    pub(crate) fn on_range_report(
        &mut self,
        eng: &mut SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        range: IdRange,
        result: RangeResult,
    ) -> Vec<OverlayEvent<SeaweedMsg>> {
        self.stats.predictor_reports += 1;
        // Find this node's task owning that subrange. Heal-time re-issues
        // can leave one node with several tasks whose slots cover the
        // same range (an old given-up slot plus a fresh one), so collect
        // every candidate and prefer a still-pending slot — container
        // iteration order must not decide which task fills.
        // `candidate_keys` returns ascending key order under both hot
        // state layouts, which pins the tie-break.
        let candidates: Vec<TaskKey> = self
            .tasks
            .candidate_keys(n.0, h, |task| task.slots.iter().any(|s| s.range == range));
        let key = candidates
            .iter()
            .copied()
            .find(|k| {
                self.tasks
                    .get(k)
                    .expect("just collected")
                    .slots
                    .iter()
                    .any(|s| s.range == range && s.done.is_none())
            })
            .or_else(|| candidates.first().copied());
        let Some(key) = key else {
            return Vec::new(); // late/duplicate report for a finished task
        };
        let task = self.tasks.get_mut(&key).expect("just found");
        let slot = task
            .slots
            .iter_mut()
            .find(|s| s.range == range)
            .expect("slot exists");
        if slot.done.is_none() {
            slot.done = Some(result);
            task.cached = None; // memoized merge no longer covers this slot
        }
        if task.slots.iter().all(|s| s.done.is_some()) {
            self.finish_task(eng, n, h, key);
        }
        Vec::new()
    }

    /// Reissue timer fired for a task: re-route any silent subranges (up
    /// to the configured number of reissues), then give up on stragglers
    /// so the predictor is not held hostage by churn.
    pub(crate) fn on_dissem_timeout(&mut self, eng: &mut SeaweedEngine, n: NodeIdx, key: TaskKey) {
        let Some(task) = self.tasks.get_mut(&key) else {
            return;
        };
        if task.reported {
            return;
        }
        let h = key.1;
        let mut to_reissue = Vec::new();
        let mut gave_up = Vec::new();
        for (i, slot) in task.slots.iter_mut().enumerate() {
            if slot.done.is_some() {
                continue;
            }
            if slot.reissues < self.cfg.max_reissues {
                slot.reissues += 1;
                to_reissue.push(slot.range);
            } else {
                // Give up: report what we have (the range contributes
                // nothing — matches the paper's best-effort reissue).
                // The range is remembered so a partition heal can
                // re-cover it (the usual reason every reissue died).
                gave_up.push((i, slot.range));
            }
        }
        if !gave_up.is_empty() {
            let empty = self.empty_result(h);
            let task = self.tasks.get_mut(&key).expect("still present");
            for &(i, _) in &gave_up {
                task.slots[i].done = Some(empty.clone());
            }
            task.cached = None;
            for (_, r) in gave_up {
                self.timelines[h as usize].give_ups += 1;
                self.gave_up.push((n, h, r));
            }
        }
        if !to_reissue.is_empty() {
            self.stats.dissem_reissues += to_reissue.len() as u64;
            self.timelines[h as usize].dissem_reissues += to_reissue.len() as u64;
            let q_text_len = self.queries[h as usize].text.len();
            for r in to_reissue {
                let size = wire::disseminate(q_text_len);
                self.stats.disseminate_msgs += 1;
                self.stats.dissem_bytes += u64::from(size);
                self.timelines[h as usize].dissem_msgs += 1;
                let evs = self.overlay.route(
                    eng,
                    n,
                    r.midpoint(),
                    SeaweedMsg::Disseminate {
                        query: h,
                        range: r,
                        parent: n,
                    },
                    size,
                    TrafficClass::Query,
                );
                self.cascade(eng, evs);
            }
            self.set_app_timer(
                eng,
                n,
                self.cfg.dissem_timeout,
                TimerAction::DissemTimeout { node: n, task: key },
            );
        }
        // All slots may now be resolved (give-ups).
        let task = self.tasks.get(&key).expect("still present");
        if !task.reported && task.slots.iter().all(|s| s.done.is_some()) {
            self.finish_task(eng, n, h, key);
        }
    }

    /// All subranges accounted for: merge and report to the parent (or
    /// the origin, at the tree root).
    fn finish_task(&mut self, eng: &mut SeaweedEngine, n: NodeIdx, h: QueryHandle, key: TaskKey) {
        let task = self.tasks.get_mut(&key).expect("task exists");
        if task.reported {
            return;
        }
        task.reported = true;
        // Merge local + slot results once; retransmissions of a lost
        // report reuse the memoized value instead of re-merging.
        if task.cached.is_none() {
            let mut merged = task.local.clone();
            for slot in &task.slots {
                if let Some(r) = &slot.done {
                    merged.merge(r);
                }
            }
            task.cached = Some(merged);
        }
        let merged = task.cached.clone().expect("just memoized");
        let parent = task.parent;
        let range = task.range;
        let size = match &merged {
            RangeResult::Predictor(p) => wire::predictor_report(p.wire_size()),
            RangeResult::View(..) => wire::predictor_report(48),
        };
        self.stats.predictor_bytes += u64::from(size);
        match parent {
            Some(parent) if parent != n => {
                let msg = match merged {
                    RangeResult::Predictor(predictor) => SeaweedMsg::PredictorReport {
                        query: h,
                        range,
                        predictor: *predictor,
                    },
                    RangeResult::View(agg, endsystems) => SeaweedMsg::ViewReport {
                        query: h,
                        range,
                        agg,
                        endsystems,
                    },
                };
                self.overlay
                    .send_app(eng, n, parent, msg, size, TrafficClass::Query);
            }
            Some(_) => {
                // Parent is ourselves (self-delegated subrange): feed the
                // report back through the local path.
                let evs = self.on_range_report(eng, n, h, range, merged);
                self.cascade(eng, evs);
            }
            None => {
                // Tree root: hand the result to the query origin.
                let origin = self.queries[h as usize].origin;
                match merged {
                    RangeResult::Predictor(predictor) => {
                        if origin == n {
                            self.on_predictor_at_origin(eng, n, h, *predictor);
                        } else {
                            self.overlay.send_app(
                                eng,
                                n,
                                origin,
                                SeaweedMsg::PredictorToOrigin {
                                    query: h,
                                    predictor: *predictor,
                                },
                                size,
                                TrafficClass::Query,
                            );
                        }
                    }
                    RangeResult::View(agg, endsystems) => {
                        if origin == n {
                            self.on_view_at_origin(eng, n, h, agg, endsystems);
                        } else {
                            self.overlay.send_app(
                                eng,
                                n,
                                origin,
                                SeaweedMsg::ViewToOrigin {
                                    query: h,
                                    agg,
                                    endsystems,
                                },
                                size,
                                TrafficClass::Query,
                            );
                        }
                    }
                }
            }
        }
    }

    /// The aggregated view answer reached the query origin.
    pub(crate) fn on_view_at_origin(
        &mut self,
        eng: &mut SeaweedEngine,
        at: NodeIdx,
        h: QueryHandle,
        agg: Aggregate,
        endsystems: u64,
    ) {
        let q = &mut self.queries[h as usize];
        debug_assert_eq!(q.origin, at);
        if q.latest.is_none() {
            q.latest = Some(agg);
            q.latest_version = endsystems; // coverage doubles as version
            q.progress.push((eng.now(), agg.rows, agg.finish()));
            q.predictor_at = Some(eng.now());
            let tl = &mut self.timelines[h as usize];
            tl.predictor_at = Some(eng.now());
            tl.record_result(eng.now(), agg.rows);
        }
    }

    /// The aggregated predictor reached the query origin.
    pub(crate) fn on_predictor_at_origin(
        &mut self,
        eng: &mut SeaweedEngine,
        at: NodeIdx,
        h: QueryHandle,
        predictor: Predictor,
    ) {
        let q = &mut self.queries[h as usize];
        debug_assert_eq!(q.origin, at);
        if q.predictor.is_none() {
            q.predictor = Some(predictor);
            q.predictor_at = Some(eng.now());
            self.timelines[h as usize].predictor_at = Some(eng.now());
        }
    }
}

/// Is `inner` entirely contained in `outer`?
fn range_within(inner: &IdRange, outer: &IdRange) -> bool {
    if inner.is_empty() || outer.is_full() {
        return true;
    }
    if outer.is_empty() || inner.is_full() {
        return false;
    }
    outer.contains(inner.start()) && outer.contains(inner.last()) && {
        // Guard against inner wrapping all the way around a small outer:
        // widths must be consistent too.
        inner.width().expect("not full") <= outer.width().expect("not full")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaweed_types::Id;

    #[test]
    fn range_within_cases() {
        let outer = IdRange::new(Id(100), 100);
        assert!(range_within(&IdRange::new(Id(120), 10), &outer));
        assert!(range_within(&outer, &outer));
        assert!(!range_within(&IdRange::new(Id(90), 20), &outer));
        assert!(!range_within(&IdRange::new(Id(150), 100), &outer));
        assert!(range_within(&IdRange::EMPTY, &outer));
        assert!(range_within(&outer, &IdRange::FULL));
        assert!(!range_within(&IdRange::FULL, &outer));
        // Wrapping outer.
        let wrap = IdRange::between(Id(u128::MAX - 10), Id(10));
        assert!(range_within(
            &IdRange::between(Id(u128::MAX - 5), Id(5)),
            &wrap
        ));
        assert!(!range_within(&IdRange::new(Id(50), 10), &wrap));
    }
}
