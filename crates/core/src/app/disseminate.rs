//! Query dissemination and completeness prediction (paper §3.3).
//!
//! The query is routed to the root of its queryId, which broadcasts by
//! divide-and-conquer over namespace ranges: a node receiving a range
//! splits it into 2^b subranges, handles the parts that lie entirely
//! within its own region of responsibility locally (estimating for the
//! unavailable endsystems there from replicated metadata), and routes one
//! message toward the midpoint of every other part. Per-range predictors
//! aggregate back along the reverse edges; silent subranges are reissued
//! after a timeout.

use seaweed_overlay::{OverlayEvent, SelectionKind};
use seaweed_sim::{NodeIdx, TrafficClass};
use seaweed_types::{Duration, Id, IdRange};

use super::{
    AppTimer, DissemTask, QueryHandle, QueryKind, RangeResult, Seaweed, SeaweedEngine, SeaweedMsg,
    SubrangeSlot, TaskKey, TimerAction,
};
use crate::predictor::Predictor;
use crate::provider::DataProvider;
use crate::wire;
use seaweed_store::Aggregate;

/// Cover candidates considered around a subrange midpoint when picking
/// dissemination targets (primary + backups). Matches the paper's
/// vertex-replica scale: a handful of ring-local endsystems.
const COVER_CANDIDATES: usize = 4;

impl<P: DataProvider> Seaweed<P> {
    /// Origin-side: route the query to the root of its queryId with the
    /// full namespace range.
    pub(crate) fn start_dissemination(
        &mut self,
        eng: &mut SeaweedEngine,
        origin: NodeIdx,
        h: QueryHandle,
    ) {
        self.learn_query(eng, origin, h);
        let q = &self.queries[h as usize];
        let key = q.id;
        let size = wire::disseminate(q.text.len());
        self.stats.disseminate_msgs += 1;
        self.stats.dissem_bytes += u64::from(size);
        self.timelines[h as usize].dissem_msgs += 1;
        let wire_h = self.live_handle(h);
        let evs = self.overlay.route(
            eng,
            origin,
            key,
            SeaweedMsg::Disseminate {
                query: wire_h,
                range: IdRange::FULL,
                parent: origin,
            },
            size,
            TrafficClass::Query,
        );
        // If the origin is itself the root, the delivery comes back
        // synchronously; feed it through the normal dispatch path.
        self.cascade(eng, evs);
    }

    /// Arms the origin-side watchdog behind every query injection. The
    /// kickoff is one unretried message, and the root's task state dies
    /// with the root, so a root crash right after delivery silences the
    /// query forever — no slot timer anywhere covers the top of the
    /// tree. Tail tolerance closes the gap by treating the kickoff like
    /// any other delegation: silent past the reissue timeout means
    /// re-send. No-op (and so baseline-invisible) when tail tolerance is
    /// off.
    pub(crate) fn arm_query_kick(
        &mut self,
        eng: &mut SeaweedEngine,
        origin: NodeIdx,
        h: QueryHandle,
    ) {
        if !self.tail_tolerance_active() {
            return;
        }
        let t = self.set_app_timer(
            eng,
            origin,
            self.cfg.dissem_timeout,
            TimerAction::QueryKick {
                node: origin,
                query: h,
            },
        );
        self.queries[h as usize].kick_timer = Some(t);
    }

    /// The watchdog fired: if the origin still has no aggregate at all,
    /// re-route the full-range kickoff (landing on whichever node now
    /// owns the query id — dedup absorbs it if the original root is
    /// alive and collecting) and re-arm, up to the configured reissue
    /// budget.
    pub(crate) fn on_query_kick(
        &mut self,
        eng: &mut SeaweedEngine,
        origin: NodeIdx,
        h: QueryHandle,
    ) {
        let budget = self.cfg.max_reissues;
        let q = &mut self.queries[h as usize];
        q.kick_timer = None;
        // The watchdog guards the dissemination tree's own deliverable.
        // Result rows flow through the separate aggregation-tree path
        // and can arrive even when the dissemination root died — the
        // query then has rows but no completeness estimate, which is
        // exactly the outage the re-kick must repair.
        let got_report = match q.kind {
            QueryKind::View { .. } => q.latest.is_some(),
            _ => q.predictor.is_some(),
        };
        if !q.active || got_report {
            return;
        }
        if q.kicks >= budget {
            eng.record_app_event(origin, "sim.app.query_kick.exhausted", u64::from(h));
            return;
        }
        q.kicks += 1;
        self.stats.query_kicks += 1;
        eng.record_app_event(origin, "sim.app.query_kick", u64::from(h));
        self.start_dissemination(eng, origin, h);
        self.arm_query_kick(eng, origin, h);
    }

    /// Drains a batch of overlay events produced outside the main
    /// dispatch loop.
    pub(crate) fn cascade(&mut self, eng: &mut SeaweedEngine, evs: Vec<OverlayEvent<SeaweedMsg>>) {
        let mut queue: std::collections::VecDeque<_> = evs.into();
        while let Some(ev) = queue.pop_front() {
            let more = self.on_overlay_event_pub(eng, ev);
            queue.extend(more);
        }
    }

    // Small shim so sibling modules can reuse the private handler.
    pub(crate) fn on_overlay_event_pub(
        &mut self,
        eng: &mut SeaweedEngine,
        ev: OverlayEvent<SeaweedMsg>,
    ) -> Vec<OverlayEvent<SeaweedMsg>> {
        self.on_overlay_event(eng, ev)
    }

    /// A dissemination message (range responsibility) arrived at `n`.
    pub(crate) fn handle_disseminate(
        &mut self,
        eng: &mut SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        range: IdRange,
        parent: NodeIdx,
    ) -> Vec<OverlayEvent<SeaweedMsg>> {
        if !self.queries[h as usize].active {
            return Vec::new();
        }
        self.learn_query(eng, n, h);

        let key: TaskKey = (n.0, h, range.start().0, range.width().unwrap_or(0));
        let tail_tolerant = self.tail_tolerance_active();
        if let Some(task) = self.tasks.get_mut(&key) {
            // Hedges and availability-aware re-routes can hand the same
            // range to us from a *second* parent. Pre-tail-tolerance the
            // duplicate was swallowed and the new parent starved into
            // reissue chains; with the features on, remember the extra
            // parent so the (re-)report fans out to every delegator.
            if tail_tolerant
                && parent != n
                && task.parent.is_some_and(|p| p != parent)
                && !task.extra_parents.contains(&parent)
            {
                task.extra_parents.push(parent);
            }
            if task.reported {
                // The parent reissued because our report was lost in
                // flight: retransmit it.
                task.reported = false;
                self.finish_task(eng, n, h, key);
            }
            // Otherwise the existing task is still collecting; it will
            // report when complete.
            return Vec::new();
        }

        let mut task = DissemTask {
            parent: Some(parent),
            extra_parents: Vec::new(),
            range,
            slots: Vec::new(),
            local: self.empty_result(h),
            reported: false,
            cached: None,
            timeout_timer: None,
            hedge_timer: None,
        };

        // The query root (first receiver, full range) reports straight to
        // the origin rather than to a tree parent.
        if range.is_full() {
            task.parent = None;
        }

        // The largest range in which n is the only live endsystem (from
        // its leafset view): any subrange of this can be absorbed whole.
        let my_sole = self.overlay.sole_coverage_range(n);
        // Midpoints n is responsible for would boomerang if routed out.
        let my_region = self.overlay.responsible_range(n);
        let mut out_events = Vec::new();

        // Work stack of subranges this node must either absorb locally or
        // delegate. Splitting is 2^b-ary as in the implementation the
        // paper describes.
        let fanout = 1u32 << self.overlay.config().b;
        let wire_h = self.live_handle(h);
        let mut stack = vec![range];
        while let Some(r) = stack.pop() {
            if range_within(&r, &my_sole) {
                // We are the only live endsystem covering r: estimate for
                // ourselves (if inside) and every unavailable endsystem.
                self.absorb_range(eng, n, h, &r, &mut task.local);
            } else if r.contains(self.overlay.id_of(n)) || my_region.contains(r.midpoint()) {
                // Our own id is inside (or we are the root for the
                // subrange's midpoint, so routing it out would boomerang):
                // subdivide further locally.
                for s in r.split(fanout) {
                    stack.push(s);
                }
            } else {
                // Delegate toward the subrange midpoint — always. Routing
                // by key terminates at the live region owner, which splits
                // or absorbs; sending to any other replica's exact id
                // would just append a forwarding hop (or, transitively, a
                // forwarding *chain*). Availability-aware selection
                // instead steers the recovery paths: reissue and hedge
                // targets (see `divert_target_key` / `hedge_target`).
                let target = r.midpoint();
                let q = &self.queries[h as usize];
                let size = wire::disseminate(q.text.len());
                self.stats.disseminate_msgs += 1;
                self.stats.dissem_bytes += u64::from(size);
                self.timelines[h as usize].dissem_msgs += 1;
                self.timelines[h as usize].dissem_fanout += 1;
                let evs = self.overlay.route(
                    eng,
                    n,
                    target,
                    SeaweedMsg::Disseminate {
                        query: wire_h,
                        range: r,
                        parent: n,
                    },
                    size,
                    TrafficClass::Query,
                );
                out_events.extend(evs);
                task.slots.push(SubrangeSlot {
                    range: r,
                    done: None,
                    reissues: 0,
                    sent_at: eng.now(),
                    hedge: None,
                });
            }
        }

        let done = task.slots.is_empty();
        // A task that forwards its entire range in one slot is a pure
        // relay (we own none of it) — hedge backups land here. Racing
        // the relay's single delegation would add another racer to the
        // same subtree the original delegator's timer already covers, so
        // relays reissue but never hedge; that keeps a losing hedge at
        // one request + one reply instead of a hedge-of-hedges chain.
        let pure_relay = task.slots.len() == 1 && task.slots[0].range == range;
        self.tasks.insert(key, task);
        if done {
            self.finish_task(eng, n, h, key);
        } else {
            let timeout = self.set_app_timer(
                eng,
                n,
                self.cfg.dissem_timeout,
                TimerAction::DissemTimeout { node: n, task: key },
            );
            let hedge = (self.cfg.hedge.is_some() && !pure_relay).then(|| {
                let delay = self.hedge_delay(n);
                self.set_app_timer(
                    eng,
                    n,
                    delay,
                    TimerAction::HedgeTimeout { node: n, task: key },
                )
            });
            if let Some(task) = self.tasks.get_mut(&key) {
                task.timeout_timer = Some(timeout);
                task.hedge_timer = hedge;
            } else {
                // Inserted two statements up; a miss means the store is
                // inconsistent. Disarm instead of letting the timers
                // fire against a missing task.
                self.stats.internal_drops += 1;
                self.cancel_app_timer(eng, timeout);
                if let Some(t) = hedge {
                    self.cancel_app_timer(eng, t);
                }
            }
        }
        out_events
    }

    /// Routing key for *re*-delegating a silent subrange: its midpoint
    /// under [`SelectionKind::IdOrder`] (the pre-hedging baseline,
    /// preserved bit-for-bit). Under [`SelectionKind::AvailAware`], while
    /// the presumptive owner-side replica is believed up the midpoint is
    /// still used (the first send probably got unlucky, not the
    /// geometry); when it is down, the retry goes to the best-ranked
    /// *live* cover candidate instead of another round trip into the
    /// outage. The divert is one hop by construction: the candidate's own
    /// onward delegation is plain midpoint routing, which terminates at a
    /// live region owner.
    fn divert_target_key(&self, eng: &SeaweedEngine, n: NodeIdx, r: &IdRange) -> Id {
        let mid = r.midpoint();
        if self.overlay.config().selection != SelectionKind::AvailAware {
            return mid;
        }
        let owner = self.overlay.cover_candidates(mid, 1).first().copied();
        if owner.is_none_or(|x| eng.is_up(x)) {
            return mid;
        }
        self.overlay
            .select_cover(mid, COVER_CANDIDATES, |x| self.avail_score(eng, x))
            .into_iter()
            .find(|&x| x != n && eng.is_up(x))
            .map_or(mid, |x| self.overlay.id_of(x))
    }

    /// The backup cover pick for a still-silent subrange: the best-ranked
    /// *live* candidate around the midpoint that is neither ourselves nor
    /// the owner-side replica the original delegation targeted.
    fn hedge_target(&self, eng: &SeaweedEngine, n: NodeIdx, r: &IdRange) -> Option<NodeIdx> {
        let mid = r.midpoint();
        let primary = self.overlay.cover_candidates(mid, 1).first().copied();
        self.overlay
            .select_cover(mid, COVER_CANDIDATES, |x| self.avail_score(eng, x))
            .into_iter()
            .find(|&x| x != n && Some(x) != primary && eng.is_up(x))
    }

    /// Availability score for replica selection, higher = better. An
    /// endsystem believed up now beats any down one; among down ones, the
    /// sooner the availability model expects a return, the higher. The
    /// monolithic simulation uses engine liveness plus the shared model
    /// tables as the stand-in for the replicated per-endsystem metadata a
    /// real delegator would consult (same convention as range
    /// absorption). Integer-valued so ranking needs no float compares.
    fn avail_score(&self, eng: &SeaweedEngine, x: NodeIdx) -> u64 {
        if eng.is_up(x) {
            return u64::MAX;
        }
        let down_since = self.down_since[x.idx()].unwrap_or_else(|| eng.now());
        let pred = self.models[x.idx()].predict_return(eng.now(), down_since);
        let eta = pred.quantile(0.5).unwrap_or_else(|| pred.expected());
        (u64::MAX / 2).saturating_sub(eta.as_micros())
    }

    /// How long to wait for a subrange reply before hedging: the
    /// configured quantile of this delegator's observed reply-latency
    /// distribution, falling back to a fraction of the reissue timeout
    /// until enough replies have been observed.
    ///
    /// The observed quantile is floored at the fallback threshold, not
    /// trusted below it: early in a query the delegator has only seen
    /// the replies that already landed — a sample censored toward the
    /// fast side — so a raw p90 of it hedges nearly every slot and
    /// multiplies dissemination bandwidth. The model may only *extend*
    /// the wait (a habitually slow replica set earns patience), up to
    /// the reissue timeout itself.
    pub(crate) fn hedge_delay(&self, n: NodeIdx) -> Duration {
        // Every caller gates on `cfg.hedge`; the fallback (the full
        // reissue timeout, the cap anyway) keeps this total rather than
        // panicking if one ever stops.
        let Some(hc) = self.cfg.hedge.as_ref() else {
            return self.cfg.dissem_timeout;
        };
        let fallback = Duration::from_micros(
            (self.cfg.dissem_timeout.as_micros() as f64 * hc.fallback_fraction) as u64,
        );
        self.reply_lat
            .quantile(n.idx(), hc.quantile, hc.min_samples)
            .map_or(fallback, |q| q.max(fallback))
            .max(Duration::from_micros(1))
            .min(self.cfg.dissem_timeout)
    }

    /// The hedge timer fired for a task: duplicate still-silent,
    /// not-yet-hedged subranges to a backup cover candidate. At most one
    /// hedge per slot, ever — the reissue machinery (which this races,
    /// never replaces) handles persistent silence.
    ///
    /// Which silent slots hedge is availability-gated, because a hedge
    /// is the expensive recovery (the backup re-disseminates the whole
    /// subrange) while a reissue is one message:
    ///
    /// * presumptive owner believed **down** — hedge immediately. A
    ///   reissue would route back into the outage; a backup near the
    ///   region mostly *absorbs* the range via its predictors, so the
    ///   rescue is cheap and fast. This is the correlated-outage case
    ///   that otherwise rides the full reissue ladder into a give-up.
    /// * owner believed **up** — the first delegation probably met loss,
    ///   not a dead replica, and the cheap reissue deserves first try;
    ///   hedge only slots a reissue already failed to revive (the
    ///   correlated-loss tail). The timer re-arms on every reissue
    ///   round, so such slots get their hedge one delay after the
    ///   reissue that failed them.
    ///
    /// A hedge that lands on an executor already working the range
    /// converges into the existing task via the extra-parent fan-in
    /// rather than spawning a duplicate subtree, so the cost of a losing
    /// hedge is one request and one reply, not a re-dissemination.
    pub(crate) fn on_hedge_timeout(&mut self, eng: &mut SeaweedEngine, n: NodeIdx, key: TaskKey) {
        let h = key.1;
        {
            let Some(task) = self.tasks.get_mut(&key) else {
                return;
            };
            task.hedge_timer = None;
            if task.reported {
                return;
            }
        }
        if !self.queries[h as usize].active {
            return;
        }
        // Re-fetched because the block above dropped its borrow; it
        // returned early when the task was absent, and nothing between
        // removes it.
        let Some(task) = self.tasks.get(&key) else {
            self.stats.internal_drops += 1;
            return;
        };
        let pending: Vec<IdRange> = task
            .slots
            .iter()
            .filter(|s| s.done.is_none() && s.hedge.is_none())
            .filter(|s| {
                s.reissues > 0
                    || self
                        .overlay
                        .cover_candidates(s.range.midpoint(), 1)
                        .first()
                        .is_some_and(|&x| !eng.is_up(x))
            })
            .map(|s| s.range)
            .collect();
        let text_len = self.queries[h as usize].text.len();
        for r in pending {
            // A hedge reply can cascade synchronously and finish the
            // task; hedging the remaining slots would be pure waste.
            if self.tasks.get(&key).is_none_or(|t| t.reported) {
                break;
            }
            let Some(backup) = self.hedge_target(eng, n, &r) else {
                continue;
            };
            if let Some(slot) = self
                .tasks
                .get_mut(&key)
                .and_then(|t| t.slots.iter_mut().find(|s| s.range == r))
            {
                slot.hedge = Some(backup);
            }
            let size = wire::disseminate(text_len);
            self.stats.disseminate_msgs += 1;
            self.stats.dissem_bytes += u64::from(size);
            self.stats.hedges_sent += 1;
            let tl = &mut self.timelines[h as usize];
            tl.dissem_msgs += 1;
            tl.hedges_sent += 1;
            eng.record_app_event(n, "sim.app.hedge.sent", u64::from(h));
            let target = self.overlay.id_of(backup);
            let wire_h = self.live_handle(h);
            let evs = self.overlay.route(
                eng,
                n,
                target,
                SeaweedMsg::Disseminate {
                    query: wire_h,
                    range: r,
                    parent: n,
                },
                size,
                TrafficClass::Query,
            );
            self.cascade(eng, evs);
        }
    }

    /// The kind-appropriate identity element for a task's accumulator.
    fn empty_result(&self, h: QueryHandle) -> RangeResult {
        match self.queries[h as usize].kind {
            QueryKind::View { .. } => {
                RangeResult::View(Aggregate::empty(self.queries[h as usize].bound.agg), 0)
            }
            _ => RangeResult::Predictor(Box::default()),
        }
    }

    /// Folds into `acc` the contribution for a range wholly owned by `n`.
    fn absorb_range(
        &mut self,
        eng: &SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        r: &IdRange,
        acc: &mut RangeResult,
    ) {
        match self.queries[h as usize].kind {
            QueryKind::View { view } => {
                let RangeResult::View(agg, covered) = acc else {
                    unreachable!("view task accumulates view results")
                };
                self.absorb_range_view(eng, n, view, r, agg, covered);
            }
            _ => {
                let RangeResult::Predictor(p) = acc else {
                    unreachable!("predictor task accumulates predictors")
                };
                self.absorb_range_predict(eng, n, h, r, p);
            }
        }
    }

    /// Normal queries: `n`'s own estimate if its id lies inside, plus
    /// predictions for every unavailable endsystem whose metadata `n`
    /// holds.
    fn absorb_range_predict(
        &mut self,
        eng: &SeaweedEngine,
        n: NodeIdx,
        h: QueryHandle,
        r: &IdRange,
        acc: &mut Predictor,
    ) {
        let bound = &self.queries[h as usize].bound;
        if r.contains(self.overlay.id_of(n)) {
            let rows = self.provider.estimate_rows(n.idx(), bound);
            match self.cfg.storm.as_ref() {
                // Storm mode with a scan backlog at `n`: this endsystem
                // will not contribute immediately — the fair scheduler
                // serves its queue one batch per quantum — so model the
                // contention delay instead of claiming availability-now.
                // That keeps the paper's delay-aware predictor honest
                // under load. A zero backlog (always, without storm
                // mode or with a single query) takes the baseline call.
                Some(storm) if !self.scan[n.idx()].tasks.is_empty() => {
                    let backlog = self.scan[n.idx()].tasks.len() as u64;
                    let quanta = self
                        .provider
                        .scan_cost(n.idx())
                        .max(1)
                        .div_ceil(storm.quantum_rows.max(1));
                    let delay = Duration::from_micros(
                        storm
                            .quantum
                            .as_micros()
                            .saturating_mul(quanta.saturating_mul(backlog + 1)),
                    );
                    acc.add_available_delayed(rows, delay);
                }
                _ => acc.add_available(rows),
            }
        }
        // Enumerate endsystem ids inside r (the ring index's universe
        // covers all endsystems, available or not) without materializing
        // a Vec — a full-circle range at Farsite scale would otherwise
        // allocate N entries per dissemination leaf.
        for x in self.overlay.ring_index().all_in_range(r) {
            if x == n || eng.is_up(x) {
                // Available endsystems answer for themselves elsewhere in
                // the broadcast. (An up-but-not-yet-joined endsystem will
                // contribute results moments later via the active-query
                // list; predicting it as immediately-available would also
                // be fine, but it has no live path yet, so skip it — the
                // error window is seconds.)
                continue;
            }
            if !self.holders[x.idx()].contains(&n) {
                // We never received this endsystem's metadata: it cannot
                // be predicted (coverage gap, tracked).
                self.stats.uncovered_unavailable += 1;
                continue;
            }
            let rows = self.provider.estimate_rows(x.idx(), bound);
            let down_since = self.down_since[x.idx()].unwrap_or(eng.now());
            let pred = self.models[x.idx()].predict_return(eng.now(), down_since);
            acc.add_unavailable(rows, &pred);
            self.stats.predictions_for_unavailable += 1;
        }
    }

    /// View queries: `n`'s freshly computed value if its id lies inside,
    /// plus the *replicated* (possibly stale) values of unavailable
    /// endsystems `n` holds metadata for.
    fn absorb_range_view(
        &mut self,
        eng: &SeaweedEngine,
        n: NodeIdx,
        view: super::ViewHandle,
        r: &IdRange,
        acc: &mut Aggregate,
        covered: &mut u64,
    ) {
        if r.contains(self.overlay.id_of(n)) {
            match self
                .provider
                .execute(n.idx(), &self.views[view as usize].bound)
            {
                Ok(own) => {
                    acc.merge(&own);
                    *covered += 1;
                }
                // The loop below only covers unavailable endsystems, so
                // a live node that fails to execute loses its
                // contribution for this round.
                Err(_) => self.stats.exec_failures += 1,
            }
        }
        for x in self.overlay.ring_index().all_in_range(r) {
            if x == n || eng.is_up(x) {
                continue; // live endsystems answer with fresh values
            }
            if !self.holders[x.idx()].contains(&n) {
                self.stats.uncovered_unavailable += 1;
                continue;
            }
            if let Some(stale) = &self.view_values[view as usize][x.idx()] {
                acc.merge(stale);
                *covered += 1;
                self.stats.predictions_for_unavailable += 1;
            } else {
                self.stats.uncovered_unavailable += 1;
            }
        }
    }

    /// A child reported its subrange result (predictor or view partial).
    /// `from` is the reporting endsystem, used to attribute the reply to
    /// the primary or the hedge when the slot was hedged.
    pub(crate) fn on_range_report(
        &mut self,
        eng: &mut SeaweedEngine,
        n: NodeIdx,
        from: NodeIdx,
        h: QueryHandle,
        range: IdRange,
        result: RangeResult,
    ) -> Vec<OverlayEvent<SeaweedMsg>> {
        self.stats.predictor_reports += 1;
        // Find this node's task owning that subrange. Heal-time re-issues
        // can leave one node with several tasks whose slots cover the
        // same range (an old given-up slot plus a fresh one), so collect
        // every candidate and prefer a still-pending slot — container
        // iteration order must not decide which task fills.
        // `candidate_keys` returns ascending key order under both hot
        // state layouts, which pins the tie-break.
        let candidates: Vec<TaskKey> = self
            .tasks
            .candidate_keys(n.0, h, |task| task.slots.iter().any(|s| s.range == range));
        let key = candidates
            .iter()
            .copied()
            .find(|k| {
                // `candidate_keys` just returned these keys; a vanished
                // entry simply fails the pending-slot preference.
                self.tasks.get(k).is_some_and(|task| {
                    task.slots
                        .iter()
                        .any(|s| s.range == range && s.done.is_none())
                })
            })
            .or_else(|| candidates.first().copied());
        let Some(key) = key else {
            return Vec::new(); // late/duplicate report for a finished task
        };
        let report_size = u64::from(match &result {
            RangeResult::Predictor(p) => wire::predictor_report(p.wire_size()),
            RangeResult::View(..) => wire::predictor_report(48),
        });
        let now = eng.now();
        // The candidate filter guaranteed the key and a slot with this
        // range moments ago; a miss is an internal inconsistency — drop
        // the report (counted) rather than panic, and let the reissue
        // machinery re-drive the range.
        let Some(task) = self.tasks.get_mut(&key) else {
            self.stats.internal_drops += 1;
            return Vec::new();
        };
        let Some(slot) = task.slots.iter_mut().find(|s| s.range == range) else {
            self.stats.internal_drops += 1;
            return Vec::new();
        };
        // `None`: unhedged fill. `Some(true)`: the hedge won the race.
        // `Some(false)`: the primary won, the hedge was pure overhead.
        let mut hedge_won = None;
        let mut loser_reply = false;
        if slot.done.is_none() {
            if let Some(backup) = slot.hedge {
                hedge_won = Some(from == backup);
            }
            let waited = now.saturating_since(slot.sent_at);
            slot.done = Some(result);
            task.cached = None; // memoized merge no longer covers this slot
            self.reply_lat.observe(n.idx(), waited);
        } else if slot.hedge.is_some() {
            // The race loser's duplicate reply landing on an
            // already-filled hedged slot: deduped here (exactly-once is
            // untouched), charged as hedging waste.
            loser_reply = true;
        }
        match hedge_won {
            Some(true) => {
                self.stats.hedge_wins += 1;
                self.timelines[h as usize].hedge_wins += 1;
                eng.record_app_event(n, "sim.app.hedge.win", u64::from(h));
            }
            Some(false) => {
                let wasted = u64::from(wire::disseminate(self.queries[h as usize].text.len()));
                self.stats.hedge_losses += 1;
                self.stats.hedge_wasted_bytes += wasted;
                let tl = &mut self.timelines[h as usize];
                tl.hedge_losses += 1;
                tl.hedge_wasted_bytes += wasted;
                eng.record_app_event(n, "sim.app.hedge.loss", u64::from(h));
            }
            None => {}
        }
        if loser_reply {
            self.stats.hedge_wasted_bytes += report_size;
            self.timelines[h as usize].hedge_wasted_bytes += report_size;
        }
        // Present above in this same call; counters in between only
        // touch stats/timelines.
        let Some(task) = self.tasks.get(&key) else {
            self.stats.internal_drops += 1;
            return Vec::new();
        };
        if task.slots.iter().all(|s| s.done.is_some()) {
            self.finish_task(eng, n, h, key);
        }
        Vec::new()
    }

    /// Reissue timer fired for a task: re-route any silent subranges (up
    /// to the configured number of reissues), then give up on stragglers
    /// so the predictor is not held hostage by churn.
    pub(crate) fn on_dissem_timeout(&mut self, eng: &mut SeaweedEngine, n: NodeIdx, key: TaskKey) {
        let Some(task) = self.tasks.get_mut(&key) else {
            return;
        };
        task.timeout_timer = None; // it just fired
        if task.reported {
            return;
        }
        let h = key.1;
        let now = eng.now();
        let mut to_reissue = Vec::new();
        let mut gave_up = Vec::new();
        for (i, slot) in task.slots.iter_mut().enumerate() {
            if slot.done.is_some() {
                continue;
            }
            if slot.reissues < self.cfg.max_reissues {
                slot.reissues += 1;
                slot.sent_at = now; // reply latency measured from the resend
                                    // A new round earns a new hedge: the previous backup is
                                    // as silent as the primary, so when the re-armed hedge
                                    // timer fires it may duplicate to a fresh candidate
                                    // (at most one hedge in flight per slot per round).
                                    // Never set with hedging off, so clearing is baseline-
                                    // invisible.
                slot.hedge = None;
                to_reissue.push(slot.range);
            } else {
                // Give up: report what we have (the range contributes
                // nothing — matches the paper's best-effort reissue).
                // The range is remembered so a partition heal can
                // re-cover it (the usual reason every reissue died).
                gave_up.push((i, slot.range));
            }
        }
        if !gave_up.is_empty() {
            let empty = self.empty_result(h);
            // Borrow re-established after `empty_result`; the task was
            // present at entry and nothing here removes it.
            let Some(task) = self.tasks.get_mut(&key) else {
                self.stats.internal_drops += 1;
                return;
            };
            for &(i, _) in &gave_up {
                task.slots[i].done = Some(empty.clone());
            }
            task.cached = None;
            for (_, r) in gave_up {
                self.stats.dissem_give_ups += 1;
                self.timelines[h as usize].give_ups += 1;
                eng.record_app_event(n, "sim.app.give_up.reissues_exhausted", u64::from(h));
                self.gave_up.push((n, h, r));
            }
        }
        if !to_reissue.is_empty() {
            self.stats.dissem_reissues += to_reissue.len() as u64;
            self.timelines[h as usize].dissem_reissues += to_reissue.len() as u64;
            let q_text_len = self.queries[h as usize].text.len();
            for r in to_reissue {
                let size = wire::disseminate(q_text_len);
                self.stats.disseminate_msgs += 1;
                self.stats.dissem_bytes += u64::from(size);
                self.timelines[h as usize].dissem_msgs += 1;
                let target = self.divert_target_key(eng, n, &r);
                let wire_h = self.live_handle(h);
                let evs = self.overlay.route(
                    eng,
                    n,
                    target,
                    SeaweedMsg::Disseminate {
                        query: wire_h,
                        range: r,
                        parent: n,
                    },
                    size,
                    TrafficClass::Query,
                );
                self.cascade(eng, evs);
            }
            let hedging = self.cfg.hedge.is_some();
            if hedging {
                // Disarm a hedge timer still pending from the previous
                // round before re-arming both races.
                let stale = self.tasks.get_mut(&key).and_then(|t| t.hedge_timer.take());
                if let Some(t) = stale {
                    self.cancel_app_timer(eng, t);
                }
            }
            // Re-armed unconditionally, exactly as before hedging
            // existed: the reissue cascade may have completed the task
            // synchronously, in which case the baseline lets the timer
            // fire as a no-op while hedged mode disarms it right away.
            // lint:allow(D008): non-hedging baseline deliberately lets a completed task's timer fire as a no-op, preserving the pre-hedging event stream bit-for-bit
            let timeout = self.set_app_timer(
                eng,
                n,
                self.cfg.dissem_timeout,
                TimerAction::DissemTimeout { node: n, task: key },
            );
            // lint:allow(D008): armed only when hedging, and hedged mode disarms in the match below; the leaked path (hedging false) arms nothing
            let hedge = hedging.then(|| {
                let delay = self.hedge_delay(n);
                self.set_app_timer(
                    eng,
                    n,
                    delay,
                    TimerAction::HedgeTimeout { node: n, task: key },
                )
            });
            match self.tasks.get_mut(&key) {
                Some(task) if !task.reported => {
                    task.timeout_timer = Some(timeout);
                    task.hedge_timer = hedge;
                }
                _ => {
                    if hedging {
                        self.cancel_app_timer(eng, timeout);
                        if let Some(t) = hedge {
                            self.cancel_app_timer(eng, t);
                        }
                    }
                }
            }
        }
        // All slots may now be resolved (give-ups). Reissue cascades
        // above can legitimately complete and retire state, so a missing
        // task here is just "nothing left to do".
        let Some(task) = self.tasks.get(&key) else {
            return;
        };
        if !task.reported && task.slots.iter().all(|s| s.done.is_some()) {
            self.finish_task(eng, n, h, key);
        }
    }

    /// All subranges accounted for: merge and report to the parent (or
    /// the origin, at the tree root).
    fn finish_task(&mut self, eng: &mut SeaweedEngine, n: NodeIdx, h: QueryHandle, key: TaskKey) {
        // Every caller verified the task exists before calling; a miss
        // drops the report (counted), and the parent's reissue timer
        // re-drives the range if it mattered.
        let Some(task) = self.tasks.get_mut(&key) else {
            self.stats.internal_drops += 1;
            return;
        };
        if task.reported {
            return;
        }
        task.reported = true;
        // Reporting resolves both pending races; hedged mode disarms the
        // timers instead of letting them fire as no-ops. (Taking the
        // handles is unconditional bookkeeping; only hedged mode cancels,
        // keeping the baseline's timer stream untouched.)
        let stale: Vec<AppTimer> = task
            .timeout_timer
            .take()
            .into_iter()
            .chain(task.hedge_timer.take())
            .collect();
        // Merge local + slot results once; retransmissions of a lost
        // report reuse the memoized value instead of re-merging.
        let merged = match task.cached.clone() {
            Some(m) => m,
            None => {
                let mut m = task.local.clone();
                for slot in &task.slots {
                    if let Some(r) = &slot.done {
                        m.merge(r);
                    }
                }
                task.cached = Some(m.clone());
                m
            }
        };
        let parent = task.parent;
        // Every delegator that converged on this task hears the report;
        // draining means a later retransmission fans out only to whoever
        // asked again. Always empty with tail tolerance off.
        let extra_parents = std::mem::take(&mut task.extra_parents);
        let range = task.range;
        if self.cfg.hedge.is_some() {
            for t in stale {
                self.cancel_app_timer(eng, t);
            }
        }
        let size = match &merged {
            RangeResult::Predictor(p) => wire::predictor_report(p.wire_size()),
            RangeResult::View(..) => wire::predictor_report(48),
        };
        self.stats.predictor_bytes += u64::from(size);
        let wire_h = self.live_handle(h);
        for &extra in extra_parents.iter().filter(|&&e| Some(e) != parent) {
            let msg = match merged.clone() {
                RangeResult::Predictor(predictor) => SeaweedMsg::PredictorReport {
                    query: wire_h,
                    range,
                    predictor,
                },
                RangeResult::View(agg, endsystems) => SeaweedMsg::ViewReport {
                    query: wire_h,
                    range,
                    agg,
                    endsystems,
                },
            };
            self.stats.predictor_bytes += u64::from(size);
            self.overlay
                .send_app(eng, n, extra, msg, size, TrafficClass::Query);
        }
        match parent {
            Some(parent) if parent != n => {
                let msg = match merged {
                    RangeResult::Predictor(predictor) => SeaweedMsg::PredictorReport {
                        query: wire_h,
                        range,
                        predictor,
                    },
                    RangeResult::View(agg, endsystems) => SeaweedMsg::ViewReport {
                        query: wire_h,
                        range,
                        agg,
                        endsystems,
                    },
                };
                self.overlay
                    .send_app(eng, n, parent, msg, size, TrafficClass::Query);
            }
            Some(_) => {
                // Parent is ourselves (self-delegated subrange): feed the
                // report back through the local path.
                let evs = self.on_range_report(eng, n, n, h, range, merged);
                self.cascade(eng, evs);
            }
            None => {
                // Tree root: hand the result to the query origin.
                let origin = self.queries[h as usize].origin;
                match merged {
                    RangeResult::Predictor(predictor) => {
                        if origin == n {
                            self.on_predictor_at_origin(eng, n, h, *predictor);
                        } else {
                            self.overlay.send_app(
                                eng,
                                n,
                                origin,
                                SeaweedMsg::PredictorToOrigin {
                                    query: wire_h,
                                    predictor,
                                },
                                size,
                                TrafficClass::Query,
                            );
                        }
                    }
                    RangeResult::View(agg, endsystems) => {
                        if origin == n {
                            self.on_view_at_origin(eng, n, h, agg, endsystems);
                        } else {
                            self.overlay.send_app(
                                eng,
                                n,
                                origin,
                                SeaweedMsg::ViewToOrigin {
                                    query: wire_h,
                                    agg,
                                    endsystems,
                                },
                                size,
                                TrafficClass::Query,
                            );
                        }
                    }
                }
            }
        }
    }

    /// The aggregated view answer reached the query origin.
    pub(crate) fn on_view_at_origin(
        &mut self,
        eng: &mut SeaweedEngine,
        at: NodeIdx,
        h: QueryHandle,
        agg: Aggregate,
        endsystems: u64,
    ) {
        let q = &mut self.queries[h as usize];
        debug_assert_eq!(q.origin, at);
        if q.latest.is_none() {
            q.latest = Some(agg);
            q.latest_version = endsystems; // coverage doubles as version
            q.progress.push((eng.now(), agg.rows, agg.finish()));
            q.predictor_at = Some(eng.now());
            let kick = q.kick_timer.take(); // watchdog's race is resolved
            let tl = &mut self.timelines[h as usize];
            tl.predictor_at = Some(eng.now());
            tl.record_result(eng.now(), agg.rows);
            if let Some(t) = kick {
                self.cancel_app_timer(eng, t);
            }
        }
    }

    /// The aggregated predictor reached the query origin.
    pub(crate) fn on_predictor_at_origin(
        &mut self,
        eng: &mut SeaweedEngine,
        at: NodeIdx,
        h: QueryHandle,
        predictor: Predictor,
    ) {
        let q = &mut self.queries[h as usize];
        debug_assert_eq!(q.origin, at);
        if q.predictor.is_none() {
            q.predictor = Some(predictor);
            q.predictor_at = Some(eng.now());
            let kick = q.kick_timer.take(); // watchdog's race is resolved
            self.timelines[h as usize].predictor_at = Some(eng.now());
            if let Some(t) = kick {
                self.cancel_app_timer(eng, t);
            }
        }
    }
}

/// Is `inner` entirely contained in `outer`?
fn range_within(inner: &IdRange, outer: &IdRange) -> bool {
    if inner.is_empty() || outer.is_full() {
        return true;
    }
    if outer.is_empty() || inner.is_full() {
        return false;
    }
    outer.contains(inner.start()) && outer.contains(inner.last()) && {
        // Guard against inner wrapping all the way around a small outer:
        // widths must be consistent too. `width()` is only `None` for
        // full ranges, both excluded above; treat an impossible `None`
        // as not-contained rather than panic.
        match (inner.width(), outer.width()) {
            (Some(iw), Some(ow)) => iw <= ow,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seaweed_types::Id;

    #[test]
    fn range_within_cases() {
        let outer = IdRange::new(Id(100), 100);
        assert!(range_within(&IdRange::new(Id(120), 10), &outer));
        assert!(range_within(&outer, &outer));
        assert!(!range_within(&IdRange::new(Id(90), 20), &outer));
        assert!(!range_within(&IdRange::new(Id(150), 100), &outer));
        assert!(range_within(&IdRange::EMPTY, &outer));
        assert!(range_within(&outer, &IdRange::FULL));
        assert!(!range_within(&IdRange::FULL, &outer));
        // Wrapping outer.
        let wrap = IdRange::between(Id(u128::MAX - 10), Id(10));
        assert!(range_within(
            &IdRange::between(Id(u128::MAX - 5), Id(5)),
            &wrap
        ));
        assert!(!range_within(&IdRange::new(Id(50), 10), &wrap));
    }
}
